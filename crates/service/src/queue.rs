//! A bounded multi-producer/multi-consumer work queue built on `Mutex` +
//! `Condvar` (no external deps).
//!
//! Each engine shard feeds its worker pool through one of these. Three
//! admission disciplines are offered, from politest to most impatient:
//!
//! - [`BoundedQueue::push`] blocks until a slot frees (classic
//!   backpressure; a huge manifest never balloons resident memory);
//! - [`BoundedQueue::push_timeout`] blocks for at most a bounded wait and
//!   then reports `Full` — the building block of shed-instead-of-stall
//!   admission control;
//! - [`BoundedQueue::try_push`] never blocks at all.
//!
//! The high-water mark is updated inside the same critical section as the
//! insert on every admission path, so `max_depth()` can never observe a
//! depth that a concurrent push has not yet booked (the pre-shard code
//! read the depth racily around the condvar wait).
//!
//! Consumers get the matching trio ([`BoundedQueue::pop`],
//! [`BoundedQueue::pop_timeout`], [`BoundedQueue::try_pop`] — the last is
//! how an idle shard steals work) plus [`BoundedQueue::drain_matching`],
//! which the deadline sweeper uses to evict expired requests without
//! letting them reach a worker.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a non-blocking or bounded-wait push did not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue was at capacity for the whole admission window.
    Full,
    /// The queue was closed; it will never accept again.
    Closed,
}

/// What a bounded-wait pop observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopResult<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue stayed empty for the whole wait (but remains open).
    Empty,
    /// The queue is closed *and* drained — the worker's exit signal.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark of the queue depth, for the service metrics.
    /// Updated under the same lock as every insert.
    max_depth: usize,
}

/// A bounded FIFO shared between one or more producers and a worker pool.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                max_depth: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The queue's capacity (the backpressure bound).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        // A worker that panicked while holding the lock cannot corrupt the
        // VecDeque invariants we rely on; keep serving.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Books an insert: item in, high-water updated, consumers woken. Must
    /// run with the state lock held (it consumes the guard).
    fn insert(&self, mut st: std::sync::MutexGuard<'_, QueueState<T>>, item: T) {
        st.items.push_back(item);
        st.max_depth = st.max_depth.max(st.items.len());
        drop(st);
        self.not_empty.notify_one();
    }

    /// Enqueues `item`, blocking while the queue is full (backpressure).
    /// Returns `false` when the queue was closed instead of accepting.
    pub fn push(&self, item: T) -> bool {
        let mut st = self.lock();
        while st.items.len() >= self.capacity && !st.closed {
            st = self
                .not_full
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
        if st.closed {
            return false;
        }
        self.insert(st, item);
        true
    }

    /// Enqueues `item` only if a slot is free right now. Never blocks;
    /// hands the item back on failure so the caller can shed it with a
    /// structured response instead of dropping it.
    ///
    /// # Errors
    ///
    /// `Full` when at capacity, `Closed` when closed (item returned
    /// through [`PushError`]'s accompanying tuple).
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let st = self.lock();
        if st.closed {
            return Err((item, PushError::Closed));
        }
        if st.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        self.insert(st, item);
        Ok(())
    }

    /// Enqueues `item`, waiting at most `wait` for a slot — the
    /// bounded-wait admission discipline. On timeout the item comes back
    /// with `Full` so the caller sheds it instead of stalling forever.
    ///
    /// # Errors
    ///
    /// `Full` when no slot freed within `wait`, `Closed` when closed.
    pub fn push_timeout(&self, item: T, wait: Duration) -> Result<(), (T, PushError)> {
        let deadline = std::time::Instant::now() + wait;
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err((item, PushError::Closed));
            }
            if st.items.len() < self.capacity {
                self.insert(st, item);
                return Ok(());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err((item, PushError::Full));
            }
            let (guard, _timeout) = self
                .not_full
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    /// Dequeues the next item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained — the worker's exit
    /// signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self
                .not_empty
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Dequeues the next item without blocking — how an idle shard steals
    /// from a hot one's backlog. `None` when empty (closed or not).
    pub fn try_pop(&self) -> Option<T> {
        let mut st = self.lock();
        let item = st.items.pop_front()?;
        drop(st);
        self.not_full.notify_one();
        Some(item)
    }

    /// Dequeues the next item, waiting at most `wait`. Distinguishes a
    /// quiet-but-open queue (`Empty`, so the worker can go steal) from a
    /// closed-and-drained one (`Closed`, the exit signal).
    pub fn pop_timeout(&self, wait: Duration) -> PopResult<T> {
        let deadline = std::time::Instant::now() + wait;
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return PopResult::Item(item);
            }
            if st.closed {
                return PopResult::Closed;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return PopResult::Empty;
            }
            let (guard, _timeout) = self
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    /// Removes and returns every queued item matching `pred`, preserving
    /// the relative order of survivors — the deadline sweeper's primitive
    /// (expired requests leave the queue without reaching a worker).
    pub fn drain_matching(&self, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut st = self.lock();
        let mut kept = VecDeque::with_capacity(st.items.len());
        let mut drained = Vec::new();
        for item in st.items.drain(..) {
            if pred(&item) {
                drained.push(item);
            } else {
                kept.push_back(item);
            }
        }
        st.items = kept;
        drop(st);
        if !drained.is_empty() {
            // Freed slots: unblock producers parked in push/push_timeout.
            self.not_full.notify_all();
        }
        drained
    }

    /// Closes the queue: producers are refused from now on; consumers
    /// drain the remaining items and then see `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Number of items currently queued (racy by nature — a routing hint,
    /// not a synchronization primitive).
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// The deepest the queue ever got — the backpressure observability
    /// counter (`service_queue_max_depth`).
    pub fn max_depth(&self) -> usize {
        self.lock().max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_close_semantics() {
        let q = BoundedQueue::new(8);
        assert!(q.push(1));
        assert!(q.push(2));
        q.close();
        assert!(!q.push(3), "closed queue refuses producers");
        assert_eq!(q.try_push(4), Err((4, PushError::Closed)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn try_push_sheds_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        // Full: the item comes back immediately, no blocking.
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
        assert_eq!(q.max_depth(), 2, "high-water tracked on try_push too");
    }

    #[test]
    fn push_timeout_waits_then_reports_full() {
        let q = BoundedQueue::new(1);
        assert!(q.push(0));
        let started = std::time::Instant::now();
        let err = q
            .push_timeout(1, Duration::from_millis(30))
            .expect_err("queue is full");
        assert_eq!(err, (1, PushError::Full));
        assert!(
            started.elapsed() >= Duration::from_millis(25),
            "bounded wait actually waited"
        );
        // A freed slot within the window admits the item.
        let q = Arc::new(BoundedQueue::new(1));
        assert!(q.push(0));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                q.pop()
            })
        };
        assert_eq!(q.push_timeout(1, Duration::from_secs(5)), Ok(()));
        assert_eq!(popper.join().unwrap(), Some(0));
    }

    #[test]
    fn pop_timeout_distinguishes_empty_from_closed() {
        let q: BoundedQueue<i32> = BoundedQueue::new(2);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), PopResult::Empty);
        assert!(q.push(7));
        assert_eq!(
            q.pop_timeout(Duration::from_millis(5)),
            PopResult::Item(7)
        );
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), PopResult::Closed);
    }

    #[test]
    fn drain_matching_evicts_in_place_and_keeps_order() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            assert!(q.push(i));
        }
        let evens = q.drain_matching(|v| v % 2 == 0);
        assert_eq!(evens, vec![0, 2, 4]);
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
    }

    #[test]
    fn drain_unblocks_a_parked_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        assert!(q.push(0));
        let sweeper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                q.drain_matching(|_| true)
            })
        };
        // Blocks until the sweeper frees the slot.
        assert!(q.push(1));
        assert_eq!(sweeper.join().unwrap(), vec![0]);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), PopResult::Item(1));
    }

    #[test]
    fn capacity_bounds_depth_under_backpressure() {
        let q = Arc::new(BoundedQueue::new(2));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    // Let the producer race ahead into the bound.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    got.push(v);
                }
                got
            })
        };
        for i in 0..32 {
            assert!(q.push(i));
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
        assert!(
            q.max_depth() <= 2,
            "producer overran the bound: depth {}",
            q.max_depth()
        );
    }

    #[test]
    fn multiple_workers_drain_everything_exactly_once() {
        let q = Arc::new(BoundedQueue::new(4));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            assert!(q.push(i));
        }
        q.close();
        let mut all: Vec<i32> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
