//! A bounded multi-producer/multi-consumer work queue with blocking
//! backpressure, built on `Mutex` + `Condvar` (no external deps).
//!
//! The batch engine feeds request indices through one of these to its
//! worker pool. The bound is the backpressure policy: a producer that gets
//! ahead of the workers blocks in [`BoundedQueue::push`] until a slot
//! frees, so a huge manifest never balloons resident memory, and `serve`
//! naturally stops reading stdin when the pool is saturated.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark of the queue depth, for the service metrics.
    max_depth: usize,
}

/// A bounded FIFO shared between one or more producers and a worker pool.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                max_depth: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        // A worker that panicked while holding the lock cannot corrupt the
        // VecDeque invariants we rely on; keep serving.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues `item`, blocking while the queue is full (backpressure).
    /// Returns `false` when the queue was closed instead of accepting.
    pub fn push(&self, item: T) -> bool {
        let mut st = self.lock();
        while st.items.len() >= self.capacity && !st.closed {
            st = self
                .not_full
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
        if st.closed {
            return false;
        }
        st.items.push_back(item);
        st.max_depth = st.max_depth.max(st.items.len());
        drop(st);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the next item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained — the worker's exit
    /// signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self
                .not_empty
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: producers are refused from now on; consumers
    /// drain the remaining items and then see `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// The deepest the queue ever got — the backpressure observability
    /// counter (`service_queue_max_depth`).
    pub fn max_depth(&self) -> usize {
        self.lock().max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_close_semantics() {
        let q = BoundedQueue::new(8);
        assert!(q.push(1));
        assert!(q.push(2));
        q.close();
        assert!(!q.push(3), "closed queue refuses producers");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn capacity_bounds_depth_under_backpressure() {
        let q = Arc::new(BoundedQueue::new(2));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    // Let the producer race ahead into the bound.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    got.push(v);
                }
                got
            })
        };
        for i in 0..32 {
            assert!(q.push(i));
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
        assert!(
            q.max_depth() <= 2,
            "producer overran the bound: depth {}",
            q.max_depth()
        );
    }

    #[test]
    fn multiple_workers_drain_everything_exactly_once() {
        let q = Arc::new(BoundedQueue::new(4));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            assert!(q.push(i));
        }
        q.close();
        let mut all: Vec<i32> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
