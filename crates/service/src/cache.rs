//! The compile cache: a bounded in-memory LRU in front of an optional
//! persistent on-disk store.
//!
//! Both layers are keyed by the content-addressed fingerprint computed by
//! [`gpgpu_core::CompileOptions::fingerprint`] and store the rendered
//! [`CachedArtifact`]. The disk layout is versioned by path — entries live
//! under `<root>/v3/<fingerprint>.json` where `v3` derives from
//! [`gpgpu_core::CACHE_SCHEMA`] — so a format bump changes the directory
//! and every stale entry is orphaned rather than misread; each file
//! additionally embeds the schema tag and its own fingerprint, and a file
//! that fails either check is deleted and treated as a miss.

use gpgpu_core::{CachedArtifact, CACHE_SCHEMA};
use gpgpu_tuning::fault;
use std::collections::HashMap;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// What a cache probe did, for the metrics/trace plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-memory LRU.
    MemoryHit,
    /// Served from the on-disk store (and promoted into memory).
    DiskHit,
    /// Not cached anywhere.
    Miss,
}

/// The bounded in-memory LRU layer.
struct MemoryCache {
    entries: HashMap<String, (u64, CachedArtifact)>,
    /// Monotonic use counter; the smallest stamp is the eviction victim.
    tick: u64,
    capacity: usize,
}

impl MemoryCache {
    fn new(capacity: usize) -> MemoryCache {
        MemoryCache {
            entries: HashMap::new(),
            tick: 0,
            capacity,
        }
    }

    fn get(&mut self, fingerprint: &str) -> Option<CachedArtifact> {
        self.tick += 1;
        let tick = self.tick;
        let (stamp, artifact) = self.entries.get_mut(fingerprint)?;
        *stamp = tick;
        Some(artifact.clone())
    }

    /// Inserts, returning the fingerprint of the entry evicted to make
    /// room, if any.
    fn insert(&mut self, fingerprint: String, artifact: CachedArtifact) -> Option<String> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        self.entries.insert(fingerprint, (self.tick, artifact));
        if self.entries.len() <= self.capacity {
            return None;
        }
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, (stamp, _))| *stamp)
            .map(|(fp, _)| fp.clone())?;
        self.entries.remove(&victim);
        Some(victim)
    }
}

/// The persistent store: one pretty-printed JSON artifact per fingerprint
/// under a schema-versioned directory.
struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Opens (and creates) the store under `root`. The versioned
    /// subdirectory is derived from [`CACHE_SCHEMA`] (`gpgpu-cache/v3` →
    /// `v3`).
    fn open(root: &Path) -> std::io::Result<DiskCache> {
        let version = CACHE_SCHEMA.rsplit('/').next().unwrap_or("v3");
        let dir = root.join(version);
        std::fs::create_dir_all(&dir)?;
        Ok(DiskCache { dir })
    }

    fn path_for(&self, fingerprint: &str) -> PathBuf {
        self.dir.join(format!("{fingerprint}.json"))
    }

    /// Loads an entry; a missing, unreadable, mis-schema'd or
    /// wrong-fingerprint file is a miss (corrupt files are deleted — a
    /// *self-heal*, reported through [`DiskFault::healed`] so the engine
    /// can count it).
    fn load(&self, fingerprint: &str) -> Result<Option<CachedArtifact>, DiskFault> {
        let path = self.path_for(fingerprint);
        let mut text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(DiskFault {
                    detail: format!("read {}: {e}", path.display()),
                    healed: false,
                })
            }
        };
        // `GPGPU_FAULT=io:corrupt-read` — garble the bytes the way a bad
        // sector would, exercising the delete-and-self-heal path below.
        if fault::io_read_corrupt() && !text.is_empty() {
            let mid = text.len() / 2;
            text.replace_range(mid..mid + 1, "\u{1}");
        }
        let parsed = gpgpu_trace::parse_json(&text)
            .map_err(|e| e.to_string())
            .and_then(|doc| CachedArtifact::from_json(&doc));
        match parsed {
            Ok(artifact) if artifact.fingerprint == fingerprint => Ok(Some(artifact)),
            Ok(artifact) => {
                let _ = std::fs::remove_file(&path);
                Err(DiskFault {
                    detail: format!(
                        "entry {} carries fingerprint {}; deleted",
                        path.display(),
                        artifact.fingerprint
                    ),
                    healed: true,
                })
            }
            Err(e) => {
                let _ = std::fs::remove_file(&path);
                Err(DiskFault {
                    detail: format!("stale or corrupt {}: {e}; deleted", path.display()),
                    healed: true,
                })
            }
        }
    }

    /// Persists an entry. Writes to a temp file, fsyncs it, renames, and
    /// fsyncs the directory (the tuning store's publish discipline) so a
    /// crash cannot leave a half-written artifact under the real name.
    /// The write and the rename run through the `io:*` fault probes
    /// (`short-write`, `enospc`, `rename`) so the engine's degrade path is
    /// testable.
    fn store(&self, artifact: &CachedArtifact) -> Result<(), String> {
        let path = self.path_for(&artifact.fingerprint);
        let tmp = self.dir.join(format!(
            ".{}.tmp-{}",
            artifact.fingerprint,
            std::process::id()
        ));
        let payload = artifact.to_json().pretty();
        let write_tmp = || -> std::io::Result<()> {
            match fault::io_write_fault() {
                Some(fault::IoWriteFault::ShortWrite) => {
                    // Persist a real torn prefix, then fail — the tmp file
                    // on disk looks exactly like a mid-write crash.
                    std::fs::write(&tmp, &payload.as_bytes()[..payload.len() / 2])?;
                    Err(std::io::Error::other("injected short write"))
                }
                Some(fault::IoWriteFault::Enospc) => Err(std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    "injected ENOSPC",
                )),
                None => {
                    let mut f = File::create(&tmp)?;
                    f.write_all(payload.as_bytes())?;
                    f.sync_data()
                }
            }
        };
        let write = write_tmp().and_then(|()| {
            if fault::io_rename_fault() {
                return Err(std::io::Error::other("injected rename failure"));
            }
            std::fs::rename(&tmp, &path)?;
            // Make the rename itself durable.
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
            Ok(())
        });
        write.map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("store {}: {e}", path.display())
        })
    }
}

/// The two-layer compile cache the engine consults per request.
pub struct CompileCache {
    memory: MemoryCache,
    disk: Option<DiskCache>,
}

/// A soft failure in the persistent layer — never fatal to the request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskFault {
    /// Human-readable description for the metrics/trace plumbing.
    pub detail: String,
    /// Whether the store repaired itself by deleting the offending entry
    /// (corrupt or fingerprint-mismatched file). `false` for plain I/O
    /// failures where nothing was removed.
    pub healed: bool,
}

/// The result of one [`CompileCache::get`] probe.
pub struct CacheProbe {
    /// The artifact, when either layer held it.
    pub artifact: Option<CachedArtifact>,
    /// Which layer answered.
    pub outcome: CacheOutcome,
    /// A soft disk error (corrupt entry, I/O failure), reported for the
    /// metrics but never fatal to the request.
    pub disk_error: Option<DiskFault>,
}

impl CompileCache {
    /// A cache holding at most `memory_entries` artifacts in memory
    /// (0 disables the memory layer) and persisting under `disk_root`
    /// when given.
    ///
    /// # Errors
    ///
    /// Fails only when the on-disk store directory cannot be created.
    pub fn new(
        memory_entries: usize,
        disk_root: Option<&Path>,
    ) -> std::io::Result<CompileCache> {
        let disk = match disk_root {
            Some(root) => Some(DiskCache::open(root)?),
            None => None,
        };
        Ok(CompileCache {
            memory: MemoryCache::new(memory_entries),
            disk,
        })
    }

    /// Probes both layers for `fingerprint`; a disk hit is promoted into
    /// the memory layer.
    pub fn get(&mut self, fingerprint: &str) -> CacheProbe {
        if let Some(artifact) = self.memory.get(fingerprint) {
            return CacheProbe {
                artifact: Some(artifact),
                outcome: CacheOutcome::MemoryHit,
                disk_error: None,
            };
        }
        let mut disk_error = None;
        if let Some(disk) = &self.disk {
            match disk.load(fingerprint) {
                Ok(Some(artifact)) => {
                    self.memory
                        .insert(fingerprint.to_string(), artifact.clone());
                    return CacheProbe {
                        artifact: Some(artifact),
                        outcome: CacheOutcome::DiskHit,
                        disk_error: None,
                    };
                }
                Ok(None) => {}
                Err(e) => disk_error = Some(e),
            }
        }
        CacheProbe {
            artifact: None,
            outcome: CacheOutcome::Miss,
            disk_error,
        }
    }

    /// Stores a freshly compiled artifact in both layers. Returns the
    /// evicted memory fingerprint (if the LRU overflowed) and any soft
    /// disk error.
    pub fn put(&mut self, artifact: &CachedArtifact) -> (Option<String>, Option<DiskFault>) {
        let evicted = self
            .memory
            .insert(artifact.fingerprint.clone(), artifact.clone());
        let disk_error = self.disk.as_ref().and_then(|d| {
            d.store(artifact).err().map(|detail| DiskFault {
                detail,
                healed: false,
            })
        });
        (evicted, disk_error)
    }

    /// Whether a persistent layer is attached.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(fp: &str, source: &str) -> CachedArtifact {
        CachedArtifact {
            fingerprint: fp.to_string(),
            kernel_name: "k".into(),
            source: source.to_string(),
            launches: Vec::new(),
            time_ms: 1.0,
            gflops: 2.0,
            bandwidth_gbps: 3.0,
            degraded: None,
            fusion: None,
        }
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut cache = CompileCache::new(2, None).unwrap();
        cache.put(&artifact("a", "A"));
        cache.put(&artifact("b", "B"));
        // Touch `a` so `b` is the LRU victim.
        assert_eq!(cache.get("a").outcome, CacheOutcome::MemoryHit);
        let (evicted, _) = cache.put(&artifact("c", "C"));
        assert_eq!(evicted.as_deref(), Some("b"));
        assert_eq!(cache.get("b").outcome, CacheOutcome::Miss);
        assert_eq!(cache.get("a").outcome, CacheOutcome::MemoryHit);
        assert_eq!(cache.get("c").outcome, CacheOutcome::MemoryHit);
    }

    #[test]
    fn disk_store_round_trips_and_survives_a_new_cache() {
        let dir = std::env::temp_dir().join(format!("gpgpu-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut cache = CompileCache::new(4, Some(&dir)).unwrap();
            cache.put(&artifact("feed", "source text"));
        }
        // A fresh process/cache over the same root hits from disk.
        let mut cache = CompileCache::new(4, Some(&dir)).unwrap();
        let probe = cache.get("feed");
        assert_eq!(probe.outcome, CacheOutcome::DiskHit);
        assert_eq!(probe.artifact.unwrap().source, "source text");
        // Promoted: the second probe is a memory hit.
        assert_eq!(cache.get("feed").outcome, CacheOutcome::MemoryHit);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_and_mismatched_disk_entries_are_deleted_misses() {
        let dir = std::env::temp_dir().join(format!("gpgpu-cache-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = CompileCache::new(4, Some(&dir)).unwrap();
        let vdir = dir.join("v3");
        std::fs::write(vdir.join("0bad.json"), "not json at all").unwrap();
        let probe = cache.get("0bad");
        assert_eq!(probe.outcome, CacheOutcome::Miss);
        assert!(probe.disk_error.as_ref().is_some_and(|f| f.healed));
        assert!(!vdir.join("0bad.json").exists(), "corrupt entry deleted");
        // A valid file stored under the wrong fingerprint is also refused.
        std::fs::write(
            vdir.join("yyyy.json"),
            artifact("xxxx", "S").to_json().pretty(),
        )
        .unwrap();
        let probe = cache.get("yyyy");
        assert_eq!(probe.outcome, CacheOutcome::Miss);
        assert!(probe.disk_error.as_ref().is_some_and(|f| f.healed));
        assert!(!vdir.join("yyyy.json").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_version_names_the_disk_directory() {
        let dir = std::env::temp_dir().join(format!("gpgpu-cache-ver-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = CompileCache::new(1, Some(&dir)).unwrap();
        cache.put(&artifact("abcd", "S"));
        // `gpgpu-cache/v3` → a `v3/` directory; stale `v1/`/`v2/` entries
        // from before the fusion-aware fingerprint are orphaned, never
        // read.
        assert!(dir.join("v3").join("abcd.json").exists());
        assert!(!dir.join("v2").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_bump_orphans_the_previous_generation() {
        // A root carrying a pre-fusion `v2/` store: the new cache must
        // neither read nor disturb it — the entry is simply unreachable
        // (v2 fingerprints embedded the old schema tag, so they cannot
        // collide with v3 keys anyway).
        let dir = std::env::temp_dir().join(format!("gpgpu-cache-orphan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let v2 = dir.join("v2");
        std::fs::create_dir_all(&v2).unwrap();
        let stale = artifact("feed", "old generation");
        std::fs::write(v2.join("feed.json"), stale.to_json().pretty()).unwrap();
        let mut cache = CompileCache::new(4, Some(&dir)).unwrap();
        let probe = cache.get("feed");
        assert_eq!(probe.outcome, CacheOutcome::Miss);
        assert!(probe.disk_error.is_none(), "{:?}", probe.disk_error);
        // The orphan is left intact for manual cleanup, and the new
        // generation writes beside it.
        assert!(v2.join("feed.json").exists());
        cache.put(&artifact("feed", "new generation"));
        assert!(dir.join("v3").join("feed.json").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
