//! The batch-compilation engine: a compile cache, a worker pool fed by a
//! bounded queue, and per-request fault containment.
//!
//! One [`Engine`] serves many requests. Each request resolves to a
//! content-addressed fingerprint; a cache hit returns the stored artifact
//! byte-identically, a miss compiles under `catch_unwind` so a poisoned
//! kernel (or an injected `GPGPU_FAULT=panic:service-<kernel>` fault)
//! degrades only its own request into a structured `internal` error while
//! the rest of the batch completes normally. Degraded compilations are
//! *not* persisted — a transient fault must not pin its fallback output
//! into the cache.

use crate::cache::{CacheOutcome, CompileCache};
use crate::queue::BoundedQueue;
use crate::request::{
    CacheDisposition, CompileRequest, CompileResponse, ErrorClass,
};
use gpgpu_core::{
    compile, CompileError, CompileOptions, Json, MetricsRegistry, Profiler, SpanId, TraceEvent,
};
use gpgpu_sim::MachineDesc;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads for [`Engine::run_batch`].
    pub jobs: usize,
    /// Bounded request-queue capacity (the backpressure knob).
    pub queue_capacity: usize,
    /// In-memory LRU capacity, in artifacts.
    pub cache_entries: usize,
    /// Root of the persistent on-disk cache; `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Deadline applied to requests that do not carry their own, in
    /// milliseconds; `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            jobs: 4,
            queue_capacity: 64,
            cache_entries: 256,
            cache_dir: None,
            default_deadline_ms: None,
        }
    }
}

/// Aggregated service counters, exported through [`Engine::metrics`].
#[derive(Debug, Clone, Default)]
struct Counters {
    requests: u64,
    ok: u64,
    degraded: u64,
    errors: u64,
    memory_hits: u64,
    disk_hits: u64,
    misses: u64,
    evictions: u64,
    disk_errors: u64,
    latency_micros_total: u64,
    latency_micros_max: u64,
    queue_max_depth: u64,
}

/// The long-lived batch-compilation engine.
pub struct Engine {
    config: ServiceConfig,
    cache: Mutex<CompileCache>,
    counters: Mutex<Counters>,
    events: Mutex<Vec<TraceEvent>>,
    /// When the engine was built — the `stats` uptime epoch.
    started: Instant,
    /// Span table shared with every compile this engine runs: request
    /// stages (`queue-wait` → `cache-probe` → `compile` → `respond`) nest
    /// the compiler's own pass/candidate spans. Spans accumulate for the
    /// engine's lifetime (self-profile semantics), which is what the batch
    /// attribution table and `--profile` exports read.
    profiler: Profiler,
    /// Live latency histograms (`service_latency_*` per outcome class,
    /// `service_stage_*` per request stage), merged into [`Engine::metrics`]
    /// snapshots and the `stats` document.
    hists: Mutex<MetricsRegistry>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Engine {
    /// Builds an engine, opening (and creating) the persistent cache
    /// directory when the config names one.
    ///
    /// # Errors
    ///
    /// Fails only when the cache directory cannot be created.
    pub fn new(config: ServiceConfig) -> std::io::Result<Engine> {
        let cache = CompileCache::new(config.cache_entries, config.cache_dir.as_deref())?;
        Ok(Engine {
            config,
            cache: Mutex::new(cache),
            counters: Mutex::new(Counters::default()),
            events: Mutex::new(Vec::new()),
            started: Instant::now(),
            profiler: Profiler::new(),
            hists: Mutex::new(MetricsRegistry::new()),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn emit(&self, event: TraceEvent) {
        lock(&self.events).push(event);
    }

    /// Drains the trace events recorded so far (`service-request` /
    /// `service-cache` kinds), in emission order.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut lock(&self.events))
    }

    /// The service counters as a metrics registry (the `--metrics` JSON
    /// document and the CI smoke assertions read these globals).
    pub fn metrics(&self) -> MetricsRegistry {
        let c = lock(&self.counters).clone();
        let mut reg = MetricsRegistry::new();
        let hits = c.memory_hits + c.disk_hits;
        for (name, value) in [
            ("service_requests", c.requests),
            ("service_ok", c.ok),
            ("service_degraded", c.degraded),
            ("service_errors", c.errors),
            ("service_cache_hits", hits),
            ("service_cache_memory_hits", c.memory_hits),
            ("service_cache_disk_hits", c.disk_hits),
            ("service_cache_misses", c.misses),
            ("service_cache_evictions", c.evictions),
            ("service_cache_disk_errors", c.disk_errors),
            ("service_latency_micros_total", c.latency_micros_total),
            ("service_latency_micros_max", c.latency_micros_max),
            ("service_queue_max_depth", c.queue_max_depth),
        ] {
            reg.push_global(name, value as f64);
        }
        for (name, hist) in lock(&self.hists).histograms() {
            reg.merge_histogram(name, hist);
        }
        reg
    }

    /// The span table every request stage and contained compile records
    /// into — `gpgpuc batch` reads it for the per-stage attribution table
    /// and the `--profile` exporters.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    fn record_duration(&self, name: &str, micros: u64) {
        lock(&self.hists).record_duration(name, micros);
    }

    /// The live telemetry snapshot answering a `{"stats": true}` control
    /// request on the serve loop: uptime, request counts, queue
    /// capacity/high-water, cache hit ratio, and per-class / per-stage
    /// latency histograms with percentile estimates.
    pub fn stats_json(&self) -> Json {
        let c = lock(&self.counters).clone();
        let hits = c.memory_hits + c.disk_hits;
        let probes = hits + c.misses;
        let hit_ratio = if probes == 0 {
            0.0
        } else {
            hits as f64 / probes as f64
        };
        let hists = lock(&self.hists);
        let mut latency: Vec<(String, Json)> = Vec::new();
        let mut stages: Vec<(String, Json)> = Vec::new();
        for (name, h) in hists.histograms() {
            if let Some(class) = name.strip_prefix("service_latency_") {
                latency.push((class.to_string(), h.to_json()));
            } else if let Some(stage) = name.strip_prefix("service_stage_") {
                stages.push((stage.to_string(), h.to_json()));
            }
        }
        Json::obj([
            ("schema", Json::str(gpgpu_core::trace::SCHEMA)),
            (
                "stats",
                Json::obj([
                    (
                        "uptime_us",
                        Json::count(self.started.elapsed().as_micros() as u64),
                    ),
                    (
                        "requests",
                        Json::obj([
                            ("total", Json::count(c.requests)),
                            ("ok", Json::count(c.ok)),
                            ("degraded", Json::count(c.degraded)),
                            ("errors", Json::count(c.errors)),
                        ]),
                    ),
                    (
                        "queue",
                        Json::obj([
                            ("capacity", Json::count(self.config.queue_capacity as u64)),
                            ("high_water", Json::count(c.queue_max_depth)),
                        ]),
                    ),
                    (
                        "cache",
                        Json::obj([
                            ("hits", Json::count(hits)),
                            ("memory_hits", Json::count(c.memory_hits)),
                            ("disk_hits", Json::count(c.disk_hits)),
                            ("misses", Json::count(c.misses)),
                            ("evictions", Json::count(c.evictions)),
                            ("disk_errors", Json::count(c.disk_errors)),
                            ("hit_ratio", Json::Num(hit_ratio)),
                        ]),
                    ),
                    ("latency", Json::Obj(latency)),
                    ("stages", Json::Obj(stages)),
                ]),
            ),
        ])
    }

    /// Parses and serves one NDJSON request line — the `serve` loop's unit
    /// of work. A malformed line yields a structured `bad-request`
    /// response, never a crash.
    pub fn handle_line(&self, line: &str, position: usize) -> CompileResponse {
        let started = Instant::now();
        let mut req = match CompileRequest::parse(line, position) {
            Ok(req) => req,
            Err(detail) => {
                let resp = CompileResponse::failure(
                    position.to_string(),
                    ErrorClass::BadRequest,
                    detail,
                );
                self.finish(&resp, "?", started, None);
                return resp;
            }
        };
        if let Err(detail) = req.resolve_file() {
            let resp = CompileResponse::failure(req.id, ErrorClass::BadRequest, detail);
            self.finish(&resp, "?", started, None);
            return resp;
        }
        self.handle(req, started)
    }

    /// Serves one parsed request. `started` is when the request entered
    /// the system (enqueue time for batches), so deadlines cover queueing.
    pub fn handle(&self, req: CompileRequest, started: Instant) -> CompileResponse {
        // Book the time between enqueue and this worker picking the
        // request up — the queue-wait stage.
        let entered = Instant::now();
        self.profiler
            .record_span_between(None, "queue-wait", "service", started, entered);
        self.record_duration(
            "service_stage_queue_wait",
            entered.saturating_duration_since(started).as_micros() as u64,
        );
        let req_span = self.profiler.span("request", "service");
        let parent = Some(req_span.id());
        let deadline_ms = req.deadline_ms.or(self.config.default_deadline_ms);
        if let Some(limit) = deadline_ms {
            let waited = started.elapsed().as_millis() as u64;
            if waited > limit {
                let resp = CompileResponse::failure(
                    req.id,
                    ErrorClass::Deadline,
                    format!("deadline of {limit} ms elapsed after {waited} ms in queue"),
                );
                self.finish(&resp, "?", started, parent);
                return resp;
            }
        }
        let Some(source) = req.source_text() else {
            let resp = CompileResponse::failure(
                req.id,
                ErrorClass::BadRequest,
                "request still points at an unresolved file",
            );
            self.finish(&resp, "?", started, parent);
            return resp;
        };
        let Some(machine) = MachineDesc::by_name(&req.machine) else {
            let resp = CompileResponse::failure(
                req.id,
                ErrorClass::BadRequest,
                format!(
                    "unknown machine `{}` (known: {})",
                    req.machine,
                    MachineDesc::KNOWN_NAMES.join(", ")
                ),
            );
            self.finish(&resp, "?", started, parent);
            return resp;
        };
        let kernel = match gpgpu_ast::parse_kernel(source) {
            Ok(k) => k,
            Err(e) => {
                let resp =
                    CompileResponse::failure(req.id, ErrorClass::Parse, e.to_string());
                self.finish(&resp, "?", started, parent);
                return resp;
            }
        };
        let kernel_name = kernel.name.clone();
        let mut opts = CompileOptions::new(machine)
            .with_stages(req.stages)
            .with_verify_seed(req.verify_seed)
            .with_source(source)
            .with_profiler(self.profiler.clone());
        for (name, value) in &req.bindings {
            opts = opts.bind(name, *value);
        }

        // Cache probe.
        let probe_span = self.profiler.span_under(parent, "cache-probe", "service");
        let probe_started = Instant::now();
        let fingerprint = opts.fingerprint(&kernel);
        let probe = lock(&self.cache).get(&fingerprint);
        drop(probe_span);
        self.record_duration(
            "service_stage_cache_probe",
            probe_started.elapsed().as_micros() as u64,
        );
        if let Some(err) = &probe.disk_error {
            self.note_disk_error(&fingerprint, err);
        }
        let disposition = match probe.outcome {
            CacheOutcome::MemoryHit => CacheDisposition::Memory,
            CacheOutcome::DiskHit => CacheDisposition::Disk,
            CacheOutcome::Miss => CacheDisposition::Miss,
        };
        {
            let op = match probe.outcome {
                CacheOutcome::MemoryHit => "hit",
                CacheOutcome::DiskHit => "disk-hit",
                CacheOutcome::Miss => "miss",
            };
            self.emit(TraceEvent::ServiceCache {
                op,
                fingerprint: fingerprint.clone(),
            });
        }
        if let Some(artifact) = probe.artifact {
            let resp = CompileResponse {
                id: req.id,
                artifact: Some(artifact),
                error: None,
                cache: disposition,
                micros: started.elapsed().as_micros() as u64,
            };
            self.finish(&resp, &kernel_name, started, parent);
            return resp;
        }

        // Cold compile, contained: a panic here — including the injected
        // per-request `service-<kernel>` fault site — poisons only this
        // request. The stage span is opened before the `catch_unwind` so
        // an unwinding fault still closes it (guard drop), and the
        // compiler's own spans nest under it because `opts` shares the
        // engine's profiler.
        let compile_span = self.profiler.span_under(parent, "compile", "service");
        let opts = opts.under_span(compile_span.id());
        let compile_started = Instant::now();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gpgpu_core::fault::maybe_panic(&format!("service-{kernel_name}"));
            compile(&kernel, &opts)
        }));
        drop(compile_span);
        self.record_duration(
            "service_stage_compile",
            compile_started.elapsed().as_micros() as u64,
        );
        let resp = match attempt {
            Err(payload) => CompileResponse::failure(
                req.id,
                ErrorClass::Internal,
                gpgpu_core::error::panic_message(payload),
            ),
            Ok(Err(e)) => {
                let class = match e {
                    CompileError::Internal(_) => ErrorClass::Internal,
                    _ => ErrorClass::Compile,
                };
                CompileResponse::failure(req.id, class, e.to_string())
            }
            Ok(Ok(compiled)) => {
                let artifact = compiled.cache_artifact(&fingerprint);
                // Degraded results are transient (a fault's fallback); only
                // fully optimized artifacts are worth pinning.
                if compiled.degraded.is_none() {
                    let (evicted, disk_error) = lock(&self.cache).put(&artifact);
                    self.emit(TraceEvent::ServiceCache {
                        op: "store",
                        fingerprint: fingerprint.clone(),
                    });
                    if self.has_disk() {
                        self.emit(TraceEvent::ServiceCache {
                            op: "disk-store",
                            fingerprint: fingerprint.clone(),
                        });
                    }
                    if let Some(victim) = evicted {
                        lock(&self.counters).evictions += 1;
                        self.emit(TraceEvent::ServiceCache {
                            op: "evict",
                            fingerprint: victim,
                        });
                    }
                    if let Some(err) = disk_error {
                        self.note_disk_error(&fingerprint, &err);
                    }
                }
                CompileResponse {
                    id: req.id,
                    artifact: Some(artifact),
                    error: None,
                    cache: CacheDisposition::Miss,
                    micros: 0,
                }
            }
        };
        let resp = CompileResponse {
            micros: started.elapsed().as_micros() as u64,
            ..resp
        };
        self.finish(&resp, &kernel_name, started, parent);
        resp
    }

    fn has_disk(&self) -> bool {
        lock(&self.cache).has_disk()
    }

    fn note_disk_error(&self, fingerprint: &str, err: &str) {
        lock(&self.counters).disk_errors += 1;
        self.emit(TraceEvent::ServiceCache {
            op: "disk-error",
            fingerprint: format!("{fingerprint}: {err}"),
        });
    }

    /// Books a finished response into the counters, the latency
    /// histograms, and the event stream.
    fn finish(
        &self,
        resp: &CompileResponse,
        kernel: &str,
        started: Instant,
        parent: Option<SpanId>,
    ) {
        let respond_span = self.profiler.span_under(parent, "respond", "service");
        let respond_started = Instant::now();
        let micros = started.elapsed().as_micros() as u64;
        let outcome = match &resp.error {
            Some(e) => e.class.as_str().to_string(),
            None => match &resp.artifact {
                Some(a) if a.degraded.is_some() => "degraded".to_string(),
                _ => "ok".to_string(),
            },
        };
        {
            let mut c = lock(&self.counters);
            c.requests += 1;
            match outcome.as_str() {
                "ok" => c.ok += 1,
                "degraded" => c.degraded += 1,
                _ => c.errors += 1,
            }
            match resp.cache {
                CacheDisposition::Memory => c.memory_hits += 1,
                CacheDisposition::Disk => c.disk_hits += 1,
                CacheDisposition::Miss if resp.error.is_none() => c.misses += 1,
                CacheDisposition::Miss => {}
            }
            c.latency_micros_total += micros;
            c.latency_micros_max = c.latency_micros_max.max(micros);
        }
        self.record_duration("service_latency_all", micros);
        self.record_duration(&format!("service_latency_{outcome}"), micros);
        self.emit(TraceEvent::ServiceRequest {
            id: resp.id.clone(),
            kernel: kernel.to_string(),
            cache_hit: resp.cache.is_hit(),
            micros,
            outcome,
        });
        drop(respond_span);
        self.record_duration(
            "service_stage_respond",
            respond_started.elapsed().as_micros() as u64,
        );
    }

    /// Runs a whole batch through the worker pool: requests flow through
    /// the bounded queue to `config.jobs` workers, and the responses come
    /// back **in request order** regardless of completion order.
    pub fn run_batch(&self, requests: Vec<CompileRequest>) -> Vec<CompileResponse> {
        let total = requests.len();
        let jobs = self.config.jobs.max(1).min(total.max(1));
        let queue: BoundedQueue<(usize, CompileRequest, Instant)> =
            BoundedQueue::new(self.config.queue_capacity);
        let results: Mutex<Vec<Option<CompileResponse>>> =
            Mutex::new((0..total).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    while let Some((index, req, enqueued)) = queue.pop() {
                        let resp = self.handle(req, enqueued);
                        lock(&results)[index] = Some(resp);
                    }
                });
            }
            for (index, req) in requests.into_iter().enumerate() {
                queue.push((index, req, Instant::now()));
            }
            queue.close();
        });
        {
            let mut c = lock(&self.counters);
            c.queue_max_depth = c.queue_max_depth.max(queue.max_depth() as u64);
        }
        let responses: Vec<CompileResponse> = lock(&results)
            .drain(..)
            .enumerate()
            .map(|(index, slot)| {
                slot.unwrap_or_else(|| {
                    CompileResponse::failure(
                        index.to_string(),
                        ErrorClass::Internal,
                        "worker exited without a response",
                    )
                })
            })
            .collect();
        responses
    }
}
