//! The batch-compilation engine: a compile cache, a worker pool fed by a
//! bounded queue, and per-request fault containment.
//!
//! One [`Engine`] serves many requests. Each request resolves to a
//! content-addressed fingerprint; a cache hit returns the stored artifact
//! byte-identically, a miss compiles under `catch_unwind` so a poisoned
//! kernel (or an injected `GPGPU_FAULT=panic:service-<kernel>` fault)
//! degrades only its own request into a structured `internal` error while
//! the rest of the batch completes normally. Degraded compilations are
//! *not* persisted — a transient fault must not pin its fallback output
//! into the cache.

use crate::cache::{CacheOutcome, CompileCache, DiskFault};
use crate::queue::BoundedQueue;
use crate::request::{
    CacheDisposition, CompileRequest, CompileResponse, ErrorClass, SourceSpec,
};
use gpgpu_core::{
    compile, CachedArtifact, CompileError, CompileOptions, FusionMeta, Json, MetricsRegistry,
    Profiler, SpanId, TraceEvent, TuningStore,
};
use gpgpu_fusion::{compile_fused, FusionError};
use gpgpu_sim::{CostModelKind, MachineDesc};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads for [`Engine::run_batch`].
    pub jobs: usize,
    /// Bounded request-queue capacity (the backpressure knob).
    pub queue_capacity: usize,
    /// In-memory LRU capacity, in artifacts.
    pub cache_entries: usize,
    /// Root of the persistent on-disk cache; `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Deadline applied to requests that do not carry their own, in
    /// milliseconds; `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// Timing model ranking candidates for every compile this engine runs
    /// (`gpgpuc serve --cost-model`). Part of each request's cache
    /// fingerprint, so artifacts never leak across models.
    pub cost_model: CostModelKind,
    /// Root of the persistent tuning store (`--tuning-dir`); `None`
    /// compiles store-less with full exploration.
    pub tuning_dir: Option<PathBuf>,
    /// Whether tuning-store hits may narrow the design-space search
    /// (`--no-warm-start` records outcomes without consuming them).
    pub warm_start: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            jobs: 4,
            queue_capacity: 64,
            cache_entries: 256,
            cache_dir: None,
            default_deadline_ms: None,
            cost_model: CostModelKind::default(),
            tuning_dir: None,
            warm_start: true,
        }
    }
}

/// Aggregated service counters, exported through [`Engine::metrics`].
#[derive(Debug, Clone, Default)]
struct Counters {
    requests: u64,
    ok: u64,
    degraded: u64,
    errors: u64,
    memory_hits: u64,
    disk_hits: u64,
    misses: u64,
    evictions: u64,
    disk_errors: u64,
    latency_micros_total: u64,
    latency_micros_max: u64,
    queue_max_depth: u64,
    /// Requests rejected by admission control (`overloaded` responses).
    shed: u64,
    /// Jobs an idle shard stole from another shard's backlog.
    steals: u64,
    /// Expired requests swept out of a queue before reaching a worker.
    swept: u64,
    /// Corrupt/mismatched on-disk cache entries deleted (self-heals).
    self_heals: u64,
    /// Requests failed with `deadline` *before* compiling because the
    /// remaining budget was under the shard's p50 compile estimate.
    deadline_preempted: u64,
    /// Durable-state writes (compile cache or tuning store) that failed —
    /// the "dying disk" early-warning counter.
    store_write_errors: u64,
    /// Fusion groups the engine planned (every `fuse` request that reached
    /// the planner; cache hits are not re-planned).
    fusion_planned: u64,
    /// Groups fused, compiled, and differentially verified.
    fusion_fused: u64,
    /// Groups that degraded to separate member compiles (planner
    /// rejection, fused-compile failure, or verification failure).
    fusion_rejected: u64,
    /// The subset of rejections where the *verifier* refused the fused
    /// kernel — a compiler bug worth alarming on, not a routine refusal.
    fusion_verify_failures: u64,
}

/// The long-lived batch-compilation engine.
pub struct Engine {
    config: ServiceConfig,
    cache: Mutex<CompileCache>,
    counters: Mutex<Counters>,
    events: Mutex<Vec<TraceEvent>>,
    /// When the engine was built — the `stats` uptime epoch.
    started: Instant,
    /// Span table shared with every compile this engine runs: request
    /// stages (`queue-wait` → `cache-probe` → `compile` → `respond`) nest
    /// the compiler's own pass/candidate spans. Spans accumulate for the
    /// engine's lifetime (self-profile semantics), which is what the batch
    /// attribution table and `--profile` exports read.
    profiler: Profiler,
    /// Live latency histograms (`service_latency_*` per outcome class,
    /// `service_stage_*` per request stage), merged into [`Engine::metrics`]
    /// snapshots and the `stats` document.
    hists: Mutex<MetricsRegistry>,
    /// Persistent tuning store shared by every compile this engine runs;
    /// `None` when the config names no `tuning_dir`.
    tuning: Option<Arc<TuningStore>>,
    /// Fingerprints currently being compiled — the cache-stampede guard.
    /// A request that misses the cache but finds its fingerprint here
    /// waits for the in-flight compile and takes the hit instead of
    /// duplicating the work (hot traffic arriving concurrently compiles
    /// once, not N times).
    inflight_fps: Mutex<HashSet<String>>,
    inflight_cv: Condvar,
}

/// Holds one fingerprint's slot in the stampede guard; releasing (on any
/// exit path, including an error response) wakes every waiter so they
/// re-probe the cache.
struct InflightSlot<'a> {
    engine: &'a Engine,
    fingerprint: String,
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        lock(&self.engine.inflight_fps).remove(&self.fingerprint);
        self.engine.inflight_cv.notify_all();
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Whether a request that has already waited `waited_ms` of its
/// `limit_ms` deadline is expired. A zero deadline is expired on arrival
/// — such a request must be refused at admission, never dispatched.
pub(crate) fn deadline_expired(limit_ms: u64, waited_ms: u64) -> bool {
    limit_ms == 0 || waited_ms > limit_ms
}

impl Engine {
    /// Builds an engine, opening (and creating) the persistent cache
    /// directory when the config names one.
    ///
    /// # Errors
    ///
    /// Fails only when the cache directory cannot be created.
    pub fn new(config: ServiceConfig) -> std::io::Result<Engine> {
        let cache = CompileCache::new(config.cache_entries, config.cache_dir.as_deref())?;
        // Opening the tuning store never fails — I/O problems yield a
        // degraded store that answers every lookup with full exploration.
        let tuning = config
            .tuning_dir
            .as_deref()
            .map(|dir| Arc::new(TuningStore::open(dir)));
        let engine = Engine {
            config,
            cache: Mutex::new(cache),
            counters: Mutex::new(Counters::default()),
            events: Mutex::new(Vec::new()),
            started: Instant::now(),
            profiler: Profiler::new(),
            hists: Mutex::new(MetricsRegistry::new()),
            tuning,
            inflight_fps: Mutex::new(HashSet::new()),
            inflight_cv: Condvar::new(),
        };
        if let Some(store) = &engine.tuning {
            let notes = store.drain_notes();
            let mut events = lock(&engine.events);
            for note in notes {
                events.push(match note {
                    gpgpu_core::StoreNote::Degraded { reason } => {
                        TraceEvent::StoreDegraded {
                            store: "tuning",
                            reason,
                        }
                    }
                    gpgpu_core::StoreNote::SelfHeal { detail } => TraceEvent::Note {
                        message: format!("tuning store self-heal: {detail}"),
                    },
                    gpgpu_core::StoreNote::WriteError { detail } => {
                        TraceEvent::StoreWriteError {
                            store: "tuning",
                            detail,
                        }
                    }
                });
            }
        }
        Ok(engine)
    }

    /// The engine's persistent tuning store, when one is open.
    pub fn tuning_store(&self) -> Option<&Arc<TuningStore>> {
        self.tuning.as_ref()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn emit(&self, event: TraceEvent) {
        lock(&self.events).push(event);
    }

    /// Drains the trace events recorded so far (`service-request` /
    /// `service-cache` kinds), in emission order.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut lock(&self.events))
    }

    /// The service counters as a metrics registry (the `--metrics` JSON
    /// document and the CI smoke assertions read these globals).
    pub fn metrics(&self) -> MetricsRegistry {
        let c = lock(&self.counters).clone();
        let mut reg = MetricsRegistry::new();
        let hits = c.memory_hits + c.disk_hits;
        for (name, value) in [
            ("service_requests", c.requests),
            ("service_ok", c.ok),
            ("service_degraded", c.degraded),
            ("service_errors", c.errors),
            ("service_cache_hits", hits),
            ("service_cache_memory_hits", c.memory_hits),
            ("service_cache_disk_hits", c.disk_hits),
            ("service_cache_misses", c.misses),
            ("service_cache_evictions", c.evictions),
            ("service_cache_disk_errors", c.disk_errors),
            ("service_latency_micros_total", c.latency_micros_total),
            ("service_latency_micros_max", c.latency_micros_max),
            ("service_queue_max_depth", c.queue_max_depth),
            ("service_shed_total", c.shed),
            ("service_steal_total", c.steals),
            ("service_swept_total", c.swept),
            ("service_cache_self_heals", c.self_heals),
            ("service_deadline_preempted", c.deadline_preempted),
            ("service_store_write_errors", c.store_write_errors),
            ("service_fusion_planned", c.fusion_planned),
            ("service_fusion_fused", c.fusion_fused),
            ("service_fusion_rejected", c.fusion_rejected),
            ("service_fusion_verify_failures", c.fusion_verify_failures),
        ] {
            reg.push_global(name, value as f64);
        }
        if let Some(store) = &self.tuning {
            let t = store.counters();
            for (name, value) in [
                ("service_tuning_warm_hits", t.warm_hits),
                ("service_tuning_neighbor_hits", t.neighbor_hits),
                ("service_tuning_misses", t.misses),
                ("service_tuning_reexplored", t.reexplored),
                ("service_tuning_demotions", t.demotions),
                ("service_tuning_self_heals", t.self_heals),
                ("service_tuning_write_errors", t.write_errors),
                ("service_tuning_degraded", t.degraded),
                ("service_tuning_refreshes", t.refreshes),
            ] {
                reg.push_global(name, value as f64);
            }
        }
        for (name, hist) in lock(&self.hists).histograms() {
            reg.merge_histogram(name, hist);
        }
        reg
    }

    /// The span table every request stage and contained compile records
    /// into — `gpgpuc batch` reads it for the per-stage attribution table
    /// and the `--profile` exporters.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    fn record_duration(&self, name: &str, micros: u64) {
        lock(&self.hists).record_duration(name, micros);
    }

    /// The live telemetry snapshot answering a `{"stats": true}` control
    /// request on the serve loop: uptime, request counts, queue
    /// capacity/high-water, cache hit ratio, and per-class / per-stage
    /// latency histograms with percentile estimates.
    pub fn stats_json(&self) -> Json {
        let c = lock(&self.counters).clone();
        let hits = c.memory_hits + c.disk_hits;
        let probes = hits + c.misses;
        let hit_ratio = if probes == 0 {
            0.0
        } else {
            hits as f64 / probes as f64
        };
        let hists = lock(&self.hists);
        let mut latency: Vec<(String, Json)> = Vec::new();
        let mut stages: Vec<(String, Json)> = Vec::new();
        let mut hierarchy: Vec<(String, Json)> = Vec::new();
        for (name, h) in hists.histograms() {
            if let Some(class) = name.strip_prefix("service_latency_") {
                latency.push((class.to_string(), h.to_json()));
            } else if let Some(counter) = name.strip_prefix("service_hierarchy_") {
                hierarchy.push((counter.to_string(), h.to_json()));
            } else if let Some(stage) = name.strip_prefix("service_stage_") {
                stages.push((stage.to_string(), h.to_json()));
            }
        }
        Json::obj([
            ("schema", Json::str(gpgpu_core::trace::SCHEMA)),
            (
                "stats",
                Json::obj([
                    (
                        "uptime_us",
                        Json::count(self.started.elapsed().as_micros() as u64),
                    ),
                    (
                        "requests",
                        Json::obj([
                            ("total", Json::count(c.requests)),
                            ("ok", Json::count(c.ok)),
                            ("degraded", Json::count(c.degraded)),
                            ("errors", Json::count(c.errors)),
                        ]),
                    ),
                    (
                        "queue",
                        Json::obj([
                            ("capacity", Json::count(self.config.queue_capacity as u64)),
                            ("high_water", Json::count(c.queue_max_depth)),
                        ]),
                    ),
                    (
                        "cache",
                        Json::obj([
                            ("hits", Json::count(hits)),
                            ("memory_hits", Json::count(c.memory_hits)),
                            ("disk_hits", Json::count(c.disk_hits)),
                            ("misses", Json::count(c.misses)),
                            ("evictions", Json::count(c.evictions)),
                            ("disk_errors", Json::count(c.disk_errors)),
                            ("self_heals", Json::count(c.self_heals)),
                            ("write_errors", Json::count(c.store_write_errors)),
                            ("hit_ratio", Json::Num(hit_ratio)),
                        ]),
                    ),
                    (
                        "tuning",
                        match &self.tuning {
                            Some(store) => store.stats_json(),
                            None => Json::Null,
                        },
                    ),
                    (
                        "fusion",
                        Json::obj([
                            ("planned", Json::count(c.fusion_planned)),
                            ("fused", Json::count(c.fusion_fused)),
                            ("rejected", Json::count(c.fusion_rejected)),
                            (
                                "verify_failures",
                                Json::count(c.fusion_verify_failures),
                            ),
                        ]),
                    ),
                    (
                        "overload",
                        Json::obj([
                            ("shed", Json::count(c.shed)),
                            ("steals", Json::count(c.steals)),
                            ("swept", Json::count(c.swept)),
                            ("deadline_preempted", Json::count(c.deadline_preempted)),
                        ]),
                    ),
                    (
                        "cost_model",
                        Json::str(self.config.cost_model.as_str()),
                    ),
                    ("hierarchy", Json::Obj(hierarchy)),
                    ("latency", Json::Obj(latency)),
                    ("stages", Json::Obj(stages)),
                ]),
            ),
        ])
    }

    /// Parses and serves one NDJSON request line — the `serve` loop's unit
    /// of work. A malformed line yields a structured `bad-request`
    /// response, never a crash.
    pub fn handle_line(&self, line: &str, position: usize) -> CompileResponse {
        let started = Instant::now();
        let mut req = match CompileRequest::parse(line, position) {
            Ok(req) => req,
            Err(detail) => {
                let resp = CompileResponse::failure(
                    position.to_string(),
                    ErrorClass::BadRequest,
                    detail,
                );
                self.finish(&resp, "?", started, None);
                return resp;
            }
        };
        if let Err(detail) = req.resolve_file() {
            let resp = CompileResponse::failure(req.id, ErrorClass::BadRequest, detail);
            self.finish(&resp, "?", started, None);
            return resp;
        }
        self.handle(req, started)
    }

    /// Serves one parsed request. `started` is when the request entered
    /// the system (enqueue time for batches), so deadlines cover queueing.
    pub fn handle(&self, req: CompileRequest, started: Instant) -> CompileResponse {
        // Book the time between enqueue and this worker picking the
        // request up — the queue-wait stage.
        let entered = Instant::now();
        self.profiler
            .record_span_between(None, "queue-wait", "service", started, entered);
        self.record_duration(
            "service_stage_queue_wait",
            entered.saturating_duration_since(started).as_micros() as u64,
        );
        let req_span = self.profiler.span("request", "service");
        let parent = Some(req_span.id());
        let deadline_ms = req.deadline_ms.or(self.config.default_deadline_ms);
        if let Some(limit) = deadline_ms {
            let waited = started.elapsed().as_millis() as u64;
            if deadline_expired(limit, waited) {
                let resp = CompileResponse::failure(
                    req.id,
                    ErrorClass::Deadline,
                    format!("deadline of {limit} ms elapsed after {waited} ms in queue"),
                );
                self.finish(&resp, "?", started, parent);
                return resp;
            }
        }
        let Some(source) = req.source_text() else {
            let resp = CompileResponse::failure(
                req.id,
                ErrorClass::BadRequest,
                "request still points at an unresolved file",
            );
            self.finish(&resp, "?", started, parent);
            return resp;
        };
        let Some(machine) = MachineDesc::by_name(&req.machine) else {
            let resp = CompileResponse::failure(
                req.id,
                ErrorClass::BadRequest,
                format!(
                    "unknown machine `{}` (known: {})",
                    req.machine,
                    MachineDesc::KNOWN_NAMES.join(", ")
                ),
            );
            self.finish(&resp, "?", started, parent);
            return resp;
        };
        if req.fuse.is_some() {
            return self.handle_fuse(req, machine, started, parent);
        }
        let kernel = match gpgpu_ast::parse_kernel(source) {
            Ok(k) => k,
            Err(e) => {
                let resp =
                    CompileResponse::failure(req.id, ErrorClass::Parse, e.to_string());
                self.finish(&resp, "?", started, parent);
                return resp;
            }
        };
        let kernel_name = kernel.name.clone();
        let mut opts = CompileOptions::new(machine)
            .with_stages(req.stages)
            .with_verify_seed(req.verify_seed)
            .with_cost_model(self.config.cost_model)
            .with_source(source)
            .with_profiler(self.profiler.clone());
        for (name, value) in &req.bindings {
            opts = opts.bind(name, *value);
        }
        if let Some(store) = &self.tuning {
            opts = opts
                .with_tuning(Arc::clone(store))
                .with_warm_start(self.config.warm_start);
        }

        // Cache probe.
        let probe_span = self.profiler.span_under(parent, "cache-probe", "service");
        let probe_started = Instant::now();
        let fingerprint = opts.fingerprint(&kernel);
        let probe = lock(&self.cache).get(&fingerprint);
        drop(probe_span);
        self.record_duration(
            "service_stage_cache_probe",
            probe_started.elapsed().as_micros() as u64,
        );
        if let Some(err) = &probe.disk_error {
            self.note_disk_error(&fingerprint, err);
        }
        let disposition = match probe.outcome {
            CacheOutcome::MemoryHit => CacheDisposition::Memory,
            CacheOutcome::DiskHit => CacheDisposition::Disk,
            CacheOutcome::Miss => CacheDisposition::Miss,
        };
        {
            let op = match probe.outcome {
                CacheOutcome::MemoryHit => "hit",
                CacheOutcome::DiskHit => "disk-hit",
                CacheOutcome::Miss => "miss",
            };
            self.emit(TraceEvent::ServiceCache {
                op,
                fingerprint: fingerprint.clone(),
            });
        }
        if let Some(artifact) = probe.artifact {
            let resp = CompileResponse {
                id: req.id,
                artifact: Some(artifact),
                error: None,
                cache: disposition,
                micros: started.elapsed().as_micros() as u64,
            };
            self.finish(&resp, &kernel_name, started, parent);
            return resp;
        }

        // Cache-stampede guard: when an identical request is already
        // compiling on another worker, wait for it instead of compiling
        // the same kernel twice, then take the cache hit it stored. The
        // slot is released on every exit path (Drop), so even an error
        // response wakes the waiters — they re-probe, miss, and the next
        // one becomes the new winner.
        let _slot = {
            let mut inflight = lock(&self.inflight_fps);
            loop {
                if !inflight.contains(&fingerprint) {
                    inflight.insert(fingerprint.clone());
                    break;
                }
                if let Some(limit) = deadline_ms {
                    let waited = started.elapsed().as_millis() as u64;
                    if deadline_expired(limit, waited) {
                        drop(inflight);
                        let resp = CompileResponse::failure(
                            req.id,
                            ErrorClass::Deadline,
                            format!(
                                "deadline of {limit} ms elapsed after {waited} ms \
                                 waiting on an in-flight duplicate compile"
                            ),
                        );
                        self.finish(&resp, &kernel_name, started, parent);
                        return resp;
                    }
                }
                let (guard, _) = self
                    .inflight_cv
                    .wait_timeout(inflight, Duration::from_millis(20))
                    .unwrap_or_else(|p| p.into_inner());
                inflight = guard;
            }
            InflightSlot {
                engine: self,
                fingerprint: fingerprint.clone(),
            }
        };
        // Re-probe now that we hold the slot: if we waited, the winner's
        // artifact is in the cache; even without waiting, a winner may
        // have stored and released between our first probe and the slot
        // acquisition. Either way the hit is taken, not recompiled.
        {
            let reprobe = lock(&self.cache).get(&fingerprint);
            if let Some(err) = &reprobe.disk_error {
                self.note_disk_error(&fingerprint, err);
            }
            if let Some(artifact) = reprobe.artifact {
                let disposition = match reprobe.outcome {
                    CacheOutcome::MemoryHit => CacheDisposition::Memory,
                    CacheOutcome::DiskHit => CacheDisposition::Disk,
                    CacheOutcome::Miss => CacheDisposition::Miss,
                };
                self.emit(TraceEvent::ServiceCache {
                    op: "coalesced",
                    fingerprint: fingerprint.clone(),
                });
                let resp = CompileResponse {
                    id: req.id,
                    artifact: Some(artifact),
                    error: None,
                    cache: disposition,
                    micros: started.elapsed().as_micros() as u64,
                };
                self.finish(&resp, &kernel_name, started, parent);
                return resp;
            }
        }

        // Deadline-aware scheduling: if what's left of the deadline is
        // below the observed p50 compile time, the compile would almost
        // certainly blow the budget — fail *now*, before opening a compile
        // span or burning a worker on doomed work.
        if let Some(limit) = deadline_ms {
            let elapsed_us = started.elapsed().as_micros() as u64;
            let remaining_us = limit.saturating_mul(1000).saturating_sub(elapsed_us);
            if let Some(p50_us) = self.compile_p50_estimate_us() {
                if remaining_us < p50_us {
                    lock(&self.counters).deadline_preempted += 1;
                    let resp = CompileResponse::failure(
                        req.id,
                        ErrorClass::Deadline,
                        format!(
                            "remaining deadline {} ms is below the p50 compile \
                             estimate of {} ms; not compiling",
                            remaining_us / 1000,
                            p50_us / 1000
                        ),
                    );
                    self.finish(&resp, &kernel_name, started, parent);
                    return resp;
                }
            }
        }

        // Mid-batch tuning refresh: a shard that lost the writer election
        // re-reads the writer's on-disk state here, so this compile's
        // lookup warm-starts from what a sibling shard already recorded
        // instead of re-exploring the full grid. For the writer (or an
        // unchanged store) this is a cheap no-op.
        if let Some(store) = &self.tuning {
            store.refresh();
        }

        // Cold compile, contained: a panic here — including the injected
        // per-request `service-<kernel>` fault site — poisons only this
        // request. The stage span is opened before the `catch_unwind` so
        // an unwinding fault still closes it (guard drop), and the
        // compiler's own spans nest under it because `opts` shares the
        // engine's profiler.
        let compile_span = self.profiler.span_under(parent, "compile", "service");
        let opts = opts.under_span(compile_span.id());
        let compile_started = Instant::now();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gpgpu_core::fault::maybe_panic(&format!("service-{kernel_name}"));
            compile(&kernel, &opts)
        }));
        drop(compile_span);
        self.record_duration(
            "service_stage_compile",
            compile_started.elapsed().as_micros() as u64,
        );
        let resp = match attempt {
            Err(payload) => CompileResponse::failure(
                req.id,
                ErrorClass::Internal,
                gpgpu_core::error::panic_message(payload),
            ),
            Ok(Err(e)) => {
                let class = match e {
                    CompileError::Internal(_) => ErrorClass::Internal,
                    _ => ErrorClass::Compile,
                };
                CompileResponse::failure(req.id, class, e.to_string())
            }
            Ok(Ok(compiled)) => {
                // Surface the compile's tuning-store events (degradation,
                // self-heals, failed durable writes) in the service event
                // stream and the write-error counter, so a dying disk under
                // the store shows up in `--report` and `{"stats": true}`
                // instead of disappearing into one request's trace.
                for event in compiled.trace.events() {
                    match event {
                        TraceEvent::StoreDegraded { .. } => self.emit(event.clone()),
                        TraceEvent::StoreWriteError { .. } => {
                            lock(&self.counters).store_write_errors += 1;
                            self.emit(event.clone());
                        }
                        _ => {}
                    }
                }
                // Under the hierarchy cost model, fold the winner's
                // per-level memory counters into live histograms — the
                // `{"stats": true}` snapshot's `hierarchy` section.
                if let Some(h) = &compiled.estimate.hierarchy {
                    let mut hists = lock(&self.hists);
                    for (name, value) in [
                        ("service_hierarchy_l1_hits", h.l1_hits),
                        ("service_hierarchy_l2_hits", h.l2_hits),
                        ("service_hierarchy_mshr_merges", h.mshr_merges),
                        (
                            "service_hierarchy_partition_queue_peak",
                            h.partition_queue_peak,
                        ),
                    ] {
                        hists.record_duration(name, value);
                    }
                }
                let artifact = compiled.cache_artifact(&fingerprint);
                // Degraded results are transient (a fault's fallback); only
                // fully optimized artifacts are worth pinning.
                if compiled.degraded.is_none() {
                    let (evicted, disk_error) = lock(&self.cache).put(&artifact);
                    self.emit(TraceEvent::ServiceCache {
                        op: "store",
                        fingerprint: fingerprint.clone(),
                    });
                    if self.has_disk() {
                        self.emit(TraceEvent::ServiceCache {
                            op: "disk-store",
                            fingerprint: fingerprint.clone(),
                        });
                    }
                    if let Some(victim) = evicted {
                        lock(&self.counters).evictions += 1;
                        self.emit(TraceEvent::ServiceCache {
                            op: "evict",
                            fingerprint: victim,
                        });
                    }
                    if let Some(err) = disk_error {
                        // A failed persist is a miss that silently costs
                        // every future request a recompile: count it and
                        // name it, don't just log the disk fault.
                        lock(&self.counters).store_write_errors += 1;
                        self.emit(TraceEvent::StoreWriteError {
                            store: "cache",
                            detail: format!("{fingerprint}: {}", err.detail),
                        });
                        self.note_disk_error(&fingerprint, &err);
                    }
                }
                CompileResponse {
                    id: req.id,
                    artifact: Some(artifact),
                    error: None,
                    cache: CacheDisposition::Miss,
                    micros: 0,
                }
            }
        };
        let resp = CompileResponse {
            micros: started.elapsed().as_micros() as u64,
            ..resp
        };
        self.finish(&resp, &kernel_name, started, parent);
        resp
    }

    /// Serves one fusion-group request (`"fuse": [producer, consumer]`).
    ///
    /// The group is planned before dispatch: when legal and profitable the
    /// fused kernel runs the full pipeline and is differentially verified
    /// against the sequential reference; any structured rejection —
    /// planner refusal, fused-compile failure, or verification failure —
    /// degrades to separate member compiles returned as *one* artifact
    /// with the launches concatenated, never an error. Fused artifacts
    /// cache under their own fingerprint (ordered member fingerprints +
    /// fusion marker), so a repeat group is a hit either way.
    fn handle_fuse(
        &self,
        req: CompileRequest,
        machine: MachineDesc,
        started: Instant,
        parent: Option<SpanId>,
    ) -> CompileResponse {
        let mut sources = Vec::new();
        for member in req.fuse.as_deref().unwrap_or_default() {
            match member {
                SourceSpec::Inline(text) => sources.push(text.clone()),
                SourceSpec::File(path) => {
                    let resp = CompileResponse::failure(
                        req.id,
                        ErrorClass::BadRequest,
                        format!("fuse member `{path}` is an unresolved file"),
                    );
                    self.finish(&resp, "?", started, parent);
                    return resp;
                }
            }
        }
        let [p_src, c_src] = sources.as_slice() else {
            let resp = CompileResponse::failure(
                req.id,
                ErrorClass::BadRequest,
                "`fuse` must list exactly two kernels",
            );
            self.finish(&resp, "?", started, parent);
            return resp;
        };
        let (producer, consumer) = match (
            gpgpu_ast::parse_kernel(p_src),
            gpgpu_ast::parse_kernel(c_src),
        ) {
            (Ok(p), Ok(c)) => (p, c),
            (Err(e), _) => {
                let resp = CompileResponse::failure(
                    req.id,
                    ErrorClass::Parse,
                    format!("fuse producer: {e}"),
                );
                self.finish(&resp, "?", started, parent);
                return resp;
            }
            (_, Err(e)) => {
                let resp = CompileResponse::failure(
                    req.id,
                    ErrorClass::Parse,
                    format!("fuse consumer: {e}"),
                );
                self.finish(&resp, "?", started, parent);
                return resp;
            }
        };
        let group = format!("{}+{}", producer.name, consumer.name);
        let combined_source = format!("{p_src}\n{c_src}");
        let mut opts = CompileOptions::new(machine)
            .with_stages(req.stages)
            .with_verify_seed(req.verify_seed)
            .with_cost_model(self.config.cost_model)
            .with_source(&combined_source)
            .with_profiler(self.profiler.clone());
        for (name, value) in &req.bindings {
            opts = opts.bind(name, *value);
        }
        if let Some(store) = &self.tuning {
            opts = opts
                .with_tuning(Arc::clone(store))
                .with_warm_start(self.config.warm_start);
        }

        // Fused artifacts are content-addressed by the ordered member
        // fingerprints (see `CompileOptions::fused_fingerprint`).
        let fingerprint = opts.fused_fingerprint(&producer, &consumer);
        let probe = lock(&self.cache).get(&fingerprint);
        if let Some(err) = &probe.disk_error {
            self.note_disk_error(&fingerprint, err);
        }
        self.emit(TraceEvent::ServiceCache {
            op: match probe.outcome {
                CacheOutcome::MemoryHit => "hit",
                CacheOutcome::DiskHit => "disk-hit",
                CacheOutcome::Miss => "miss",
            },
            fingerprint: fingerprint.clone(),
        });
        if let Some(artifact) = probe.artifact {
            let disposition = match probe.outcome {
                CacheOutcome::MemoryHit => CacheDisposition::Memory,
                CacheOutcome::DiskHit => CacheDisposition::Disk,
                CacheOutcome::Miss => CacheDisposition::Miss,
            };
            let resp = CompileResponse {
                id: req.id,
                artifact: Some(artifact),
                error: None,
                cache: disposition,
                micros: started.elapsed().as_micros() as u64,
            };
            self.finish(&resp, &group, started, parent);
            return resp;
        }

        // Same mid-batch refresh as the single-kernel path: the fused
        // kernel's tuning lookup (keyed by its combined shape) should see
        // what a sibling writer shard has recorded.
        if let Some(store) = &self.tuning {
            store.refresh();
        }

        lock(&self.counters).fusion_planned += 1;
        let compile_span = self.profiler.span_under(parent, "compile", "service");
        let opts = opts.under_span(compile_span.id());
        let compile_started = Instant::now();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gpgpu_core::fault::maybe_panic(&format!("service-{group}"));
            compile_fused(&producer, &consumer, &opts)
        }));
        let resp = match attempt {
            Err(payload) => CompileResponse::failure(
                req.id,
                ErrorClass::Internal,
                gpgpu_core::error::panic_message(payload),
            ),
            Ok(Ok(fused)) => {
                lock(&self.counters).fusion_fused += 1;
                for event in fused.compiled.trace.events() {
                    match event {
                        TraceEvent::StoreDegraded { .. } => self.emit(event.clone()),
                        TraceEvent::StoreWriteError { .. } => {
                            lock(&self.counters).store_write_errors += 1;
                            self.emit(event.clone());
                        }
                        _ => {}
                    }
                }
                self.emit(TraceEvent::Fusion {
                    producer: fused.producer.clone(),
                    consumer: fused.consumer.clone(),
                    kernel: fused.kernel.clone(),
                    mode: fused.mode.as_str().to_string(),
                    intermediate: fused.intermediate.clone(),
                    bytes_saved: fused.bytes_saved,
                    members_time_ms: fused.members_time_ms,
                    fused_time_ms: fused.fused_time_ms,
                });
                let mut artifact = fused.compiled.cache_artifact(&fingerprint);
                artifact.fusion = Some(FusionMeta {
                    mode: fused.mode.as_str().to_string(),
                    members: vec![fused.producer.clone(), fused.consumer.clone()],
                    intermediate: fused.intermediate.clone(),
                    bytes_saved: fused.bytes_saved as f64,
                });
                if fused.compiled.degraded.is_none() {
                    self.persist(&artifact, &fingerprint);
                }
                CompileResponse {
                    id: req.id,
                    artifact: Some(artifact),
                    error: None,
                    cache: CacheDisposition::Miss,
                    micros: 0,
                }
            }
            Ok(Err(err)) => {
                // Structured degradation: separate member compiles, one
                // combined artifact. A fusion rejection is never an error.
                {
                    let mut c = lock(&self.counters);
                    c.fusion_rejected += 1;
                    if matches!(err, FusionError::Verify(_)) {
                        c.fusion_verify_failures += 1;
                    }
                }
                self.emit(TraceEvent::FusionRejected {
                    producer: producer.name.clone(),
                    consumer: consumer.name.clone(),
                    reason: err.slug(),
                    detail: err.detail(),
                });
                self.compile_members_separately(
                    req.id,
                    &producer,
                    &consumer,
                    &opts,
                    &fingerprint,
                    &err,
                )
            }
        };
        drop(compile_span);
        self.record_duration(
            "service_stage_compile",
            compile_started.elapsed().as_micros() as u64,
        );
        let resp = CompileResponse {
            micros: started.elapsed().as_micros() as u64,
            ..resp
        };
        self.finish(&resp, &group, started, parent);
        resp
    }

    /// The fusion fallback: each member compiles on its own (full
    /// pipeline, oracle, tuning), and the launch sequences concatenate
    /// into one artifact under the group's fingerprint — callers observe
    /// the same artifact shape either way, launches just number two.
    fn compile_members_separately(
        &self,
        id: String,
        producer: &gpgpu_ast::Kernel,
        consumer: &gpgpu_ast::Kernel,
        opts: &CompileOptions,
        fingerprint: &str,
        rejection: &FusionError,
    ) -> CompileResponse {
        let mut compiled = Vec::new();
        for member in [producer, consumer] {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                compile(member, opts)
            }));
            match attempt {
                Err(payload) => {
                    return CompileResponse::failure(
                        id,
                        ErrorClass::Internal,
                        gpgpu_core::error::panic_message(payload),
                    )
                }
                Ok(Err(e)) => {
                    let class = match e {
                        CompileError::Internal(_) => ErrorClass::Internal,
                        _ => ErrorClass::Compile,
                    };
                    return CompileResponse::failure(
                        id,
                        class,
                        format!("fuse member `{}`: {e}", member.name),
                    );
                }
                Ok(Ok(c)) => compiled.push(c.cache_artifact(fingerprint)),
            }
        }
        let Some(second) = compiled.pop() else {
            return CompileResponse::failure(id, ErrorClass::Internal, "no members compiled");
        };
        let Some(first) = compiled.pop() else {
            return CompileResponse::failure(id, ErrorClass::Internal, "no members compiled");
        };
        let time_ms = first.time_ms + second.time_ms;
        let weight = |va: f64, vb: f64| {
            if time_ms > 0.0 {
                (va * first.time_ms + vb * second.time_ms) / time_ms
            } else {
                0.0
            }
        };
        let artifact = CachedArtifact {
            fingerprint: fingerprint.to_string(),
            kernel_name: format!("{}+{}", producer.name, consumer.name),
            source: format!("{}\n\n{}", first.source, second.source),
            launches: first
                .launches
                .into_iter()
                .chain(second.launches)
                .collect(),
            time_ms,
            gflops: weight(first.gflops, second.gflops),
            bandwidth_gbps: weight(first.bandwidth_gbps, second.bandwidth_gbps),
            degraded: first.degraded.clone().or(second.degraded.clone()),
            fusion: Some(FusionMeta {
                mode: format!("separate:{}", rejection.slug()),
                members: vec![producer.name.clone(), consumer.name.clone()],
                intermediate: String::new(),
                bytes_saved: 0.0,
            }),
        };
        if artifact.degraded.is_none() {
            self.persist(&artifact, fingerprint);
        }
        CompileResponse {
            id,
            artifact: Some(artifact),
            error: None,
            cache: CacheDisposition::Miss,
            micros: 0,
        }
    }

    /// Stores an artifact in the cache, booking evictions and disk faults
    /// the same way the single-kernel path does.
    fn persist(&self, artifact: &CachedArtifact, fingerprint: &str) {
        let (evicted, disk_error) = lock(&self.cache).put(artifact);
        self.emit(TraceEvent::ServiceCache {
            op: "store",
            fingerprint: fingerprint.to_string(),
        });
        if self.has_disk() {
            self.emit(TraceEvent::ServiceCache {
                op: "disk-store",
                fingerprint: fingerprint.to_string(),
            });
        }
        if let Some(victim) = evicted {
            lock(&self.counters).evictions += 1;
            self.emit(TraceEvent::ServiceCache {
                op: "evict",
                fingerprint: victim,
            });
        }
        if let Some(err) = disk_error {
            lock(&self.counters).store_write_errors += 1;
            self.emit(TraceEvent::StoreWriteError {
                store: "cache",
                detail: format!("{fingerprint}: {}", err.detail),
            });
            self.note_disk_error(fingerprint, &err);
        }
    }

    fn has_disk(&self) -> bool {
        lock(&self.cache).has_disk()
    }

    fn note_disk_error(&self, fingerprint: &str, fault: &DiskFault) {
        {
            let mut c = lock(&self.counters);
            c.disk_errors += 1;
            if fault.healed {
                c.self_heals += 1;
            }
        }
        self.emit(TraceEvent::ServiceCache {
            op: if fault.healed { "self-heal" } else { "disk-error" },
            fingerprint: format!("{fingerprint}: {}", fault.detail),
        });
    }

    /// Books an admission-control shed into the counters (the
    /// `service_shed_total` metric).
    pub(crate) fn note_shed(&self) {
        lock(&self.counters).shed += 1;
    }

    /// Books one work-steal (an idle shard draining a hot one's backlog).
    pub(crate) fn note_steal(&self) {
        lock(&self.counters).steals += 1;
    }

    /// Books expired requests swept from a queue before dispatch.
    pub(crate) fn note_swept(&self, n: u64) {
        lock(&self.counters).swept += n;
    }

    /// Folds a shard queue's high-water mark into the engine counters.
    pub(crate) fn note_queue_depth(&self, depth: u64) {
        let mut c = lock(&self.counters);
        c.queue_max_depth = c.queue_max_depth.max(depth);
    }

    /// Books a response produced *outside* [`Engine::handle`] — admission
    /// sheds, queue sweeps, and drain-timeout sheds — so the stats stay
    /// consistent with everything the server emitted.
    pub(crate) fn book_external(&self, resp: &CompileResponse, started: Instant) {
        self.finish(resp, "?", started, None);
    }

    /// The p50 of observed compile-stage times, in microseconds — the
    /// deadline scheduler's estimate of what admitting a cold request
    /// costs. `None` until enough samples (8) have accumulated to trust.
    pub fn compile_p50_estimate_us(&self) -> Option<u64> {
        let hists = lock(&self.hists);
        let h = hists.histogram("service_stage_compile")?;
        if h.count() < 8 {
            return None;
        }
        Some(h.percentile(50.0))
    }

    /// Books a finished response into the counters, the latency
    /// histograms, and the event stream.
    fn finish(
        &self,
        resp: &CompileResponse,
        kernel: &str,
        started: Instant,
        parent: Option<SpanId>,
    ) {
        let respond_span = self.profiler.span_under(parent, "respond", "service");
        let respond_started = Instant::now();
        let micros = started.elapsed().as_micros() as u64;
        let outcome = match &resp.error {
            Some(e) => e.class.as_str().to_string(),
            None => match &resp.artifact {
                Some(a) if a.degraded.is_some() => "degraded".to_string(),
                _ => "ok".to_string(),
            },
        };
        {
            let mut c = lock(&self.counters);
            c.requests += 1;
            match outcome.as_str() {
                "ok" => c.ok += 1,
                "degraded" => c.degraded += 1,
                _ => c.errors += 1,
            }
            match resp.cache {
                CacheDisposition::Memory => c.memory_hits += 1,
                CacheDisposition::Disk => c.disk_hits += 1,
                CacheDisposition::Miss if resp.error.is_none() => c.misses += 1,
                CacheDisposition::Miss => {}
            }
            c.latency_micros_total += micros;
            c.latency_micros_max = c.latency_micros_max.max(micros);
        }
        self.record_duration("service_latency_all", micros);
        self.record_duration(&format!("service_latency_{outcome}"), micros);
        self.emit(TraceEvent::ServiceRequest {
            id: resp.id.clone(),
            kernel: kernel.to_string(),
            cache_hit: resp.cache.is_hit(),
            micros,
            outcome,
        });
        drop(respond_span);
        self.record_duration(
            "service_stage_respond",
            respond_started.elapsed().as_micros() as u64,
        );
    }

    /// Runs a whole batch through the worker pool: requests flow through
    /// the bounded queue to `config.jobs` workers, and the responses come
    /// back **in request order** regardless of completion order.
    pub fn run_batch(&self, requests: Vec<CompileRequest>) -> Vec<CompileResponse> {
        let total = requests.len();
        let jobs = self.config.jobs.max(1).min(total.max(1));
        let queue: BoundedQueue<(usize, CompileRequest, Instant)> =
            BoundedQueue::new(self.config.queue_capacity);
        let results: Mutex<Vec<Option<CompileResponse>>> =
            Mutex::new((0..total).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    while let Some((index, req, enqueued)) = queue.pop() {
                        let resp = self.handle(req, enqueued);
                        lock(&results)[index] = Some(resp);
                    }
                });
            }
            for (index, req) in requests.into_iter().enumerate() {
                // Admission short-circuit: a deadline that is already
                // elapsed at enqueue never reaches a worker (and never
                // opens a compile span).
                let enqueued = Instant::now();
                let limit = req.deadline_ms.or(self.config.default_deadline_ms);
                if let Some(limit) = limit {
                    if deadline_expired(limit, 0) {
                        let resp = CompileResponse::failure(
                            req.id.clone(),
                            ErrorClass::Deadline,
                            format!("deadline of {limit} ms already elapsed at enqueue"),
                        );
                        self.book_external(&resp, enqueued);
                        lock(&results)[index] = Some(resp);
                        continue;
                    }
                }
                queue.push((index, req, enqueued));
            }
            queue.close();
        });
        {
            let mut c = lock(&self.counters);
            c.queue_max_depth = c.queue_max_depth.max(queue.max_depth() as u64);
        }
        let responses: Vec<CompileResponse> = lock(&results)
            .drain(..)
            .enumerate()
            .map(|(index, slot)| {
                slot.unwrap_or_else(|| {
                    CompileResponse::failure(
                        index.to_string(),
                        ErrorClass::Internal,
                        "worker exited without a response",
                    )
                })
            })
            .collect();
        responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::CacheDisposition;
    use std::sync::Arc;

    const MV: &str = "__global__ void mv(float a[n][w], float b[w], float c[n], int n, int w) \
                      { float sum = 0.0f; for (int i = 0; i < w; i = i + 1) \
                      { sum += a[idx][i] * b[i]; } c[idx] = sum; }";

    /// The stampede guard: identical requests racing on a cold cache
    /// compile exactly once — one miss does the work, every other thread
    /// waits and takes the hit it stored.
    #[test]
    fn concurrent_identical_requests_compile_once() {
        let engine = Arc::new(
            Engine::new(ServiceConfig::default()).unwrap_or_else(|e| panic!("{e}")),
        );
        let mut workers = Vec::new();
        for i in 0..4 {
            let engine = Arc::clone(&engine);
            workers.push(std::thread::spawn(move || {
                let mut req = CompileRequest::inline(&format!("dup-{i}"), MV);
                req.bindings = vec![("n".into(), 64), ("w".into(), 64)];
                engine.handle(req, Instant::now())
            }));
        }
        let responses: Vec<CompileResponse> = workers
            .into_iter()
            .map(|w| w.join().unwrap_or_else(|_| panic!("worker panicked")))
            .collect();
        assert!(responses.iter().all(|r| r.ok()), "{responses:?}");
        let misses = responses
            .iter()
            .filter(|r| r.cache == CacheDisposition::Miss)
            .count();
        let hits = responses
            .iter()
            .filter(|r| r.cache == CacheDisposition::Memory)
            .count();
        assert_eq!((misses, hits), (1, 3), "{responses:?}");
        // And the artifacts are byte-identical across winner and waiters.
        let first = responses[0].artifact.as_ref().map(|a| &a.source);
        assert!(responses
            .iter()
            .all(|r| r.artifact.as_ref().map(|a| &a.source) == first));
    }
}
