//! The sharded, overload-tolerant front of the engine: N shards (each its
//! own bounded queue + worker pool) behind a least-loaded router, with
//! work stealing, bounded-wait admission control, deadline sweeping, and
//! graceful shutdown (DESIGN.md §5.12).
//!
//! All shards share one [`Engine`] — and therefore one compile cache, one
//! counter block, and one histogram registry — so telemetry and cache
//! behavior are identical to the single-queue engine; only the *queueing
//! discipline* changes:
//!
//! - **Routing** tries shards in ascending backlog order
//!   (queued + in-flight) at submit time, so a request lands on the
//!   least-loaded shard that will still take it and is never shed while a
//!   sibling has a free slot.
//! - **Admission control** never blocks a client indefinitely. With a
//!   watermark below 1.0, a shard past that fill fraction stops accepting
//!   early; once every shard has refused, the request is shed with a
//!   structured `overloaded` response carrying `retry_after_ms` (derived
//!   from the shard's observed service rate). At hard capacity the
//!   submitter first sweeps expired requests out of the least-loaded
//!   queue, then waits a *bounded* interval for a slot, then sheds.
//! - **Work stealing**: a worker whose own queue stays empty for a beat
//!   pops from the deepest sibling queue instead, so one hot shard cannot
//!   strand idle capacity (`service_steal_total`).
//! - **Shutdown** closes every queue, then either drains everything
//!   (default — matching the pre-shard contract that EOF serves all
//!   accepted work) or, past an optional drain timeout, sheds whatever is
//!   still queued as `overloaded` and joins the workers.

use crate::engine::{deadline_expired, Engine};
use crate::queue::{BoundedQueue, PushError};
use crate::request::{CompileRequest, CompileResponse, ErrorClass};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Sharding and admission-control knobs, layered over a
/// [`crate::ServiceConfig`] (whose `queue_capacity` becomes the *per
/// shard* bound).
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of engine shards (each its own queue + workers).
    pub shards: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Fraction of a shard's queue capacity past which admission stops
    /// accepting early. At 1.0 (the default) early shedding is disabled:
    /// a full queue is swept of expired requests and waited on for the
    /// bounded admission interval before the request is shed.
    pub admission_watermark: f64,
    /// How long admission may wait for a slot when the chosen queue is at
    /// hard capacity before shedding, in milliseconds. This bounds the
    /// worst-case time a client spends blocked on admission.
    pub admission_wait_ms: u64,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 2,
            workers_per_shard: 2,
            admission_watermark: 1.0,
            admission_wait_ms: 10,
        }
    }
}

/// One queued unit of work: the request plus its response channel.
struct Job {
    req: CompileRequest,
    enqueued: Instant,
    deadline_ms: Option<u64>,
    tx: mpsc::Sender<CompileResponse>,
}

/// Per-shard state shared between the router and the shard's workers.
struct Shard {
    queue: BoundedQueue<Job>,
    /// Jobs currently inside a worker (picked but not yet responded).
    inflight: AtomicUsize,
    /// Jobs this shard's workers completed (including stolen ones).
    served: AtomicU64,
    /// Jobs this shard's workers stole from sibling queues.
    stolen: AtomicU64,
    /// EWMA of observed per-job service time, in microseconds — the
    /// basis of the `retry_after_ms` hint. 0 until the first sample.
    ewma_service_us: AtomicU64,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            queue: BoundedQueue::new(capacity),
            inflight: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            ewma_service_us: AtomicU64::new(0),
        }
    }

    /// Queued + in-flight — the router's load figure.
    fn backlog(&self) -> usize {
        self.queue.depth() + self.inflight.load(Ordering::Relaxed)
    }

    fn observe_service_time(&self, micros: u64) {
        let old = self.ewma_service_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            micros
        } else {
            // 4/5 history, 1/5 sample: smooth but still tracks a phase
            // change within a handful of requests.
            (old.saturating_mul(4).saturating_add(micros)) / 5
        };
        self.ewma_service_us.store(new, Ordering::Relaxed);
    }
}

struct Inner {
    engine: Arc<Engine>,
    shards: Vec<Shard>,
    config: ShardConfig,
}

/// What [`ShardedEngine::submit`] did with a request.
pub enum Submitted {
    /// Admitted: the response arrives on this receiver when a worker
    /// finishes (or when a sweep/shutdown sheds the job).
    Queued(mpsc::Receiver<CompileResponse>),
    /// Refused at admission — an `overloaded` shed (with `retry_after_ms`)
    /// or an already-expired `deadline`. Already booked into the engine
    /// stats; just deliver it.
    Rejected(Box<CompileResponse>),
}

/// N engine shards behind a least-loaded router with work stealing and
/// shed-instead-of-stall admission control.
pub struct ShardedEngine {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ShardedEngine {
    /// Starts `config.shards` shards, each with its own queue (capacity =
    /// the engine's `queue_capacity`) and `config.workers_per_shard`
    /// workers, all serving through the shared `engine`.
    pub fn start(engine: Arc<Engine>, config: ShardConfig) -> ShardedEngine {
        let mut config = config;
        config.shards = config.shards.max(1);
        config.workers_per_shard = config.workers_per_shard.max(1);
        config.admission_watermark = config.admission_watermark.clamp(0.0, 1.0);
        let capacity = engine.config().queue_capacity;
        let shards: Vec<Shard> = (0..config.shards).map(|_| Shard::new(capacity)).collect();
        let inner = Arc::new(Inner {
            engine,
            shards,
            config,
        });
        let mut workers = Vec::new();
        for shard_index in 0..inner.config.shards {
            for _ in 0..inner.config.workers_per_shard {
                let inner = Arc::clone(&inner);
                workers.push(std::thread::spawn(move || worker_loop(&inner, shard_index)));
            }
        }
        ShardedEngine { inner, workers }
    }

    /// The shared engine (cache, counters, profiler).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.inner.engine
    }

    /// Submits one parsed request. Never blocks longer than the bounded
    /// admission wait: the request is either queued (response later via
    /// the receiver) or rejected right now with a structured response.
    ///
    /// `enqueued` anchors the request's deadline (pass the time the line
    /// was *read* so deadlines cover any front-end backlog).
    pub fn submit(&self, req: CompileRequest, enqueued: Instant) -> Submitted {
        let inner = &*self.inner;
        let deadline_ms = req
            .deadline_ms
            .or(inner.engine.config().default_deadline_ms);

        // Deadline short-circuit: a budget that is already spent at
        // admission never reaches a queue, a worker, or a compile span.
        if let Some(limit) = deadline_ms {
            let waited = enqueued.elapsed().as_millis() as u64;
            if deadline_expired(limit, waited) {
                let resp = CompileResponse::failure(
                    req.id,
                    ErrorClass::Deadline,
                    format!("deadline of {limit} ms already elapsed at admission"),
                );
                inner.engine.book_external(&resp, enqueued);
                return Submitted::Rejected(Box::new(resp));
            }
        }

        // Admission tries every shard, least-loaded first — a request is
        // shed only after no queue anywhere would take it, so the shed
        // message's "all N shard queue(s)" claim is literally checked.
        let mut order: Vec<usize> = (0..inner.shards.len()).collect();
        order.sort_by_key(|&i| inner.shards[i].backlog());

        let (tx, rx) = mpsc::channel();
        let mut job = Job {
            req,
            enqueued,
            deadline_ms,
            tx,
        };
        let mut hit_hard_capacity = false;
        for &shard_index in &order {
            let shard = &inner.shards[shard_index];
            // Watermark check: a watermark below 1.0 stops accepting
            // *before* hard capacity, keeping headroom for the sweeper and
            // answering saturation with a hint instead of a stall. At
            // exactly 1.0 the watermark coincides with hard capacity, so
            // the check is skipped and a full queue falls through to the
            // sweep + bounded-wait path below.
            if inner.config.admission_watermark < 1.0 {
                let capacity = shard.queue.capacity();
                let watermark_slots =
                    ((capacity as f64) * inner.config.admission_watermark).ceil() as usize;
                if shard.queue.depth() >= watermark_slots.max(1) {
                    continue;
                }
            }
            // Fast path: a free slot right now.
            job = match shard.queue.try_push(job) {
                Ok(()) => return Submitted::Queued(rx),
                Err((job, PushError::Closed)) => {
                    let resp = self.shutdown_shed(job.req.id.clone(), enqueued);
                    return Submitted::Rejected(Box::new(resp));
                }
                Err((job, PushError::Full)) => {
                    hit_hard_capacity = true;
                    job
                }
            };
        }
        // Every shard refused. Past a sub-1.0 watermark with no queue at
        // hard capacity, shed immediately — early shedding is exactly what
        // the watermark asks for.
        let shard_index = order.first().copied().unwrap_or(0);
        if !hit_hard_capacity {
            return Submitted::Rejected(Box::new(self.shed(
                job.req,
                enqueued,
                shard_index,
                "past the admission watermark",
            )));
        }
        // Hard capacity: sweep expired requests out of the least-loaded
        // queue first — they were going to fail anyway, and each one freed
        // is a slot a live request can take — then wait a bounded interval
        // for a slot before shedding.
        self.sweep_expired(shard_index);
        let wait = Duration::from_millis(inner.config.admission_wait_ms);
        match inner.shards[shard_index].queue.push_timeout(job, wait) {
            Ok(()) => Submitted::Queued(rx),
            Err((job, PushError::Closed)) => {
                let resp = self.shutdown_shed(job.req.id.clone(), enqueued);
                Submitted::Rejected(Box::new(resp))
            }
            Err((job, PushError::Full)) => Submitted::Rejected(Box::new(self.shed(
                job.req,
                enqueued,
                shard_index,
                "at hard capacity through the bounded admission wait",
            ))),
        }
    }

    /// Builds, books, and counts one `overloaded` shed. `why` names the
    /// refusal every shard actually gave (watermark vs hard capacity).
    fn shed(
        &self,
        req: CompileRequest,
        enqueued: Instant,
        shard_index: usize,
        why: &str,
    ) -> CompileResponse {
        let inner = &*self.inner;
        let hint = self.retry_after_ms(shard_index);
        let resp = CompileResponse::overloaded(
            req.id,
            format!(
                "all {} shard queue(s) {why}; retry after the hint",
                inner.config.shards
            ),
            hint,
        );
        inner.engine.note_shed();
        inner.engine.book_external(&resp, enqueued);
        resp
    }

    /// The shed during shutdown: the queue is closed, not saturated, so
    /// the hint is the drain horizon rather than the service rate.
    fn shutdown_shed(&self, id: String, enqueued: Instant) -> CompileResponse {
        let resp =
            CompileResponse::overloaded(id, "server is shutting down; resubmit elsewhere", 1000);
        self.inner.engine.note_shed();
        self.inner.engine.book_external(&resp, enqueued);
        resp
    }

    /// The backoff hint for a shed on `shard_index`: how long the backlog
    /// ahead should take to drain at the observed per-worker service
    /// rate, clamped to [1 ms, 30 s]. Before any service-time sample
    /// exists the hint is a flat 50 ms.
    fn retry_after_ms(&self, shard_index: usize) -> u64 {
        let inner = &*self.inner;
        let shard = &inner.shards[shard_index];
        let ewma_us = match shard.ewma_service_us.load(Ordering::Relaxed) {
            0 => return 50,
            us => us,
        };
        let backlog = shard.backlog() as u64;
        let per_worker = backlog / inner.config.workers_per_shard as u64 + 1;
        (per_worker.saturating_mul(ewma_us) / 1000).clamp(1, 30_000)
    }

    /// Sweeps expired requests out of one shard's queue, answering each
    /// with a `deadline` failure — no worker ever sees them.
    fn sweep_expired(&self, shard_index: usize) {
        let inner = &*self.inner;
        let expired = inner.shards[shard_index].queue.drain_matching(|job| {
            job.deadline_ms
                .is_some_and(|limit| deadline_expired(limit, job.enqueued.elapsed().as_millis() as u64))
        });
        if expired.is_empty() {
            return;
        }
        inner.engine.note_swept(expired.len() as u64);
        for job in expired {
            let limit = job.deadline_ms.unwrap_or(0);
            let resp = CompileResponse::failure(
                job.req.id,
                ErrorClass::Deadline,
                format!(
                    "deadline of {limit} ms elapsed after {} ms queued; swept before dispatch",
                    job.enqueued.elapsed().as_millis()
                ),
            );
            inner.engine.book_external(&resp, job.enqueued);
            let _ = job.tx.send(resp);
        }
    }

    /// Live per-shard depths (queued, in-flight) — the router's view, for
    /// tests and telemetry.
    pub fn shard_depths(&self) -> Vec<(usize, usize)> {
        self.inner
            .shards
            .iter()
            .map(|s| {
                (
                    s.queue.depth(),
                    s.inflight.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// The engine stats snapshot with the shard table spliced in:
    /// `stats.shards` gains one row per shard (depth, high-water,
    /// in-flight, served, stolen, EWMA service time).
    pub fn stats_json(&self) -> gpgpu_core::Json {
        use gpgpu_core::Json;
        let rows: Vec<Json> = self
            .inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Json::obj([
                    ("index", Json::count(i as u64)),
                    ("depth", Json::count(s.queue.depth() as u64)),
                    ("high_water", Json::count(s.queue.max_depth() as u64)),
                    (
                        "inflight",
                        Json::count(s.inflight.load(Ordering::Relaxed) as u64),
                    ),
                    ("served", Json::count(s.served.load(Ordering::Relaxed))),
                    ("stolen", Json::count(s.stolen.load(Ordering::Relaxed))),
                    (
                        "ewma_service_us",
                        Json::count(s.ewma_service_us.load(Ordering::Relaxed)),
                    ),
                ])
            })
            .collect();
        let mut doc = self.inner.engine.stats_json();
        if let Json::Obj(pairs) = &mut doc {
            for (key, value) in pairs.iter_mut() {
                if key == "stats" {
                    if let Json::Obj(stats) = value {
                        stats.push(("shards".to_string(), Json::Arr(rows)));
                    }
                    break;
                }
            }
        }
        doc
    }

    /// Folds every shard queue's high-water mark into the engine's
    /// `service_queue_max_depth` counter.
    fn fold_high_water(&self) {
        for shard in &self.inner.shards {
            self.inner
                .engine
                .note_queue_depth(shard.queue.max_depth() as u64);
        }
    }

    /// Graceful shutdown: closes every queue so no new work is admitted,
    /// then drains. With `drain_timeout = None` every accepted request is
    /// served (the pre-shard EOF contract). With a timeout, whatever is
    /// still *queued* when it fires is shed as `overloaded` (in-flight
    /// work always finishes), and the workers are joined either way.
    pub fn shutdown(mut self, drain_timeout: Option<Duration>) {
        for shard in &self.inner.shards {
            shard.queue.close();
        }
        if let Some(timeout) = drain_timeout {
            let deadline = Instant::now() + timeout;
            loop {
                let backlog: usize = self.inner.shards.iter().map(|s| s.backlog()).sum();
                if backlog == 0 {
                    break;
                }
                if Instant::now() >= deadline {
                    // Drain horizon reached: everything still queued is
                    // shed with a structured response; nothing is dropped
                    // silently.
                    for shard in &self.inner.shards {
                        for job in shard.queue.drain_matching(|_| true) {
                            let resp = self.shutdown_shed(job.req.id.clone(), job.enqueued);
                            let _ = job.tx.send(resp);
                        }
                    }
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.fold_high_water();
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Belt-and-braces for the non-`shutdown` exit path: close and
        // join so worker threads never outlive the router.
        for shard in &self.inner.shards {
            shard.queue.close();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.fold_high_water();
    }
}

/// One worker: serve the home queue; when it goes quiet, steal from the
/// deepest sibling; exit once every queue is closed and empty.
fn worker_loop(inner: &Inner, home: usize) {
    let beat = Duration::from_millis(5);
    loop {
        match inner.shards[home].queue.pop_timeout(beat) {
            crate::queue::PopResult::Item(job) => run_job(inner, home, job, false),
            crate::queue::PopResult::Empty => {
                if let Some((victim, job)) = steal(inner, home) {
                    run_job(inner, victim, job, true);
                }
            }
            crate::queue::PopResult::Closed => {
                // Home is drained; help siblings finish, then exit.
                match steal(inner, home) {
                    Some((victim, job)) => run_job(inner, victim, job, true),
                    None => return,
                }
            }
        }
    }
}

/// Pops from the deepest sibling queue, if any has work.
fn steal(inner: &Inner, home: usize) -> Option<(usize, Job)> {
    let victim = inner
        .shards
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != home)
        .max_by_key(|(_, s)| s.queue.depth())
        .filter(|(_, s)| s.queue.depth() > 0)
        .map(|(i, _)| i)?;
    let job = inner.shards[victim].queue.try_pop()?;
    Some((victim, job))
}

fn run_job(inner: &Inner, shard_index: usize, job: Job, stolen: bool) {
    let shard = &inner.shards[shard_index];
    shard.inflight.fetch_add(1, Ordering::Relaxed);
    if stolen {
        shard.stolen.fetch_add(1, Ordering::Relaxed);
        inner.engine.note_steal();
    }
    let started = Instant::now();
    let resp = inner.engine.handle(job.req, job.enqueued);
    shard.observe_service_time(started.elapsed().as_micros() as u64);
    shard.served.fetch_add(1, Ordering::Relaxed);
    shard.inflight.fetch_sub(1, Ordering::Relaxed);
    // A client that gave up (dropped the receiver) is not an error.
    let _ = job.tx.send(resp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;

    const MV: &str = "__global__ void mv(float a[n][w], float b[w], float c[n], int n, int w) \
                      { float sum = 0.0f; for (int i = 0; i < w; i = i + 1) \
                      { sum += a[idx][i] * b[i]; } c[idx] = sum; }";

    fn request(id: &str) -> CompileRequest {
        let mut req = CompileRequest::inline(id, MV);
        req.bindings = vec![("n".into(), 64), ("w".into(), 64)];
        req
    }

    fn sharded(shards: usize, capacity: usize) -> ShardedEngine {
        let engine = Arc::new(
            Engine::new(ServiceConfig {
                jobs: 2,
                queue_capacity: capacity,
                ..ServiceConfig::default()
            })
            .expect("engine"),
        );
        ShardedEngine::start(
            engine,
            ShardConfig {
                shards,
                workers_per_shard: 1,
                admission_watermark: 1.0,
                admission_wait_ms: 5,
            },
        )
    }

    #[test]
    fn every_submitted_request_gets_its_response() {
        let server = sharded(2, 8);
        let mut pending = Vec::new();
        for i in 0..12 {
            match server.submit(request(&format!("r{i}")), Instant::now()) {
                Submitted::Queued(rx) => pending.push((format!("r{i}"), rx)),
                Submitted::Rejected(resp) => {
                    panic!("unexpected rejection: {:?}", resp.error)
                }
            }
        }
        for (id, rx) in pending {
            let resp = rx.recv().expect("worker responded");
            assert_eq!(resp.id, id);
            assert!(resp.ok(), "{:?}", resp.error);
        }
        server.shutdown(None);
    }

    #[test]
    fn zero_deadline_is_refused_at_admission() {
        let server = sharded(1, 4);
        let mut req = request("expired");
        req.deadline_ms = Some(0);
        match server.submit(req, Instant::now()) {
            Submitted::Rejected(resp) => {
                assert_eq!(
                    resp.error.as_ref().map(|e| e.class),
                    Some(ErrorClass::Deadline)
                );
            }
            Submitted::Queued(_) => panic!("expired request was admitted"),
        }
        server.shutdown(None);
    }

    #[test]
    fn saturation_sheds_with_a_retry_hint_instead_of_blocking() {
        // One shard, one worker, a sub-1.0 watermark, and a deep backlog
        // of *distinct* kernels: once the queue fills past the watermark,
        // further submits must come back `overloaded` immediately.
        let engine = Arc::new(
            Engine::new(ServiceConfig {
                jobs: 2,
                queue_capacity: 2,
                ..ServiceConfig::default()
            })
            .expect("engine"),
        );
        let server = ShardedEngine::start(
            engine,
            ShardConfig {
                shards: 1,
                workers_per_shard: 1,
                admission_watermark: 0.5,
                admission_wait_ms: 5,
            },
        );
        let mut pending = Vec::new();
        let mut sheds = 0;
        let started = Instant::now();
        for i in 0..24 {
            let mut req = request(&format!("s{i}"));
            // Distinct bindings defeat the cache so the worker stays busy.
            req.bindings = vec![("n".into(), 32 + i), ("w".into(), 32)];
            match server.submit(req, Instant::now()) {
                Submitted::Queued(rx) => pending.push(rx),
                Submitted::Rejected(resp) => {
                    assert_eq!(resp.exit_code(), 75);
                    assert!(resp.retry_after_ms().is_some_and(|ms| ms >= 1));
                    sheds += 1;
                }
            }
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "admission stalled"
        );
        assert!(sheds > 0, "24 submits into a 2-deep queue never shed");
        for rx in pending {
            assert!(rx.recv().is_ok());
        }
        server.shutdown(None);
    }

    #[test]
    fn watermark_one_waits_for_a_slot_instead_of_shedding_at_capacity() {
        // With the default watermark of 1.0 a full queue is not an
        // instant shed: admission sweeps expired work and then waits the
        // bounded interval, so a worker that drains within the wait
        // admits every request of a burst much deeper than the queue.
        let engine = Arc::new(
            Engine::new(ServiceConfig {
                jobs: 2,
                queue_capacity: 2,
                ..ServiceConfig::default()
            })
            .expect("engine"),
        );
        let server = ShardedEngine::start(
            engine,
            ShardConfig {
                shards: 1,
                workers_per_shard: 1,
                admission_watermark: 1.0,
                admission_wait_ms: 10_000,
            },
        );
        let mut pending = Vec::new();
        for i in 0..12 {
            let mut req = request(&format!("w{i}"));
            req.bindings = vec![("n".into(), 16 + i), ("w".into(), 16)];
            match server.submit(req, Instant::now()) {
                Submitted::Queued(rx) => pending.push(rx),
                Submitted::Rejected(resp) => {
                    panic!("shed despite the bounded wait: {:?}", resp.error)
                }
            }
        }
        for rx in pending {
            assert!(rx.recv().expect("answered").ok());
        }
        server.shutdown(None);
    }

    #[test]
    fn drain_timeout_sheds_queued_work_as_overloaded() {
        let server = sharded(1, 16);
        let mut pending = Vec::new();
        for i in 0..10 {
            let mut req = request(&format!("d{i}"));
            req.bindings = vec![("n".into(), 128 + i), ("w".into(), 64)];
            match server.submit(req, Instant::now()) {
                Submitted::Queued(rx) => pending.push(rx),
                Submitted::Rejected(resp) => panic!("rejected: {:?}", resp.error),
            }
        }
        server.shutdown(Some(Duration::from_millis(1)));
        let mut outcomes = Vec::new();
        for rx in pending {
            let resp = rx.recv().expect("every job answered even under shed");
            outcomes.push(resp.ok() || resp.exit_code() == 75);
        }
        assert!(outcomes.iter().all(|&ok| ok));
    }
}
