#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

//! # gpgpu-service
//!
//! The batch-compilation service: turns the one-shot compiler into a
//! long-lived, concurrent engine behind `gpgpuc batch` and `gpgpuc serve`
//! (DESIGN.md §5.10).
//!
//! Four pieces:
//!
//! - **Content-addressed compile cache** ([`CompileCache`]): requests are
//!   keyed by [`gpgpu_core::CompileOptions::fingerprint`] — a stable hash
//!   over the *normalized* kernel source plus every output-determining
//!   option (machine, bindings, stage set, verify seed). An in-memory LRU
//!   fronts an optional persistent store under the versioned
//!   `gpgpu-cache/v1` directory layout; compilation is deterministic, so a
//!   hit is byte-identical to a cold compile.
//! - **Bounded work queue + worker pool** ([`BoundedQueue`],
//!   [`Engine::run_batch`]): plain `std::thread` workers fed through a
//!   bounded FIFO whose bound *is* the backpressure policy, with
//!   per-request deadlines measured from enqueue and `catch_unwind` fault
//!   containment so one poisoned kernel degrades only its own request.
//! - **NDJSON protocol** ([`CompileRequest`], [`CompileResponse`]): one
//!   JSON object per line for both batch manifests and the `serve`
//!   stdin/stdout loop; malformed input becomes a structured
//!   `bad-request` response, never a crash.
//! - **Overload-tolerant sharding** ([`ShardedEngine`], DESIGN.md §5.12):
//!   N shards behind a least-loaded router with work stealing,
//!   bounded-wait admission control that sheds saturation as structured
//!   `overloaded` responses carrying a `retry_after_ms` hint, deadline
//!   sweeping (expired requests never reach a worker), and graceful
//!   drain-or-shed shutdown — under load every request resolves as a
//!   success, a structured error, or an `overloaded` hint; no client is
//!   ever blocked indefinitely.
//!
//! Observability rides on the existing subsystems: queue depth, latency
//! and cache hit/miss/evict counters export as `service_*` globals in a
//! [`gpgpu_core::MetricsRegistry`], and every request and cache state
//! change emits a `service-request` / `service-cache`
//! [`gpgpu_core::TraceEvent`].

mod cache;
mod engine;
mod queue;
mod request;
mod shard;

pub use cache::{CacheOutcome, CacheProbe, CompileCache, DiskFault};
pub use engine::{Engine, ServiceConfig};
pub use queue::{BoundedQueue, PopResult, PushError};
pub use request::{
    CacheDisposition, CompileRequest, CompileResponse, ErrorClass, ResponseError, SourceSpec,
};
pub use shard::{ShardConfig, ShardedEngine, Submitted};
