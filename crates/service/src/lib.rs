#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

//! # gpgpu-service
//!
//! The batch-compilation service: turns the one-shot compiler into a
//! long-lived, concurrent engine behind `gpgpuc batch` and `gpgpuc serve`
//! (DESIGN.md §5.10).
//!
//! Three pieces:
//!
//! - **Content-addressed compile cache** ([`CompileCache`]): requests are
//!   keyed by [`gpgpu_core::CompileOptions::fingerprint`] — a stable hash
//!   over the *normalized* kernel source plus every output-determining
//!   option (machine, bindings, stage set, verify seed). An in-memory LRU
//!   fronts an optional persistent store under the versioned
//!   `gpgpu-cache/v1` directory layout; compilation is deterministic, so a
//!   hit is byte-identical to a cold compile.
//! - **Bounded work queue + worker pool** ([`BoundedQueue`],
//!   [`Engine::run_batch`]): plain `std::thread` workers fed through a
//!   bounded FIFO whose bound *is* the backpressure policy, with
//!   per-request deadlines measured from enqueue and `catch_unwind` fault
//!   containment so one poisoned kernel degrades only its own request.
//! - **NDJSON protocol** ([`CompileRequest`], [`CompileResponse`]): one
//!   JSON object per line for both batch manifests and the `serve`
//!   stdin/stdout loop; malformed input becomes a structured
//!   `bad-request` response, never a crash.
//!
//! Observability rides on the existing subsystems: queue depth, latency
//! and cache hit/miss/evict counters export as `service_*` globals in a
//! [`gpgpu_core::MetricsRegistry`], and every request and cache state
//! change emits a `service-request` / `service-cache`
//! [`gpgpu_core::TraceEvent`].

mod cache;
mod engine;
mod queue;
mod request;

pub use cache::{CacheOutcome, CacheProbe, CompileCache};
pub use engine::{Engine, ServiceConfig};
pub use queue::BoundedQueue;
pub use request::{
    CacheDisposition, CompileRequest, CompileResponse, ErrorClass, ResponseError, SourceSpec,
};
