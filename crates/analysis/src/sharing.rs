//! Inter-thread-block data-sharing detection (paper §3.4) and the merge
//! recommendation that drives §3.5.
//!
//! The compiler has already associated a linearized address form with every
//! global access, so sharing detection reduces to asking whether the address
//! ranges touched by *neighboring* thread blocks overlap. An access whose
//! expanded address does not depend on `bidx` is read identically by every
//! block along X (full overlap); likewise for `bidy` along Y.

use crate::access::{AccessTarget, GlobalAccess};
use crate::affine::Affine;
use gpgpu_ast::Builtin;
use std::fmt;

/// A grid direction along which thread blocks can be merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingDirection {
    /// Neighboring blocks along X (`bidx`, `bidx+1`).
    X,
    /// Neighboring blocks along Y.
    Y,
}

impl fmt::Display for SharingDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharingDirection::X => f.write_str("X"),
            SharingDirection::Y => f.write_str("Y"),
        }
    }
}

/// Which merge the compiler should apply in a direction (§3.5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergeKind {
    /// Merge whole thread blocks — data is reused through shared memory
    /// (chosen when the sharing comes from a G2S access). Also the fallback
    /// to grow undersized blocks.
    ThreadBlock,
    /// Merge threads from neighboring blocks — data is reused through
    /// registers (chosen when the sharing comes from a G2R access).
    Thread,
}

/// Sharing facts for one access.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessSharing {
    /// Array read by the access.
    pub array: String,
    /// Load destination (register or shared memory).
    pub target: AccessTarget,
    /// True when neighboring blocks along X read the same data.
    pub shares_x: bool,
    /// True when neighboring blocks along Y read the same data.
    pub shares_y: bool,
}

/// The result of sharing analysis over a whole kernel.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SharingReport {
    /// Per-read sharing facts (writes are excluded).
    pub accesses: Vec<AccessSharing>,
    /// Recommended merge along X, if any sharing exists there.
    pub merge_x: Option<MergeKind>,
    /// Recommended merge along Y, if any sharing exists there.
    pub merge_y: Option<MergeKind>,
}

impl SharingReport {
    /// True if any direction shows inter-block sharing.
    pub fn any_sharing(&self) -> bool {
        self.merge_x.is_some() || self.merge_y.is_some()
    }
}

/// Whether neighboring blocks overlap for this (expanded) address form in
/// the given direction.
///
/// Full independence from the direction's block id means complete overlap.
/// A dependence with a stride smaller than the per-block footprint would be
/// partial overlap; the kernels in the paper's suite only exhibit the
/// all-or-nothing case, and we follow the paper in checking neighbors only.
fn shares_along(expanded: &Affine, dir: SharingDirection) -> bool {
    let bid = match dir {
        SharingDirection::X => Builtin::BidX,
        SharingDirection::Y => Builtin::BidY,
    };
    expanded.coeff_builtin(bid) == 0
}

/// Analyzes data sharing between neighboring thread blocks.
///
/// `block_x`/`block_y` are the current thread-block dimensions used to
/// expand `idx`/`idy` (after the coalescing phase each block is one half
/// warp: 16×1).
pub fn analyze_sharing(accesses: &[GlobalAccess], block_x: i64, block_y: i64) -> SharingReport {
    let mut report = SharingReport::default();
    for acc in accesses {
        if acc.is_write {
            continue;
        }
        let Some(linear) = &acc.linear else { continue };
        let expanded = linear.expand_ids(block_x, block_y);
        // An access to a loop-invariant broadcast (constant address) shares
        // everywhere but carries no meaningful footprint; it still counts —
        // the paper's b[i] in mv is exactly this shape.
        let shares_x = shares_along(&expanded, SharingDirection::X);
        let shares_y = shares_along(&expanded, SharingDirection::Y);
        if !(shares_x || shares_y) {
            continue;
        }
        report.accesses.push(AccessSharing {
            array: acc.array.clone(),
            target: acc.target,
            shares_x,
            shares_y,
        });
    }
    report.merge_x = recommend(report.accesses.iter().filter(|a| a.shares_x));
    report.merge_y = recommend(report.accesses.iter().filter(|a| a.shares_y));
    report
}

/// §3.5.3 selection rule: G2S sharing → thread-block merge (shared-memory
/// reuse); otherwise G2R sharing → thread merge (register reuse).
fn recommend<'a>(mut sharing: impl Iterator<Item = &'a AccessSharing>) -> Option<MergeKind> {
    let mut any = false;
    let mut any_shared = false;
    for a in sharing.by_ref() {
        any = true;
        if a.target == AccessTarget::Shared {
            any_shared = true;
        }
    }
    if !any {
        None
    } else if any_shared {
        Some(MergeKind::ThreadBlock)
    } else {
        Some(MergeKind::Thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::collect_accesses;
    use crate::layout::{resolve_layouts, Bindings};
    use gpgpu_ast::parse_kernel;

    fn report(src: &str, binds: &[(&str, i64)], bx: i64, by: i64) -> SharingReport {
        let k = parse_kernel(src).unwrap();
        let bindings: Bindings = binds.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        let layouts = resolve_layouts(&k, &bindings).unwrap();
        let accesses = collect_accesses(&k, &layouts, &bindings);
        analyze_sharing(&accesses, bx, by)
    }

    // The coalesced mm kernel of paper Figure 3a.
    const MM_COALESCED: &str = r#"
        __global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
            float sum = 0.0f;
            for (int i = 0; i < w; i = i + 16) {
                __shared__ float shared0[16];
                shared0[tidx] = a[idy][i + tidx];
                __syncthreads();
                for (int k = 0; k < 16; k = k + 1) {
                    sum += shared0[k] * b[i + k][idx];
                }
                __syncthreads();
            }
            c[idy][idx] = sum;
        }
    "#;

    #[test]
    fn mm_sharing_matches_paper_case_study() {
        // §5: array a (G2S) shares along X → thread-block merge;
        // array b (G2R) shares along Y → thread merge.
        let r = report(MM_COALESCED, &[("n", 1024), ("w", 1024)], 16, 1);
        let a = r.accesses.iter().find(|s| s.array == "a").unwrap();
        assert!(a.shares_x && !a.shares_y);
        assert_eq!(a.target, AccessTarget::Shared);
        let b = r.accesses.iter().find(|s| s.array == "b").unwrap();
        assert!(b.shares_y && !b.shares_x);
        assert_eq!(b.target, AccessTarget::Register);
        assert_eq!(r.merge_x, Some(MergeKind::ThreadBlock));
        assert_eq!(r.merge_y, Some(MergeKind::Thread));
    }

    #[test]
    fn naive_mm_also_shows_sharing() {
        let r = report(
            r#"__global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
                float sum = 0.0f;
                for (int i = 0; i < w; i = i + 1) { sum += a[idy][i] * b[i][idx]; }
                c[idy][idx] = sum;
            }"#,
            &[("n", 1024), ("w", 1024)],
            16,
            1,
        );
        assert!(r.any_sharing());
        // Both naive loads are G2R, so both directions recommend thread merge.
        assert_eq!(r.merge_x, Some(MergeKind::Thread));
        assert_eq!(r.merge_y, Some(MergeKind::Thread));
    }

    #[test]
    fn writes_do_not_contribute_sharing() {
        let r = report(
            "__global__ void f(float c[n][n], int n) { c[idy][idx] = 1.0f; }",
            &[("n", 256)],
            16,
            1,
        );
        assert!(!r.any_sharing());
        assert!(r.accesses.is_empty());
    }

    #[test]
    fn fully_partitioned_access_shares_nothing() {
        // Each block reads its own disjoint rows and columns.
        let r = report(
            "__global__ void f(float a[n][n], float c[n][n], int n) {
                c[idy][idx] = a[idy][idx];
            }",
            &[("n", 256)],
            16,
            1,
        );
        assert!(!r.any_sharing());
    }

    #[test]
    fn g2s_beats_g2r_in_recommendation() {
        // Two X-sharing loads, one staged to shared memory: block merge wins.
        let r = report(
            "__global__ void f(float a[n], float b[n], float c[m][n], int n, int m) {
                __shared__ float s0[16];
                s0[tidx] = a[tidx];
                __syncthreads();
                c[idy][idx] = s0[0] + b[idy];
            }",
            &[("n", 256), ("m", 256)],
            16,
            1,
        );
        assert_eq!(r.merge_x, Some(MergeKind::ThreadBlock));
    }

    #[test]
    fn broadcast_vector_counts_as_sharing() {
        // mv's b[i]: independent of both bidx and bidy.
        let r = report(
            "__global__ void mv(float a[n][w], float b[w], float c[n], int n, int w) {
                float s = 0.0f;
                for (int i = 0; i < w; i = i + 1) { s += a[idx][i] * b[i]; }
                c[idx] = s;
            }",
            &[("n", 1024), ("w", 1024)],
            16,
            1,
        );
        let b = r.accesses.iter().find(|s| s.array == "b").unwrap();
        assert!(b.shares_x && b.shares_y);
    }
}
