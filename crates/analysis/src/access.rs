//! Global-memory access enumeration, index classification, and the
//! memory-coalescing checker (paper §3.2).
//!
//! The checker follows the paper literally: for each array access it
//! computes the addresses issued by the 16 consecutive threads of a half
//! warp. Accesses are coalesced when, for every reachable loop-iteration
//! value, the 16 addresses form one contiguous, aligned 64-byte segment
//! (16 elements): the *base address* is a multiple of 16 words and the
//! *offsets* of threads 1‥15 are 1‥15 words.

use crate::affine::{Affine, Sym};
use crate::layout::{ArrayLayout, Bindings};
use gpgpu_ast::{visit, Builtin, Expr, Kernel, LValue, Stmt};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Threads per half warp — the coalescing granularity of G80/GT200.
pub const HALF_WARP: i64 = 16;

/// Maximum loop-value combinations the checker enumerates before giving up.
const MAX_COMBOS: usize = 4096;

/// The paper's four-way classification of one array index (§3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexClass {
    /// A compile-time constant, e.g. the `5` in `a[idy][i+5]`.
    Constant(i64),
    /// Built from predefined ids (`idx`, `idy`, `tidx`, `tidy`, …) only.
    Predefined,
    /// Involves an enclosing loop's iterator.
    Loop(String),
    /// Anything else — indirect accesses, non-affine arithmetic.
    Unresolved,
}

/// Where a global load lands (§3.3's G2S / G2R distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessTarget {
    /// Global → register: consumed directly by computation.
    Register,
    /// Global → shared memory: the value is stored to a `__shared__` array.
    Shared,
}

/// Why an access failed the coalescing check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonCoalescedReason {
    /// Threads of the half warp do not touch 16 consecutive words
    /// (wrong `tidx` stride — includes broadcasts, column walks).
    BadOffsets,
    /// Offsets are right but some reachable base address is not a multiple
    /// of 16 words (e.g. `b[idx+i]` at `i = 1`).
    MisalignedBase,
}

/// Result of the coalescing check for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceVerdict {
    /// All half-warp accesses form aligned 16-word segments.
    Coalesced,
    /// Provably not coalesced.
    NotCoalesced(NonCoalescedReason),
    /// The address is not affine (unresolved index); the compiler skips it.
    Unresolved,
}

impl CoalesceVerdict {
    /// Convenience predicate.
    pub fn is_coalesced(self) -> bool {
        self == CoalesceVerdict::Coalesced
    }
}

impl fmt::Display for CoalesceVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoalesceVerdict::Coalesced => f.write_str("coalesced"),
            CoalesceVerdict::NotCoalesced(NonCoalescedReason::BadOffsets) => {
                f.write_str("not coalesced (offsets)")
            }
            CoalesceVerdict::NotCoalesced(NonCoalescedReason::MisalignedBase) => {
                f.write_str("not coalesced (base alignment)")
            }
            CoalesceVerdict::Unresolved => f.write_str("unresolved"),
        }
    }
}

/// Metadata about one loop enclosing an access.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopMeta {
    /// Iterator name.
    pub var: String,
    /// Start value, when concrete under the bindings.
    pub start: Option<i64>,
    /// Affine increment, when the loop is `+= k`.
    pub step: Option<i64>,
    /// Candidate iteration values the checker substitutes: the first 16 for
    /// affine loops (the pattern repeats mod 16), or the full enumeration
    /// for geometric loops with concrete bounds.
    pub values: Option<Vec<i64>>,
}

/// One global-memory access with everything the optimizer needs to know.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalAccess {
    /// Array name.
    pub array: String,
    /// Original per-dimension index expressions.
    pub indices: Vec<Expr>,
    /// Per-dimension classification.
    pub classes: Vec<IndexClass>,
    /// Linearized element offset, when affine.
    pub linear: Option<Affine>,
    /// True for stores.
    pub is_write: bool,
    /// Destination of a load (G2R / G2S); stores are `Register`.
    pub target: AccessTarget,
    /// Enclosing loops, outermost first.
    pub loops: Vec<LoopMeta>,
    /// Coalescing verdict.
    pub verdict: CoalesceVerdict,
}

impl GlobalAccess {
    /// The linear form with `idx`/`idy` expanded over a 16×1 half-warp
    /// block; the shape the transforms reason about.
    pub fn expanded(&self) -> Option<Affine> {
        self.linear.as_ref().map(|l| l.expand_ids(HALF_WARP, 1))
    }
}

/// Classifies one index expression per the paper's four categories.
///
/// `loop_vars` are the iterators of enclosing loops; `resolve_var` binds
/// size parameters to constants.
pub fn classify_index(
    e: &Expr,
    loop_vars: &[String],
    resolve_var: &dyn Fn(&str) -> Option<i64>,
) -> IndexClass {
    let Some(aff) = Affine::from_expr(e, resolve_var) else {
        return IndexClass::Unresolved;
    };
    if let Some(c) = aff.as_constant() {
        return IndexClass::Constant(c);
    }
    // Any symbolic var that is not a known loop iterator is unresolved.
    for (sym, _) in aff.iter() {
        if let Sym::Var(name) = sym {
            if !loop_vars.iter().any(|v| v == name) {
                return IndexClass::Unresolved;
            }
        }
    }
    for lv in loop_vars.iter().rev() {
        if aff.depends_on(&Sym::var(lv.clone())) {
            return IndexClass::Loop(lv.clone());
        }
    }
    IndexClass::Predefined
}

/// Runs the half-warp coalescing check on a linearized element offset.
///
/// `elem_lanes` is the number of 4-byte words per element (1 for `float`,
/// 2 for `float2`): vector elements widen the segment proportionally and
/// remain coalesced when consecutive threads touch consecutive elements.
pub fn check_coalescing(linear: &Affine, loops: &[LoopMeta]) -> CoalesceVerdict {
    let expanded = linear.expand_ids(HALF_WARP, 1);
    // Offsets: consecutive threads must touch consecutive elements.
    let tidx_coeff = expanded.coeff_builtin(Builtin::TidX);
    if tidx_coeff != 1 {
        return CoalesceVerdict::NotCoalesced(NonCoalescedReason::BadOffsets);
    }
    // Base: drop the tidx term, then require every reachable value to be a
    // multiple of 16 elements.
    let base = expanded.subst(&Sym::Builtin(Builtin::TidX), &Affine::constant(0));
    // Substitute loop values combinatorially; every remaining symbol (block
    // ids, tidy, unbound vars) must have a coefficient divisible by 16.
    let mut combos: Vec<Affine> = vec![base];
    for l in loops {
        let var = Sym::var(l.var.clone());
        if !combos.iter().any(|b| b.depends_on(&var)) {
            continue;
        }
        let Some(values) = &l.values else {
            // The base depends on a loop we cannot enumerate.
            return CoalesceVerdict::Unresolved;
        };
        let mut next = Vec::with_capacity(combos.len() * values.len());
        for b in &combos {
            for &v in values {
                next.push(b.subst(&var, &Affine::constant(v)));
                if next.len() > MAX_COMBOS {
                    return CoalesceVerdict::Unresolved;
                }
            }
        }
        combos = next;
    }
    for b in &combos {
        if b.constant_part().rem_euclid(HALF_WARP) != 0 {
            return CoalesceVerdict::NotCoalesced(NonCoalescedReason::MisalignedBase);
        }
        for (sym, coeff) in b.iter() {
            if matches!(sym, Sym::Var(_)) {
                // An unenumerated symbolic var whose coefficient is not a
                // multiple of 16 could misalign the base.
                if coeff.rem_euclid(HALF_WARP) != 0 {
                    return CoalesceVerdict::NotCoalesced(NonCoalescedReason::MisalignedBase);
                }
            } else if coeff.rem_euclid(HALF_WARP) != 0 {
                return CoalesceVerdict::NotCoalesced(NonCoalescedReason::MisalignedBase);
            }
        }
    }
    CoalesceVerdict::Coalesced
}

/// Enumerates and checks every global-memory access in `kernel`.
///
/// `layouts` must contain a resolved (and, if the compiler pads, padded)
/// layout for every array parameter the kernel touches; accesses to arrays
/// missing from `layouts` are reported with [`CoalesceVerdict::Unresolved`].
pub fn collect_accesses(
    kernel: &Kernel,
    layouts: &HashMap<String, ArrayLayout>,
    bindings: &Bindings,
) -> Vec<GlobalAccess> {
    let shared: HashSet<String> = kernel
        .shared_decls()
        .iter()
        .map(|(n, _, _)| n.to_string())
        .collect();
    let global: HashSet<String> = kernel.array_params().map(|p| p.name.clone()).collect();
    let pragma_sizes = kernel.pragma_sizes();
    let resolve = move |name: &str| -> Option<i64> {
        bindings
            .get(name)
            .or_else(|| pragma_sizes.get(name))
            .copied()
    };

    let mut out = Vec::new();
    let mut loop_stack: Vec<LoopMeta> = Vec::new();
    walk(
        &kernel.body,
        &mut loop_stack,
        &global,
        &shared,
        layouts,
        &resolve,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn walk(
    body: &[Stmt],
    loop_stack: &mut Vec<LoopMeta>,
    global: &HashSet<String>,
    shared: &HashSet<String>,
    layouts: &HashMap<String, ArrayLayout>,
    resolve: &dyn Fn(&str) -> Option<i64>,
    out: &mut Vec<GlobalAccess>,
) {
    for stmt in body {
        match stmt {
            Stmt::Assign { lhs, rhs } => {
                let target = match lhs {
                    LValue::Index { array, .. } if shared.contains(array) => AccessTarget::Shared,
                    _ => AccessTarget::Register,
                };
                // Reads on the RHS and in the LHS index expressions.
                let mut record_read = |e: &Expr| {
                    if let Expr::Index { array, indices } = e {
                        if global.contains(array) {
                            out.push(make_access(
                                array, indices, false, target, loop_stack, layouts, resolve,
                            ));
                        }
                    }
                };
                rhs.walk(&mut record_read);
                if let LValue::Index { array, indices } = lhs {
                    for ix in indices {
                        ix.walk(&mut record_read);
                    }
                    if global.contains(array) {
                        out.push(make_access(
                            array,
                            indices,
                            true,
                            AccessTarget::Register,
                            loop_stack,
                            layouts,
                            resolve,
                        ));
                    }
                }
            }
            Stmt::DeclScalar { init: Some(e), .. } => {
                e.walk(&mut |e| {
                    if let Expr::Index { array, indices } = e {
                        if global.contains(array) {
                            out.push(make_access(
                                array,
                                indices,
                                false,
                                AccessTarget::Register,
                                loop_stack,
                                layouts,
                                resolve,
                            ));
                        }
                    }
                });
            }
            Stmt::For(l) => {
                loop_stack.push(loop_meta(l, resolve));
                walk(&l.body, loop_stack, global, shared, layouts, resolve, out);
                loop_stack.pop();
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                cond.walk(&mut |e| {
                    if let Expr::Index { array, indices } = e {
                        if global.contains(array) {
                            out.push(make_access(
                                array,
                                indices,
                                false,
                                AccessTarget::Register,
                                loop_stack,
                                layouts,
                                resolve,
                            ));
                        }
                    }
                });
                walk(then_body, loop_stack, global, shared, layouts, resolve, out);
                walk(else_body, loop_stack, global, shared, layouts, resolve, out);
            }
            _ => {}
        }
    }
}

fn loop_meta(l: &gpgpu_ast::ForLoop, resolve: &dyn Fn(&str) -> Option<i64>) -> LoopMeta {
    let start = Affine::from_expr(&l.init, resolve).and_then(|a| a.as_constant());
    let step = l.affine_step();
    let values = match (start, step) {
        (Some(s), Some(k)) => Some((0..HALF_WARP).map(|i| s + i * k).collect()),
        _ => {
            // Geometric loops: enumerate fully when bounds are concrete.
            let bound = Affine::from_expr(&l.bound, resolve).and_then(|a| a.as_constant());
            if let (Some(s), Some(b)) = (start, bound) {
                let concrete = gpgpu_ast::ForLoop {
                    init: gpgpu_ast::Expr::Int(s),
                    bound: gpgpu_ast::Expr::Int(b),
                    ..l.clone()
                };
                concrete.enumerate_values(64)
            } else {
                None
            }
        }
    };
    LoopMeta {
        var: l.var.clone(),
        start,
        step,
        values,
    }
}

fn make_access(
    array: &str,
    indices: &[Expr],
    is_write: bool,
    target: AccessTarget,
    loop_stack: &[LoopMeta],
    layouts: &HashMap<String, ArrayLayout>,
    resolve: &dyn Fn(&str) -> Option<i64>,
) -> GlobalAccess {
    let loop_vars: Vec<String> = loop_stack.iter().map(|l| l.var.clone()).collect();
    let classes: Vec<IndexClass> = indices
        .iter()
        .map(|e| classify_index(e, &loop_vars, resolve))
        .collect();
    // Keep loop vars symbolic; bind everything else that has a value.
    let resolve_keeping_loops = |name: &str| -> Option<i64> {
        if loop_vars.iter().any(|v| v == name) {
            None
        } else {
            resolve(name)
        }
    };
    let affine: Option<Vec<Affine>> = indices
        .iter()
        .map(|e| Affine::from_expr(e, &resolve_keeping_loops))
        .collect();
    let linear = affine
        .as_ref()
        .and_then(|forms| layouts.get(array).and_then(|lay| lay.linearize(forms)));
    let verdict = match &linear {
        Some(l) => check_coalescing(l, loop_stack),
        None => CoalesceVerdict::Unresolved,
    };
    GlobalAccess {
        array: array.to_string(),
        indices: indices.to_vec(),
        classes,
        linear,
        is_write,
        target,
        loops: loop_stack.to_vec(),
        verdict,
    }
}

/// Reads from `body` that target global arrays — convenience wrapper used by
/// transforms that need the raw expression list.
pub fn global_reads<'a>(body: &'a [Stmt], global: &HashSet<String>) -> Vec<(&'a str, &'a [Expr])> {
    visit::collect_reads(body, &|name| global.contains(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::resolve_layouts;
    use gpgpu_ast::parse_kernel;

    fn analyzed(src: &str, binds: &[(&str, i64)]) -> Vec<GlobalAccess> {
        let k = parse_kernel(src).unwrap();
        let bindings: Bindings = binds.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        let layouts = resolve_layouts(&k, &bindings).unwrap();
        collect_accesses(&k, &layouts, &bindings)
    }

    const MM: &str = r#"
        __global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
            float sum = 0.0f;
            for (int i = 0; i < w; i = i + 1) {
                sum += a[idy][i] * b[i][idx];
            }
            c[idy][idx] = sum;
        }
    "#;

    #[test]
    fn mm_verdicts_match_paper() {
        // Paper §3.2: a[idy][i] is NOT coalesced (same address for the whole
        // half warp); b[i][idx] IS coalesced when rows are 16-word aligned;
        // the store c[idy][idx] is coalesced.
        let accesses = analyzed(MM, &[("n", 1024), ("w", 1024)]);
        let by_array: HashMap<&str, &GlobalAccess> = accesses
            .iter()
            .map(|a| (a.array.as_str(), a))
            .collect();
        assert_eq!(
            by_array["a"].verdict,
            CoalesceVerdict::NotCoalesced(NonCoalescedReason::BadOffsets)
        );
        assert_eq!(by_array["b"].verdict, CoalesceVerdict::Coalesced);
        assert_eq!(by_array["c"].verdict, CoalesceVerdict::Coalesced);
        assert!(by_array["c"].is_write);
    }

    #[test]
    fn unaligned_rows_break_coalescing() {
        // 100-wide rows: b[i][idx] bases are i*100, not multiples of 16.
        let accesses = analyzed(
            "__global__ void f(float b[w][n], float c[n], int n, int w) {
                float s = 0.0f;
                for (int i = 0; i < w; i = i + 1) { s += b[i][idx]; }
                c[idx] = s;
            }",
            &[("n", 100), ("w", 64)],
        );
        let b = accesses.iter().find(|a| a.array == "b").unwrap();
        assert_eq!(
            b.verdict,
            CoalesceVerdict::NotCoalesced(NonCoalescedReason::MisalignedBase)
        );
    }

    #[test]
    fn padding_restores_coalescing() {
        let k = parse_kernel(
            "__global__ void f(float b[w][n], float c[n], int n, int w) {
                float s = 0.0f;
                for (int i = 0; i < w; i = i + 1) { s += b[i][idx]; }
                c[idx] = s;
            }",
        )
        .unwrap();
        let bindings: Bindings = [("n".to_string(), 100i64), ("w".to_string(), 64)].into();
        let mut layouts = resolve_layouts(&k, &bindings).unwrap();
        for l in layouts.values_mut() {
            *l = l.clone().padded_to(16);
        }
        let accesses = collect_accesses(&k, &layouts, &bindings);
        let b = accesses.iter().find(|a| a.array == "b").unwrap();
        assert_eq!(b.verdict, CoalesceVerdict::Coalesced);
    }

    #[test]
    fn sliding_window_misaligns_base() {
        // Paper §3.2: b[idx+i] fails the base condition (e.g. b[1] at i=1).
        let accesses = analyzed(
            "__global__ void f(float b[m], float c[n], int n, int m) {
                float s = 0.0f;
                for (int i = 0; i < 16; i = i + 1) { s += b[idx + i]; }
                c[idx] = s;
            }",
            &[("n", 1024), ("m", 2048)],
        );
        let b = accesses.iter().find(|a| a.array == "b").unwrap();
        assert_eq!(
            b.verdict,
            CoalesceVerdict::NotCoalesced(NonCoalescedReason::MisalignedBase)
        );
    }

    #[test]
    fn mv_row_walk_not_coalesced() {
        // Paper: a[idx][i] walks a row per thread — offsets are w, not 1.
        let accesses = analyzed(
            "__global__ void mv(float a[n][w], float b[w], float c[n], int n, int w) {
                float s = 0.0f;
                for (int i = 0; i < w; i = i + 1) { s += a[idx][i] * b[i]; }
                c[idx] = s;
            }",
            &[("n", 1024), ("w", 1024)],
        );
        let a = accesses.iter().find(|x| x.array == "a").unwrap();
        assert_eq!(
            a.verdict,
            CoalesceVerdict::NotCoalesced(NonCoalescedReason::BadOffsets)
        );
        // b[i]: same element for all threads — broadcast, not coalesced.
        let b = accesses.iter().find(|x| x.array == "b").unwrap();
        assert_eq!(
            b.verdict,
            CoalesceVerdict::NotCoalesced(NonCoalescedReason::BadOffsets)
        );
    }

    #[test]
    fn vectorized_access_is_coalesced() {
        // After vectorization A[idx] on float2 stays stride-1 in elements.
        let accesses = analyzed(
            "__global__ void f(float2 a[n], float c[n], int n) {
                float2 v = a[idx];
                c[idx] = v.x + v.y;
            }",
            &[("n", 1024)],
        );
        let a = accesses.iter().find(|x| x.array == "a").unwrap();
        assert_eq!(a.verdict, CoalesceVerdict::Coalesced);
    }

    #[test]
    fn strided_pair_not_coalesced() {
        // a[2*idx] has tidx coefficient 2.
        let accesses = analyzed(
            "__global__ void f(float a[m], float c[n], int n, int m) {
                c[idx] = a[2 * idx];
            }",
            &[("n", 1024), ("m", 2048)],
        );
        let a = accesses.iter().find(|x| x.array == "a").unwrap();
        assert_eq!(
            a.verdict,
            CoalesceVerdict::NotCoalesced(NonCoalescedReason::BadOffsets)
        );
    }

    #[test]
    fn index_classification_follows_paper() {
        let resolve = |name: &str| (name == "w").then_some(64i64);
        let loops = vec!["i".to_string()];
        let parse = |s: &str| {
            gpgpu_ast::Parser::new(s).unwrap().expr().unwrap()
        };
        assert_eq!(
            classify_index(&parse("5"), &loops, &resolve),
            IndexClass::Constant(5)
        );
        assert_eq!(
            classify_index(&parse("idy"), &loops, &resolve),
            IndexClass::Predefined
        );
        assert_eq!(
            classify_index(&parse("i + 5"), &loops, &resolve),
            IndexClass::Loop("i".into())
        );
        assert_eq!(
            classify_index(&parse("x"), &loops, &resolve),
            IndexClass::Unresolved
        );
        assert_eq!(
            classify_index(&parse("a[i]"), &loops, &resolve),
            IndexClass::Unresolved
        );
        // Bound size parameters act as constants.
        assert_eq!(
            classify_index(&parse("w"), &loops, &resolve),
            IndexClass::Constant(64)
        );
    }

    #[test]
    fn g2s_target_detected() {
        let accesses = analyzed(
            "__global__ void f(float a[n][w], float c[n], int n, int w) {
                __shared__ float s0[16];
                s0[tidx] = a[idy][tidx];
                __syncthreads();
                c[idx] = s0[0];
            }",
            &[("n", 1024), ("w", 1024)],
        );
        let a = accesses.iter().find(|x| x.array == "a").unwrap();
        assert_eq!(a.target, AccessTarget::Shared);
    }

    #[test]
    fn reads_in_conditions_and_decls_are_collected() {
        let accesses = analyzed(
            "__global__ void f(float a[n], float c[n], int n) {
                float t = a[idx];
                if (a[idx] > 0.0f) { c[idx] = t; }
            }",
            &[("n", 1024)],
        );
        let reads: Vec<_> = accesses.iter().filter(|x| x.array == "a").collect();
        assert_eq!(reads.len(), 2);
        assert!(reads.iter().all(|r| r.verdict.is_coalesced()));
    }

    #[test]
    fn indirect_access_unresolved() {
        let accesses = analyzed(
            "__global__ void f(float a[n], float b[n], float c[n], int n) {
                c[idx] = a[(int)b[idx]];
            }",
            &[("n", 1024)],
        );
        let a = accesses.iter().find(|x| x.array == "a").unwrap();
        assert_eq!(a.verdict, CoalesceVerdict::Unresolved);
        assert_eq!(a.classes, vec![IndexClass::Unresolved]);
    }

    #[test]
    fn geometric_loop_values_enumerated() {
        let accesses = analyzed(
            "__global__ void rd(float a[n], int n) {
                for (int s = 8; s > 0; s = s >> 1) {
                    if (idx < s) { a[idx] += a[idx + s]; }
                    __gsync();
                }
            }",
            &[("n", 1024)],
        );
        // a[idx + s]: bases are s ∈ {8,4,2,1}, none multiples of 16.
        let shifted = accesses
            .iter()
            .find(|x| {
                x.array == "a" && x.linear.as_ref().is_some_and(|l| l.constant_part() == 0)
                    && !x.is_write
                    && x.loops[0].values.as_deref() == Some(&[8, 4, 2, 1])
            })
            .unwrap();
        assert_eq!(shifted.loops[0].values.as_deref(), Some(&[8, 4, 2, 1][..]));
    }
}
