//! Per-thread register and per-block shared-memory estimates (paper §4).
//!
//! The merge passes trade on-chip resources for reuse, so the compiler must
//! predict whether a transformed kernel still fits the hardware and how many
//! blocks can be co-resident on an SM. nvcc's allocator is out of reach, so
//! we use a structural estimate with a coarse liveness model:
//!
//! * scalars that are **live across a loop** (accumulators, prefetch
//!   temporaries — declared outside a loop and used inside one) each hold a
//!   register for the whole kernel;
//! * straight-line **transient** scalars are reused by a real allocator, so
//!   their contribution is capped;
//! * global-access **address registers** count fully for sites inside loops
//!   (alive every iteration) and are capped for one-shot sites.
//!
//! The estimate only needs to be *monotone* in the real usage — merge
//! degrees scale it the same way they scale actual pressure — which is what
//! the occupancy search requires.

use gpgpu_ast::{Expr, Kernel, Stmt};
use std::collections::HashSet;

/// Estimated on-chip resource usage of one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceEstimate {
    /// Registers per thread (32-bit words).
    pub registers_per_thread: u32,
    /// Shared memory per thread block, in bytes.
    pub shared_bytes_per_block: u64,
    /// Number of distinct global-memory load sites.
    pub global_load_sites: u32,
    /// Rough per-thread floating-point operation count (compute weight).
    pub flops_per_thread_iter: u32,
}

/// Fixed register overhead: kernel arguments, id computation, loop control.
const BASE_REGISTERS: u32 = 10;
/// Address + staging registers per distinct global access site.
const REGISTERS_PER_ACCESS: u32 = 2;
/// Straight-line temporaries are register-reused; cap their contribution.
const TRANSIENT_CAP: u32 = 12;
/// One-shot (outside-loop) address sites are also reused; cap in registers.
const ONESHOT_SITE_CAP: u32 = 8;

/// Estimates the resource usage of `kernel`.
pub fn estimate_resources(kernel: &Kernel) -> ResourceEstimate {
    let globals: HashSet<&str> = kernel.array_params().map(|p| p.name.as_str()).collect();

    // Persistent scalars: declared at the top level and used inside a loop.
    let mut persistent: u32 = 0;
    let mut transient: u32 = 0;
    for (pos, stmt) in kernel.body.iter().enumerate() {
        if let Stmt::DeclScalar { name, ty, .. } = stmt {
            let used_in_loop = kernel.body[pos + 1..].iter().any(|s| stmt_loop_uses(s, name));
            if used_in_loop {
                persistent += ty.lanes();
            } else {
                transient += ty.lanes();
            }
        }
    }
    // Declarations inside loops/branches are transient by construction.
    fn count_nested(body: &[Stmt], transient: &mut u32) {
        for s in body {
            if let Stmt::DeclScalar { ty, .. } = s {
                *transient += ty.lanes();
            }
            for child in s.children() {
                count_nested(child, transient);
            }
        }
    }
    for s in &kernel.body {
        for child in s.children() {
            count_nested(child, &mut transient);
        }
    }

    // Global-access sites, split by whether they sit inside a loop.
    let mut loop_sites: HashSet<String> = HashSet::new();
    let mut oneshot_sites: HashSet<String> = HashSet::new();
    let mut flops: u32 = 0;
    collect_sites(
        &kernel.body,
        false,
        &globals,
        &mut loop_sites,
        &mut oneshot_sites,
        &mut flops,
    );
    let site_regs = REGISTERS_PER_ACCESS * loop_sites.len() as u32
        + (REGISTERS_PER_ACCESS * oneshot_sites.len() as u32).min(ONESHOT_SITE_CAP);

    ResourceEstimate {
        registers_per_thread: BASE_REGISTERS
            + persistent
            + transient.min(TRANSIENT_CAP)
            + site_regs,
        shared_bytes_per_block: kernel.shared_bytes(),
        global_load_sites: (loop_sites.len() + oneshot_sites.len()) as u32,
        flops_per_thread_iter: flops,
    }
}

/// True when `stmt` is (or contains) a loop that mentions `name`.
fn stmt_loop_uses(stmt: &Stmt, name: &str) -> bool {
    match stmt {
        Stmt::For(l) => body_uses(&l.body, name) || l.body.iter().any(|s| stmt_loop_uses(s, name)),
        _ => stmt.children().into_iter().flatten().any(|s| stmt_loop_uses(s, name)),
    }
}

fn body_uses(body: &[Stmt], name: &str) -> bool {
    let mut used = false;
    gpgpu_ast::visit::walk_exprs(body, &mut |e| {
        if matches!(e, Expr::Var(n) if n == name) {
            used = true;
        }
    });
    if used {
        return true;
    }
    // Assignments to the scalar also keep it live.
    let mut assigned = false;
    gpgpu_ast::visit::walk_stmts(body, &mut |s| {
        if let Stmt::Assign { lhs, .. } = s {
            match lhs {
                gpgpu_ast::LValue::Var(v) | gpgpu_ast::LValue::Field(v, _) if v == name => {
                    assigned = true
                }
                _ => {}
            }
        }
    });
    assigned
}

fn record_expr(
    e: &Expr,
    in_loop: bool,
    globals: &HashSet<&str>,
    loop_sites: &mut HashSet<String>,
    oneshot_sites: &mut HashSet<String>,
    flops: &mut u32,
) {
    e.walk(&mut |e| match e {
        Expr::Index { array, indices } if globals.contains(array.as_str()) => {
            let key = format!("{array}:{indices:?}");
            if in_loop {
                loop_sites.insert(key);
            } else {
                oneshot_sites.insert(key);
            }
        }
        Expr::Binary(op, _, _) if !op.is_predicate() => *flops += 1,
        Expr::Call(_, _) => *flops += 4,
        _ => {}
    });
}

fn collect_sites(
    body: &[Stmt],
    in_loop: bool,
    globals: &HashSet<&str>,
    loop_sites: &mut HashSet<String>,
    oneshot_sites: &mut HashSet<String>,
    flops: &mut u32,
) {
    macro_rules! record {
        ($e:expr, $in_loop:expr) => {
            record_expr($e, $in_loop, globals, loop_sites, oneshot_sites, flops)
        };
    }
    for stmt in body {
        match stmt {
            Stmt::DeclScalar { init: Some(e), .. } => record!(e, in_loop),
            Stmt::Assign { lhs, rhs } => {
                if let gpgpu_ast::LValue::Index { indices, .. } = lhs {
                    for ix in indices {
                        record!(ix, in_loop);
                    }
                }
                record!(rhs, in_loop);
            }
            Stmt::For(l) => {
                record!(&l.init, in_loop);
                record!(&l.bound, in_loop);
                collect_sites(&l.body, true, globals, loop_sites, oneshot_sites, flops);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                record!(cond, in_loop);
                collect_sites(then_body, in_loop, globals, loop_sites, oneshot_sites, flops);
                collect_sites(else_body, in_loop, globals, loop_sites, oneshot_sites, flops);
            }
            Stmt::CallStmt(_, args) => {
                for a in args {
                    record!(a, in_loop);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_ast::parse_kernel;

    const MM: &str = r#"
        __global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
            float sum = 0.0f;
            for (int i = 0; i < w; i = i + 1) {
                sum += a[idy][i] * b[i][idx];
            }
            c[idy][idx] = sum;
        }
    "#;

    #[test]
    fn naive_mm_estimate() {
        let k = parse_kernel(MM).unwrap();
        let r = estimate_resources(&k);
        // base 10 + 1 persistent accumulator + 2 in-loop load sites × 2.
        assert_eq!(r.registers_per_thread, 10 + 1 + 4);
        assert_eq!(r.shared_bytes_per_block, 0);
        assert_eq!(r.global_load_sites, 2);
        assert!(r.flops_per_thread_iter >= 2); // mul + add
    }

    #[test]
    fn merged_kernel_uses_more_registers() {
        // Two accumulators and replicated loads → strictly larger estimate.
        let merged = parse_kernel(
            r#"__global__ void mm2(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
                float sum_0 = 0.0f;
                float sum_1 = 0.0f;
                for (int i = 0; i < w; i = i + 1) {
                    float r0 = b[i][idx];
                    sum_0 += a[idy * 2][i] * r0;
                    sum_1 += a[idy * 2 + 1][i] * r0;
                }
                c[idy * 2][idx] = sum_0;
                c[idy * 2 + 1][idx] = sum_1;
            }"#,
        )
        .unwrap();
        let naive = parse_kernel(MM).unwrap();
        assert!(
            estimate_resources(&merged).registers_per_thread
                > estimate_resources(&naive).registers_per_thread
        );
    }

    #[test]
    fn straight_line_temporaries_are_capped() {
        // A long chain of one-shot temps (FFT-style) must not explode the
        // estimate: a real allocator reuses those registers.
        let mut body = String::new();
        for i in 0..40 {
            body.push_str(&format!("float t{i} = a[idx] + {i}.0f;\n"));
        }
        body.push_str("c[idx] = t39;\n");
        let k = parse_kernel(&format!(
            "__global__ void f(float a[n], float c[n], int n) {{\n{body}}}"
        ))
        .unwrap();
        let r = estimate_resources(&k);
        assert!(
            r.registers_per_thread <= 10 + TRANSIENT_CAP + ONESHOT_SITE_CAP,
            "{r:?}"
        );
    }

    #[test]
    fn loop_carried_scalars_count_fully() {
        // 8 accumulators live across the loop: all held simultaneously.
        let mut decls = String::new();
        let mut uses = String::new();
        for i in 0..8 {
            decls.push_str(&format!("float s{i} = 0.0f;\n"));
            uses.push_str(&format!("s{i} += a[idy][i2];\n"));
        }
        let k = parse_kernel(&format!(
            "__global__ void f(float a[n][w], float c[n], int n, int w) {{\n{decls}for (int i2 = 0; i2 < w; i2 = i2 + 1) {{\n{uses}}}\nc[idx] = s0;\n}}"
        ))
        .unwrap();
        let r = estimate_resources(&k);
        assert!(r.registers_per_thread >= 10 + 8, "{r:?}");
    }

    #[test]
    fn shared_memory_counted() {
        let k = parse_kernel(
            "__global__ void f(float a[n], int n) {
                __shared__ float s0[16];
                __shared__ float s1[16][17];
                s0[tidx] = a[idx];
                __syncthreads();
                a[idx] = s0[tidx] + s1[tidx][0];
            }",
        )
        .unwrap();
        assert_eq!(
            estimate_resources(&k).shared_bytes_per_block,
            (16 + 16 * 17) * 4
        );
    }

    #[test]
    fn vector_scalars_count_lanes() {
        let k = parse_kernel(
            "__global__ void f(float2 a[n], float c[m][n], int n, int m) {
                float2 v = a[idx];
                for (int i = 0; i < m; i = i + 1) { c[i][idx] = v.x + v.y; }
            }",
        )
        .unwrap();
        // v is live across the loop: 2 lanes persistent.
        let r = estimate_resources(&k);
        assert!(r.registers_per_thread >= 10 + 2, "{r:?}");
    }

    #[test]
    fn duplicate_access_sites_deduplicate() {
        let k = parse_kernel(
            "__global__ void f(float a[n], float c[n], int n) {
                c[idx] = a[idx] + a[idx];
            }",
        )
        .unwrap();
        assert_eq!(estimate_resources(&k).global_load_sites, 1);
    }
}
