//! Partition-camping detection (paper §3.7).
//!
//! Off-chip memory is split into partitions of fixed width. Memory traffic
//! should spread across all partitions; when concurrently active thread
//! blocks hit the same partition, requests queue up — *partition camping*.
//! Since neighboring blocks along X are likely active simultaneously, the
//! paper's rule checks accesses whose address involves `bidx`: camping is
//! detected when the address stride between blocks `bidx` and `bidx+1` is a
//! multiple of (partition width × number of partitions).

use crate::access::GlobalAccess;
use crate::layout::ArrayLayout;
use gpgpu_ast::Builtin;
use std::collections::HashMap;

/// The partition organization of a GPU's off-chip memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionGeometry {
    /// Number of partitions (6 on GTX 8800, 8 on GTX 280).
    pub count: u32,
    /// Partition width in bytes (256 on both).
    pub width_bytes: u32,
}

impl PartitionGeometry {
    /// GTX 8800 geometry.
    pub fn gtx8800() -> PartitionGeometry {
        PartitionGeometry {
            count: 6,
            width_bytes: 256,
        }
    }

    /// GTX 280 geometry.
    pub fn gtx280() -> PartitionGeometry {
        PartitionGeometry {
            count: 8,
            width_bytes: 256,
        }
    }

    /// The camping period in bytes: strides that are a multiple of this map
    /// every block to the same partition.
    pub fn period_bytes(&self) -> i64 {
        self.count as i64 * self.width_bytes as i64
    }

    /// The partition holding a byte address.
    pub fn partition_of(&self, byte_addr: i64) -> u32 {
        ((byte_addr / self.width_bytes as i64).rem_euclid(self.count as i64)) as u32
    }
}

/// One access that causes partition conflicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampingAccess {
    /// Array touched.
    pub array: String,
    /// Byte stride between neighboring blocks along X.
    pub stride_bytes: i64,
    /// True for stores (transpose's write side is the classic offender).
    pub is_write: bool,
}

/// Result of camping detection over a kernel.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionReport {
    /// Accesses whose inter-block stride camps on one partition.
    pub offenders: Vec<CampingAccess>,
}

impl PartitionReport {
    /// True when any access camps.
    pub fn has_camping(&self) -> bool {
        !self.offenders.is_empty()
    }
}

/// Detects partition camping for a kernel's accesses under the given block
/// dimensions and partition geometry.
///
/// `block_x`/`block_y` are the thread-block dimensions of the (optimized)
/// kernel, used to expand `idx`/`idy` into block coordinates.
pub fn detect_partition_camping(
    accesses: &[GlobalAccess],
    layouts: &HashMap<String, ArrayLayout>,
    block_x: i64,
    block_y: i64,
    geometry: PartitionGeometry,
) -> PartitionReport {
    let mut report = PartitionReport::default();
    for acc in accesses {
        let Some(linear) = &acc.linear else { continue };
        let Some(layout) = layouts.get(&acc.array) else {
            continue;
        };
        let expanded = linear.expand_ids(block_x, block_y);
        let stride_elems = expanded.coeff_builtin(Builtin::BidX);
        if stride_elems == 0 {
            // Accesses not involving bidx either hit the same line in the
            // same partition or are spread over time (paper §3.7).
            continue;
        }
        let stride_bytes = stride_elems * layout.elem.size_bytes() as i64;
        if stride_bytes % geometry.period_bytes() == 0 {
            let camping = CampingAccess {
                array: acc.array.clone(),
                stride_bytes,
                is_write: acc.is_write,
            };
            if !report.offenders.contains(&camping) {
                report.offenders.push(camping);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::collect_accesses;
    use crate::layout::{resolve_layouts, Bindings};
    use gpgpu_ast::parse_kernel;

    fn camping(
        src: &str,
        binds: &[(&str, i64)],
        bx: i64,
        by: i64,
        geo: PartitionGeometry,
    ) -> PartitionReport {
        let k = parse_kernel(src).unwrap();
        let bindings: Bindings = binds.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        let layouts = resolve_layouts(&k, &bindings).unwrap();
        let accesses = collect_accesses(&k, &layouts, &bindings);
        detect_partition_camping(&accesses, &layouts, bx, by, geo)
    }

    // mv-style row walk: block b reads rows starting at b*block_x*w floats.
    const MV: &str = "__global__ void mv(float a[n][w], float b[w], float c[n], int n, int w) {
        float s = 0.0f;
        for (int i = 0; i < w; i = i + 1) { s += a[idx][i] * b[i]; }
        c[idx] = s;
    }";

    #[test]
    fn mv_4k_camps_on_gtx280() {
        // Stride = 16 threads × 4096 floats × 4 B = 256 KiB; 256 KiB % 2048 == 0.
        let r = camping(MV, &[("n", 4096), ("w", 4096)], 16, 1, PartitionGeometry::gtx280());
        assert!(r.has_camping());
        assert_eq!(r.offenders[0].array, "a");
        assert_eq!(r.offenders[0].stride_bytes, 16 * 4096 * 4);
    }

    #[test]
    fn mv_4k_does_not_camp_on_gtx8800() {
        // 262144 % (6*256) != 0 — six partitions break the power-of-two
        // resonance, matching the paper's GTX 8800 observation.
        let r = camping(MV, &[("n", 4096), ("w", 4096)], 16, 1, PartitionGeometry::gtx8800());
        assert!(!r.has_camping());
    }

    #[test]
    fn paper_example_3k_transpose_on_gtx8800() {
        // §6.2: transposing 3k×3k on GTX 8800 exhibits camping (3072×4 B
        // row = 12 KiB; 12288 % 1536 == 0), while 4k×4k does not (16384 %
        // 1536 != 0). On GTX 280 it is the 4k case that camps.
        let tp = "__global__ void tp(float a[n][n], float c[n][n], int n) {
            c[idx][idy] = a[idy][idx];
        }";
        let g88 = PartitionGeometry::gtx8800();
        let g280 = PartitionGeometry::gtx280();
        // Writes c[idx][idy]: stride between X-neighbors = block_x × n floats.
        let r = camping(tp, &[("n", 3072)], 16, 16, g88);
        assert!(r.has_camping());
        let r = camping(tp, &[("n", 4096)], 16, 16, g88);
        assert!(!r.has_camping());
        let r = camping(tp, &[("n", 4096)], 16, 16, g280);
        assert!(r.has_camping());
    }

    #[test]
    fn row_major_contiguous_access_never_camps() {
        let copy = "__global__ void cp(float a[n][n], float c[n][n], int n) {
            c[idy][idx] = a[idy][idx];
        }";
        // Neighboring X blocks differ by 16 floats = 64 B — spread across
        // partitions.
        let r = camping(copy, &[("n", 4096)], 16, 1, PartitionGeometry::gtx280());
        assert!(!r.has_camping());
    }

    #[test]
    fn partition_of_wraps() {
        let g = PartitionGeometry::gtx280();
        assert_eq!(g.partition_of(0), 0);
        assert_eq!(g.partition_of(256), 1);
        assert_eq!(g.partition_of(2048), 0);
        assert_eq!(g.partition_of(2048 + 512), 2);
        assert_eq!(g.period_bytes(), 2048);
    }

    #[test]
    fn offenders_deduplicated() {
        // The same access pattern twice reports once.
        let src = "__global__ void f(float a[n][w], float c[n], int n, int w) {
            c[idx] = a[idx][0] + a[idx][1];
        }";
        let r = camping(src, &[("n", 4096), ("w", 512)], 1, 1, PartitionGeometry::gtx280());
        // stride = 512 floats × 4 = 2048 B — camps; both accesses identical stride.
        assert_eq!(r.offenders.len(), 1);
    }
}
