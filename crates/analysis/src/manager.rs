//! The memoizing analysis manager.
//!
//! Every transformation pass needs some subset of the same four analyses —
//! resolved array layouts, the global-access classification (which embeds
//! the affine index analysis), the inter-thread sharing report, and the
//! per-thread resource estimate. Recomputing them from scratch on every
//! query made design-space exploration O(passes × analyses); the
//! [`AnalysisManager`] memoizes each result keyed by the kernel's version
//! counter (see `PipelineState::version` in `gpgpu-transform`) so a pass
//! that did not change the kernel — or that declared an analysis
//! *preserved* — gets the cached value back.
//!
//! The protocol mirrors production pass managers:
//!
//! 1. the driver calls [`AnalysisManager::sync`] with the kernel's current
//!    version before a pass runs, dropping anything stale;
//! 2. the pass queries [`layouts`](AnalysisManager::layouts),
//!    [`accesses`](AnalysisManager::accesses),
//!    [`sharing`](AnalysisManager::sharing) or
//!    [`resources`](AnalysisManager::resources);
//! 3. after the pass, the driver calls
//!    [`retain_preserved`](AnalysisManager::retain_preserved) with the
//!    pass's preservation declaration: preserved entries are revalidated at
//!    the new kernel version, the rest are invalidated.
//!
//! Results are `Arc`-shared, so cloning the manager (copy-on-write
//! candidate exploration branches it alongside the pipeline state) is
//! cheap and hits in a branch cost nothing extra.

use crate::access::{collect_accesses, GlobalAccess};
use crate::layout::{resolve_layouts_padded, ArrayLayout, Bindings, LayoutError};
use crate::resources::{estimate_resources, ResourceEstimate};
use crate::sharing::{analyze_sharing, SharingReport};
use gpgpu_ast::Kernel;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Resolved array layouts, as cached by the manager.
pub type LayoutMap = HashMap<String, ArrayLayout>;

/// The analyses the manager memoizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisKind {
    /// Resolved (padded) array layouts.
    Layouts,
    /// Global-access enumeration + affine classification (§3.2).
    Accesses,
    /// Inter-thread data-sharing report (§3.4–3.5).
    Sharing,
    /// Register / shared-memory resource estimate (§4).
    Resources,
}

impl AnalysisKind {
    /// Every analysis kind, in a fixed order.
    pub const ALL: [AnalysisKind; 4] = [
        AnalysisKind::Layouts,
        AnalysisKind::Accesses,
        AnalysisKind::Sharing,
        AnalysisKind::Resources,
    ];

    /// Stable schema name of the analysis.
    pub fn name(self) -> &'static str {
        match self {
            AnalysisKind::Layouts => "layouts",
            AnalysisKind::Accesses => "accesses",
            AnalysisKind::Sharing => "sharing",
            AnalysisKind::Resources => "resources",
        }
    }

    fn bit(self) -> u8 {
        1 << self as u8
    }
}

/// A set of analyses — what a pass declares it preserves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisSet(u8);

impl AnalysisSet {
    /// The empty set: the pass may have perturbed every analysis.
    pub fn none() -> AnalysisSet {
        AnalysisSet(0)
    }

    /// Every analysis: the pass did not change the kernel in any way an
    /// analysis observes.
    pub fn all() -> AnalysisSet {
        let mut s = AnalysisSet(0);
        for k in AnalysisKind::ALL {
            s.0 |= k.bit();
        }
        s
    }

    /// Adds one analysis to the set.
    #[must_use]
    pub fn with(mut self, kind: AnalysisKind) -> AnalysisSet {
        self.0 |= kind.bit();
        self
    }

    /// True when the set contains `kind`.
    pub fn contains(self, kind: AnalysisKind) -> bool {
        self.0 & kind.bit() != 0
    }
}

/// Cache bookkeeping counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that recomputed.
    pub misses: u64,
    /// Cache entries dropped by invalidation.
    pub invalidations: u64,
}

/// One cached result and the kernel version it was computed at.
#[derive(Debug, Clone)]
struct Slot<T> {
    version: u64,
    value: T,
}

/// The sharing cache entry: the block extents the report was computed for,
/// plus the report itself.
type SharingSlot = Slot<((i64, i64), Result<Arc<SharingReport>, LayoutError>)>;

/// Memoizes the four pipeline analyses keyed by a kernel version counter.
///
/// See the [module docs](self) for the protocol. The manager never observes
/// the kernel directly — callers pass the kernel (and bindings) with each
/// query and are responsible for keeping the version honest; in the
/// pipeline that bookkeeping is done by `PipelineState::kernel_mut` and the
/// pass manager.
#[derive(Debug, Clone, Default)]
pub struct AnalysisManager {
    version: u64,
    layouts: Option<Slot<Result<Arc<LayoutMap>, LayoutError>>>,
    accesses: Option<Slot<Result<Arc<Vec<GlobalAccess>>, LayoutError>>>,
    /// Sharing is additionally keyed by the block extents it was computed
    /// for (the report depends on the thread-block geometry).
    sharing: Option<SharingSlot>,
    resources: Option<Slot<Arc<ResourceEstimate>>>,
    stats: CacheStats,
    hit_log: Vec<(&'static str, u64)>,
    compute_log: Vec<(&'static str, Instant, Instant)>,
}

impl AnalysisManager {
    /// A fresh manager at kernel version 0 with an empty cache.
    pub fn new() -> AnalysisManager {
        AnalysisManager::default()
    }

    /// The kernel version the manager currently trusts.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Cache bookkeeping counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drains the `(analysis, version)` hit log accumulated since the last
    /// drain — the pass manager turns these into trace events.
    pub fn drain_hits(&mut self) -> Vec<(&'static str, u64)> {
        std::mem::take(&mut self.hit_log)
    }

    /// Drains the `(analysis, started, finished)` recomputation log — the
    /// pass manager turns these into profiler spans under the pass that
    /// triggered the recompute. Cache hits never appear here.
    pub fn drain_computes(&mut self) -> Vec<(&'static str, Instant, Instant)> {
        std::mem::take(&mut self.compute_log)
    }

    /// Aligns the manager with the kernel's version counter: any cached
    /// entry computed at a different version is dropped. Returns the names
    /// of the analyses invalidated.
    pub fn sync(&mut self, version: u64) -> Vec<&'static str> {
        self.retain_preserved(AnalysisSet::none(), version)
    }

    /// Moves the manager to `new_version`, revalidating the entries whose
    /// analysis the finished pass declared `preserved` and dropping the
    /// rest. Returns the names of the analyses actually dropped.
    pub fn retain_preserved(
        &mut self,
        preserved: AnalysisSet,
        new_version: u64,
    ) -> Vec<&'static str> {
        let mut dropped = Vec::new();
        let stats = &mut self.stats;
        fn visit<T>(
            slot: &mut Option<Slot<T>>,
            kind: AnalysisKind,
            preserved: AnalysisSet,
            new_version: u64,
            stats: &mut CacheStats,
            dropped: &mut Vec<&'static str>,
        ) {
            if let Some(s) = slot {
                if s.version != new_version {
                    if preserved.contains(kind) {
                        s.version = new_version;
                    } else {
                        *slot = None;
                        stats.invalidations += 1;
                        dropped.push(kind.name());
                    }
                }
            }
        }
        visit(&mut self.layouts, AnalysisKind::Layouts, preserved, new_version, stats, &mut dropped);
        visit(&mut self.accesses, AnalysisKind::Accesses, preserved, new_version, stats, &mut dropped);
        visit(&mut self.sharing, AnalysisKind::Sharing, preserved, new_version, stats, &mut dropped);
        visit(&mut self.resources, AnalysisKind::Resources, preserved, new_version, stats, &mut dropped);
        self.version = new_version;
        dropped
    }

    fn record_hit(&mut self, kind: AnalysisKind) {
        self.stats.hits += 1;
        self.hit_log.push((kind.name(), self.version));
    }

    /// Resolved (padded) array layouts for the kernel under `bindings`.
    /// Failures are cached too, so a kernel with unresolvable extents is
    /// not re-resolved on every query.
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] from layout resolution.
    pub fn layouts(
        &mut self,
        kernel: &Kernel,
        bindings: &Bindings,
    ) -> Result<Arc<LayoutMap>, LayoutError> {
        if let Some(slot) = &self.layouts {
            if slot.version == self.version {
                let value = slot.value.clone();
                self.record_hit(AnalysisKind::Layouts);
                return value;
            }
        }
        self.stats.misses += 1;
        let started = Instant::now();
        let value = resolve_layouts_padded(kernel, bindings).map(Arc::new);
        self.compute_log.push(("layouts", started, Instant::now()));
        self.layouts = Some(Slot {
            version: self.version,
            value: value.clone(),
        });
        value
    }

    /// The global-access classification (enumeration, affine forms,
    /// coalescing verdicts, G2S/G2R targets).
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] from the underlying layout resolution.
    pub fn accesses(
        &mut self,
        kernel: &Kernel,
        bindings: &Bindings,
    ) -> Result<Arc<Vec<GlobalAccess>>, LayoutError> {
        if let Some(slot) = &self.accesses {
            if slot.version == self.version {
                let value = slot.value.clone();
                self.record_hit(AnalysisKind::Accesses);
                return value;
            }
        }
        let layouts = self.layouts(kernel, bindings);
        self.stats.misses += 1;
        let started = Instant::now();
        let value = layouts.map(|l| Arc::new(collect_accesses(kernel, &l, bindings)));
        self.compute_log.push(("accesses", started, Instant::now()));
        self.accesses = Some(Slot {
            version: self.version,
            value: value.clone(),
        });
        value
    }

    /// The inter-thread data-sharing report for a `block_x` × `block_y`
    /// thread block. Re-queries with different block extents recompute
    /// (and re-key) the entry.
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] from the underlying access analysis.
    pub fn sharing(
        &mut self,
        kernel: &Kernel,
        bindings: &Bindings,
        block_x: i64,
        block_y: i64,
    ) -> Result<Arc<SharingReport>, LayoutError> {
        if let Some(slot) = &self.sharing {
            if slot.version == self.version && slot.value.0 == (block_x, block_y) {
                let value = slot.value.1.clone();
                self.record_hit(AnalysisKind::Sharing);
                return value;
            }
        }
        let accesses = self.accesses(kernel, bindings);
        self.stats.misses += 1;
        let started = Instant::now();
        let value = accesses.map(|a| Arc::new(analyze_sharing(&a, block_x, block_y)));
        self.compute_log.push(("sharing", started, Instant::now()));
        self.sharing = Some(Slot {
            version: self.version,
            value: ((block_x, block_y), value.clone()),
        });
        value
    }

    /// The per-thread register / per-block shared-memory estimate.
    pub fn resources(&mut self, kernel: &Kernel) -> Arc<ResourceEstimate> {
        if let Some(slot) = &self.resources {
            if slot.version == self.version {
                let value = slot.value.clone();
                self.record_hit(AnalysisKind::Resources);
                return value;
            }
        }
        self.stats.misses += 1;
        let started = Instant::now();
        let value = Arc::new(estimate_resources(kernel));
        self.compute_log.push(("resources", started, Instant::now()));
        self.resources = Some(Slot {
            version: self.version,
            value: value.clone(),
        });
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_ast::parse_kernel;

    fn mv() -> (Kernel, Bindings) {
        let k = parse_kernel(
            "__global__ void mv(float a[n][w], float b[w], float c[n], int n, int w) {
                float sum = 0.0f;
                for (int i = 0; i < w; i = i + 1) { sum += a[idx][i] * b[i]; }
                c[idx] = sum;
            }",
        )
        .unwrap_or_else(|e| panic!("mv parses: {e}"));
        let b: Bindings = [("n".to_string(), 64i64), ("w".to_string(), 64)]
            .into_iter()
            .collect();
        (k, b)
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let (k, b) = mv();
        let mut am = AnalysisManager::new();
        let first = am.accesses(&k, &b).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(am.stats().hits, 0);
        // layouts + accesses both missed on the first query.
        assert_eq!(am.stats().misses, 2);
        let second = am.accesses(&k, &b).unwrap_or_else(|e| panic!("{e}"));
        assert!(Arc::ptr_eq(&first, &second), "second query shares the Arc");
        assert_eq!(am.stats().hits, 1);
        assert_eq!(am.drain_hits(), vec![("accesses", 0)]);
        assert!(am.drain_hits().is_empty(), "drain empties the log");
    }

    #[test]
    fn recomputes_are_logged_with_timing_but_hits_are_not() {
        let (k, b) = mv();
        let mut am = AnalysisManager::new();
        let _ = am.accesses(&k, &b);
        let computed: Vec<&str> = am.drain_computes().iter().map(|(n, _, _)| *n).collect();
        assert_eq!(computed, vec!["layouts", "accesses"]);
        let _ = am.accesses(&k, &b); // cache hit
        assert!(am.drain_computes().is_empty());
        for (_, started, finished) in am.drain_computes() {
            assert!(finished >= started);
        }
    }

    #[test]
    fn sync_invalidates_stale_entries() {
        let (k, b) = mv();
        let mut am = AnalysisManager::new();
        let _ = am.accesses(&k, &b);
        let _ = am.resources(&k);
        let dropped = am.sync(1);
        assert_eq!(dropped, vec!["layouts", "accesses", "resources"]);
        assert_eq!(am.stats().invalidations, 3);
        // Re-query recomputes at the new version.
        let _ = am.resources(&k);
        assert_eq!(am.stats().misses, 4);
    }

    #[test]
    fn preserved_analyses_survive_a_version_bump() {
        let (k, b) = mv();
        let mut am = AnalysisManager::new();
        let before = am.resources(&k);
        let _ = am.layouts(&k, &b);
        let dropped = am.retain_preserved(
            AnalysisSet::none().with(AnalysisKind::Resources),
            7,
        );
        assert_eq!(dropped, vec!["layouts"]);
        let after = am.resources(&k);
        assert!(Arc::ptr_eq(&before, &after), "preserved entry revalidated");
        assert_eq!(am.version(), 7);
    }

    #[test]
    fn sharing_is_keyed_by_block_geometry() {
        let (k, b) = mv();
        let mut am = AnalysisManager::new();
        let _ = am.sharing(&k, &b, 16, 1);
        let _ = am.drain_hits();
        let _ = am.sharing(&k, &b, 16, 16); // different block: recompute
        assert!(
            !am.drain_hits().iter().any(|(a, _)| *a == "sharing"),
            "geometry change is a sharing miss (accesses may still hit)"
        );
        let _ = am.sharing(&k, &b, 16, 16);
        assert!(am.drain_hits().iter().any(|(a, _)| *a == "sharing"));
    }

    #[test]
    fn analysis_set_algebra() {
        let s = AnalysisSet::none().with(AnalysisKind::Layouts);
        assert!(s.contains(AnalysisKind::Layouts));
        assert!(!s.contains(AnalysisKind::Sharing));
        assert!(AnalysisKind::ALL
            .iter()
            .all(|&k| AnalysisSet::all().contains(k)));
        assert_eq!(AnalysisKind::Accesses.name(), "accesses");
    }

    #[test]
    fn cloned_managers_share_cached_results() {
        let (k, b) = mv();
        let mut am = AnalysisManager::new();
        let base = am.layouts(&k, &b).unwrap_or_else(|e| panic!("{e}"));
        let mut branch = am.clone();
        let branched = branch.layouts(&k, &b).unwrap_or_else(|e| panic!("{e}"));
        assert!(Arc::ptr_eq(&base, &branched));
        assert_eq!(branch.stats().hits, 1);
        // The original is untouched by the branch's bookkeeping.
        assert_eq!(am.stats().hits, 0);
    }
}
