//! Affine (linear) forms over thread coordinates and loop variables.
//!
//! Every analyzable array index is an integer-linear combination of the
//! predefined builtins (`idx`, `tidx`, `bidx`, …), enclosing-loop variables,
//! and a constant. Indices that cannot be put in this shape are *unresolved*
//! (paper §3.2, index type 4) and are skipped by the optimizer.

use gpgpu_ast::{BinOp, Builtin, Expr, UnOp};
use std::collections::BTreeMap;
use std::fmt;

/// A symbol an affine form may range over.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sym {
    /// A predefined thread-coordinate builtin.
    Builtin(Builtin),
    /// A loop variable (or other symbolic integer kept abstract).
    Var(String),
}

impl Sym {
    /// Shorthand for a loop-variable symbol.
    pub fn var(name: impl Into<String>) -> Sym {
        Sym::Var(name.into())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Builtin(b) => f.write_str(b.shorthand()),
            Sym::Var(v) => f.write_str(v),
        }
    }
}

/// An affine form `Σ coeffᵢ·symᵢ + constant` with integer coefficients.
///
/// Zero-coefficient terms are never stored, so equality is structural.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Affine {
    terms: BTreeMap<Sym, i64>,
    constant: i64,
}

impl Affine {
    /// The constant form `c`.
    pub fn constant(c: i64) -> Affine {
        Affine {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The form `1·sym`.
    pub fn sym(sym: Sym) -> Affine {
        let mut terms = BTreeMap::new();
        terms.insert(sym, 1);
        Affine { terms, constant: 0 }
    }

    /// The form `1·builtin`.
    pub fn builtin(b: Builtin) -> Affine {
        Affine::sym(Sym::Builtin(b))
    }

    /// The constant part.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `sym` (zero if absent).
    pub fn coeff(&self, sym: &Sym) -> i64 {
        self.terms.get(sym).copied().unwrap_or(0)
    }

    /// The coefficient of a builtin symbol.
    pub fn coeff_builtin(&self, b: Builtin) -> i64 {
        self.coeff(&Sym::Builtin(b))
    }

    /// Iterates over the non-zero `(symbol, coefficient)` terms.
    pub fn iter(&self) -> impl Iterator<Item = (&Sym, i64)> {
        self.terms.iter().map(|(s, c)| (s, *c))
    }

    /// True when the form is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value, if the form is constant.
    pub fn as_constant(&self) -> Option<i64> {
        self.is_constant().then_some(self.constant)
    }

    /// True if the form mentions `sym`.
    pub fn depends_on(&self, sym: &Sym) -> bool {
        self.terms.contains_key(sym)
    }

    /// True if the form mentions the builtin.
    pub fn depends_on_builtin(&self, b: Builtin) -> bool {
        self.depends_on(&Sym::Builtin(b))
    }

    /// True if the form mentions any loop variable (non-builtin symbol).
    pub fn depends_on_any_var(&self) -> bool {
        self.terms.keys().any(|s| matches!(s, Sym::Var(_)))
    }

    /// Sum of two forms.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.constant += other.constant;
        for (s, c) in &other.terms {
            add_term(&mut out.terms, s.clone(), *c);
        }
        out
    }

    /// Difference of two forms.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    /// The form multiplied by an integer.
    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::constant(0);
        }
        Affine {
            terms: self.terms.iter().map(|(s, c)| (s.clone(), c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Product of two forms, defined when at least one side is constant.
    pub fn mul(&self, other: &Affine) -> Option<Affine> {
        if let Some(k) = other.as_constant() {
            return Some(self.scale(k));
        }
        if let Some(k) = self.as_constant() {
            return Some(other.scale(k));
        }
        None
    }

    /// Exact division by a positive constant, defined when every coefficient
    /// and the constant are divisible.
    pub fn div_exact(&self, k: i64) -> Option<Affine> {
        if k == 0 {
            return None;
        }
        if self.constant % k != 0 || self.terms.values().any(|c| c % k != 0) {
            return None;
        }
        Some(Affine {
            terms: self.terms.iter().map(|(s, c)| (s.clone(), c / k)).collect(),
            constant: self.constant / k,
        })
    }

    /// Substitutes `sym := replacement` and renormalizes.
    pub fn subst(&self, sym: &Sym, replacement: &Affine) -> Affine {
        let mut out = Affine::constant(self.constant);
        for (s, c) in &self.terms {
            if s == sym {
                out = out.add(&replacement.scale(*c));
            } else {
                add_term(&mut out.terms, s.clone(), *c);
            }
        }
        out
    }

    /// Evaluates the form with `lookup` supplying every symbol's value.
    ///
    /// Returns `None` if some symbol is unbound.
    pub fn eval(&self, lookup: &dyn Fn(&Sym) -> Option<i64>) -> Option<i64> {
        let mut acc = self.constant;
        for (s, c) in &self.terms {
            acc += c * lookup(s)?;
        }
        Some(acc)
    }

    /// Expands the absolute ids: `idx := bidx·bdimx + tidx`,
    /// `idy := bidy·bdimy + tidy`.
    ///
    /// After expansion the form ranges only over block ids, intra-block ids,
    /// and loop variables — the shape the coalescing and partition analyses
    /// work with.
    pub fn expand_ids(&self, bdimx: i64, bdimy: i64) -> Affine {
        let idx_repl = Affine::builtin(Builtin::BidX)
            .scale(bdimx)
            .add(&Affine::builtin(Builtin::TidX));
        let idy_repl = Affine::builtin(Builtin::BidY)
            .scale(bdimy)
            .add(&Affine::builtin(Builtin::TidY));
        self.subst(&Sym::Builtin(Builtin::IdX), &idx_repl)
            .subst(&Sym::Builtin(Builtin::IdY), &idy_repl)
    }

    /// Converts an expression to affine form.
    ///
    /// `resolve_var` maps scalar names to either a concrete value
    /// (`Some(v)`, e.g. a bound size parameter) or `None` to keep the name
    /// symbolic (e.g. a loop variable). Expressions outside the affine
    /// fragment — division with remainder, products of symbols, array loads,
    /// calls — yield `None`.
    pub fn from_expr(e: &Expr, resolve_var: &dyn Fn(&str) -> Option<i64>) -> Option<Affine> {
        match e {
            Expr::Int(v) => Some(Affine::constant(*v)),
            Expr::Float(_) => None,
            Expr::Var(name) => Some(match resolve_var(name) {
                Some(v) => Affine::constant(v),
                None => Affine::sym(Sym::var(name.clone())),
            }),
            Expr::Builtin(b) => Some(Affine::builtin(*b)),
            Expr::Unary(UnOp::Neg, inner) => {
                Some(Affine::from_expr(inner, resolve_var)?.scale(-1))
            }
            Expr::Unary(UnOp::Not, _) => None,
            Expr::Binary(op, l, r) => {
                let l = Affine::from_expr(l, resolve_var);
                let r = Affine::from_expr(r, resolve_var);
                match op {
                    BinOp::Add => Some(l?.add(&r?)),
                    BinOp::Sub => Some(l?.sub(&r?)),
                    BinOp::Mul => l?.mul(&r?),
                    BinOp::Div => {
                        let k = r?.as_constant()?;
                        l?.div_exact(k)
                    }
                    BinOp::Shl => {
                        let k = r?.as_constant()?;
                        if !(0..=62).contains(&k) {
                            return None;
                        }
                        Some(l?.scale(1 << k))
                    }
                    BinOp::Shr => {
                        let k = r?.as_constant()?;
                        if !(0..=62).contains(&k) {
                            return None;
                        }
                        l?.div_exact(1 << k)
                    }
                    BinOp::Rem => {
                        // Only constant % constant folds.
                        let lk = l?.as_constant()?;
                        let rk = r?.as_constant()?;
                        (rk != 0).then(|| Affine::constant(lk % rk))
                    }
                    _ => None,
                }
            }
            Expr::Cast(_, inner) => Affine::from_expr(inner, resolve_var),
            Expr::Index { .. } | Expr::Field(_, _) | Expr::Call(_, _) | Expr::Select(_, _, _) => {
                None
            }
        }
    }
}

fn add_term(terms: &mut BTreeMap<Sym, i64>, sym: Sym, coeff: i64) {
    use std::collections::btree_map::Entry;
    if coeff == 0 {
        return;
    }
    match terms.entry(sym) {
        Entry::Vacant(v) => {
            v.insert(coeff);
        }
        Entry::Occupied(mut o) => {
            let next = *o.get() + coeff;
            if next == 0 {
                o.remove();
            } else {
                o.insert(next);
            }
        }
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (s, c) in &self.terms {
            if first {
                if *c == 1 {
                    write!(f, "{s}")?;
                } else if *c == -1 {
                    write!(f, "-{s}")?;
                } else {
                    write!(f, "{c}*{s}")?;
                }
                first = false;
            } else if *c >= 0 {
                if *c == 1 {
                    write!(f, " + {s}")?;
                } else {
                    write!(f, " + {c}*{s}")?;
                }
            } else if *c == -1 {
                write!(f, " - {s}")?;
            } else {
                write!(f, " - {}*{s}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_ast::parser::Parser;

    fn affine_of(src: &str) -> Option<Affine> {
        let e = Parser::new(src).unwrap().expr().unwrap();
        Affine::from_expr(&e, &|name| match name {
            "w" => Some(64),
            "n" => Some(128),
            _ => None,
        })
    }

    #[test]
    fn converts_linear_expression() {
        let a = affine_of("2 * idx + i + 5").unwrap();
        assert_eq!(a.coeff_builtin(Builtin::IdX), 2);
        assert_eq!(a.coeff(&Sym::var("i")), 1);
        assert_eq!(a.constant_part(), 5);
    }

    #[test]
    fn binds_size_parameters() {
        let a = affine_of("idy * w + i").unwrap();
        assert_eq!(a.coeff_builtin(Builtin::IdY), 64);
        assert_eq!(a.coeff(&Sym::var("i")), 1);
    }

    #[test]
    fn rejects_products_of_symbols() {
        assert_eq!(affine_of("idx * i"), None);
        assert_eq!(affine_of("idx * idy"), None);
    }

    #[test]
    fn rejects_array_loads_and_calls() {
        assert_eq!(affine_of("a[idx]"), None);
        assert_eq!(affine_of("min(idx, 4)"), None);
    }

    #[test]
    fn shift_left_scales() {
        let a = affine_of("idx << 2").unwrap();
        assert_eq!(a.coeff_builtin(Builtin::IdX), 4);
    }

    #[test]
    fn exact_division_only() {
        let a = affine_of("(4 * idx) / 2").unwrap();
        assert_eq!(a.coeff_builtin(Builtin::IdX), 2);
        assert_eq!(affine_of("idx / 2"), None);
        assert_eq!(affine_of("(4 * idx + 1) / 2"), None);
    }

    #[test]
    fn cancellation_removes_terms() {
        let a = affine_of("idx - idx").unwrap();
        assert!(a.is_constant());
        assert_eq!(a.as_constant(), Some(0));
    }

    #[test]
    fn expand_ids_rewrites_absolute_coordinates() {
        let a = affine_of("idx + 64 * idy").unwrap().expand_ids(16, 4);
        assert_eq!(a.coeff_builtin(Builtin::BidX), 16);
        assert_eq!(a.coeff_builtin(Builtin::TidX), 1);
        assert_eq!(a.coeff_builtin(Builtin::BidY), 256);
        assert_eq!(a.coeff_builtin(Builtin::TidY), 64);
        assert!(!a.depends_on_builtin(Builtin::IdX));
    }

    #[test]
    fn eval_with_bindings() {
        let a = affine_of("2 * idx + i + 5").unwrap();
        let v = a.eval(&|s| match s {
            Sym::Builtin(Builtin::IdX) => Some(10),
            Sym::Var(v) if v == "i" => Some(3),
            _ => None,
        });
        assert_eq!(v, Some(28));
        assert_eq!(a.eval(&|_| None), None);
    }

    #[test]
    fn subst_renormalizes() {
        let a = affine_of("idx + i").unwrap();
        let b = a.subst(&Sym::var("i"), &Affine::builtin(Builtin::IdX).scale(-1));
        assert_eq!(b.as_constant(), Some(0));
    }

    #[test]
    fn display_is_readable() {
        let a = affine_of("2 * idx - i - 5").unwrap();
        assert_eq!(a.to_string(), "2*idx - i - 5");
        assert_eq!(Affine::constant(0).to_string(), "0");
        assert_eq!(affine_of("-idx").unwrap().to_string(), "-idx");
    }

    #[test]
    fn mul_requires_constant_side() {
        let idx = Affine::builtin(Builtin::IdX);
        let c = Affine::constant(3);
        assert_eq!(idx.mul(&c), Some(idx.scale(3)));
        assert_eq!(c.mul(&idx), Some(idx.scale(3)));
        assert_eq!(idx.mul(&idx), None);
    }

    #[test]
    fn rem_folds_constants_only() {
        assert_eq!(affine_of("7 % 3").unwrap().as_constant(), Some(1));
        assert_eq!(affine_of("idx % 3"), None);
    }
}
