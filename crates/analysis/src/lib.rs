#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

//! # gpgpu-analysis
//!
//! Static analyses underlying the GPGPU optimizing compiler:
//!
//! * [`affine`] — linear forms over thread coordinates and loop variables,
//!   the currency in which all address reasoning is done.
//! * [`layout`] — resolved array layouts and index linearization.
//! * [`access`] — enumeration and classification of global-memory accesses
//!   (constant / predefined / loop / unresolved indices, §3.2 of the paper)
//!   and the memory-coalescing checker.
//! * [`sharing`] — inter-thread-block data-sharing detection and the
//!   G2S/G2R classification that drives merge selection (§3.4–3.5).
//! * [`partition`] — partition-camping detection (§3.7).
//! * [`resources`] — per-thread register and per-block shared-memory
//!   estimates used to balance parallelism against reuse (§4).
//! * [`manager`] — the memoizing [`AnalysisManager`] that caches the above
//!   keyed by a kernel version counter, with pass-declared preservation.
//!
//! The analyses are purely symbolic: they never execute the kernel. The
//! compiler binds concrete input sizes before querying them, mirroring the
//! paper's per-input-size compilation model.

pub mod access;
pub mod affine;
pub mod banks;
pub mod layout;
pub mod manager;
pub mod partition;
pub mod resources;
pub mod sharing;

pub use access::{
    check_coalescing, classify_index, collect_accesses, AccessTarget, CoalesceVerdict,
    GlobalAccess, IndexClass, LoopMeta, NonCoalescedReason, HALF_WARP,
};
pub use affine::{Affine, Sym};
pub use banks::{conflict_degree, padding_for, DEFAULT_BANKS};
pub use layout::{
    resolve_layouts, resolve_layouts_padded, ArrayLayout, Bindings, LayoutError,
};
pub use manager::{AnalysisKind, AnalysisManager, AnalysisSet, CacheStats, LayoutMap};
pub use partition::{detect_partition_camping, PartitionGeometry, PartitionReport};
pub use resources::{estimate_resources, ResourceEstimate};
pub use sharing::{analyze_sharing, MergeKind, SharingDirection, SharingReport};
