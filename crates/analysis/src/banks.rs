//! Static shared-memory bank-conflict analysis (paper §2b, §3.3).
//!
//! Shared memory is divided into banks (16 on G80/GT200); a half-warp
//! access serializes when multiple lanes hit *different words in the same
//! bank*. The compiler pads staging tiles (e.g. `[16][17]`) exactly when
//! the unpadded layout would conflict; this module predicts the conflict
//! degree from the affine access form so that decision — and the
//! simulator's dynamic conflict counting — can be validated statically.

use crate::affine::{Affine, Sym};
use gpgpu_ast::Builtin;

/// Number of 32-bit shared-memory banks on G80/GT200.
pub const DEFAULT_BANKS: i64 = 16;

/// Predicts the conflict degree of a half-warp shared-memory access.
///
/// `dims` are the shared array's extents (innermost last, padding
/// included); `indices` the per-dimension affine index forms over the
/// thread builtins (other symbols are evaluated at a representative 0).
/// The result is the maximum number of *distinct words* mapped to one
/// bank — 1 means conflict-free, 16 a fully serialized access.
///
/// Returns `None` when the index count does not match the rank.
pub fn conflict_degree(dims: &[i64], indices: &[Affine], banks: i64) -> Option<i64> {
    if dims.len() != indices.len() || dims.is_empty() {
        return None;
    }
    // Row-major linearization.
    let mut strides = vec![1i64; dims.len()];
    for d in (0..dims.len() - 1).rev() {
        strides[d] = strides[d + 1] * dims[d + 1];
    }
    let word_for_lane = |t: i64| -> i64 {
        let lookup = |s: &Sym| -> Option<i64> {
            match s {
                Sym::Builtin(Builtin::TidX) => Some(t),
                // A half warp shares one tidy row and one loop iteration;
                // zero is representative because only the lane-varying part
                // determines intra-half-warp conflicts.
                _ => Some(0),
            }
        };
        indices
            .iter()
            .zip(&strides)
            .map(|(ix, stride)| ix.eval(&lookup).unwrap_or(0) * stride)
            .sum()
    };
    let mut per_bank: Vec<Vec<i64>> = vec![Vec::new(); banks as usize];
    for t in 0..16 {
        let w = word_for_lane(t);
        let bank = w.rem_euclid(banks) as usize;
        if !per_bank[bank].contains(&w) {
            per_bank[bank].push(w);
        }
    }
    Some(
        per_bank
            .iter()
            .map(|ws| ws.len() as i64)
            .max()
            .unwrap_or(1)
            .max(1),
    )
}

/// The padding (in elements) to add to a tile's innermost dimension so the
/// given access becomes conflict-free: the smallest `p` in `0..=banks/2`
/// that brings [`conflict_degree`] to 1.
///
/// Returns `None` when no small padding fixes the access.
pub fn padding_for(dims: &[i64], indices: &[Affine], banks: i64) -> Option<i64> {
    for pad in 0..=banks / 2 {
        let mut padded = dims.to_vec();
        *padded.last_mut()? += pad;
        if conflict_degree(&padded, indices, banks)? == 1 {
            return Some(pad);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tidx() -> Affine {
        Affine::builtin(Builtin::TidX)
    }

    #[test]
    fn row_access_is_conflict_free() {
        // shared[k][tidx]: lanes hit consecutive banks.
        let d = conflict_degree(&[16, 16], &[Affine::constant(3), tidx()], DEFAULT_BANKS);
        assert_eq!(d, Some(1));
    }

    #[test]
    fn column_access_conflicts_without_padding() {
        // shared[tidx][k] on a [16][16] tile: stride 16 → every lane bank 0.
        let d = conflict_degree(&[16, 16], &[tidx(), Affine::constant(0)], DEFAULT_BANKS);
        assert_eq!(d, Some(16));
    }

    #[test]
    fn padded_tile_fixes_column_access() {
        // The compiler's [16][17] padding: stride 17 is coprime with 16.
        let d = conflict_degree(&[16, 17], &[tidx(), Affine::constant(0)], DEFAULT_BANKS);
        assert_eq!(d, Some(1));
        assert_eq!(
            padding_for(&[16, 16], &[tidx(), Affine::constant(0)], DEFAULT_BANKS),
            Some(1)
        );
    }

    #[test]
    fn broadcast_is_free() {
        // All lanes read the same word: hardware broadcasts.
        let d = conflict_degree(
            &[16],
            &[Affine::constant(5)],
            DEFAULT_BANKS,
        );
        assert_eq!(d, Some(1));
    }

    #[test]
    fn stride_two_gives_two_way_conflicts() {
        // shared[2·tidx]: lanes 0 and 8 share bank 0 with distinct words.
        let d = conflict_degree(&[32], &[tidx().scale(2)], DEFAULT_BANKS);
        assert_eq!(d, Some(2));
        // Padding cannot fix a strided one-dimensional walk.
        assert_eq!(padding_for(&[32], &[tidx().scale(2)], DEFAULT_BANKS), None);
    }

    #[test]
    fn already_free_needs_no_padding() {
        assert_eq!(
            padding_for(&[16, 16], &[Affine::constant(0), tidx()], DEFAULT_BANKS),
            Some(0)
        );
    }

    #[test]
    fn rank_mismatch_rejected() {
        assert_eq!(conflict_degree(&[16, 16], &[tidx()], DEFAULT_BANKS), None);
    }
}
