//! Resolved array layouts and index linearization.

use crate::affine::Affine;
use gpgpu_ast::{Kernel, ScalarType};
use std::collections::HashMap;
use std::fmt;

/// Concrete size bindings for a kernel's symbolic dimensions, e.g.
/// `{"n": 2048, "w": 2048}`.
pub type Bindings = HashMap<String, i64>;

/// Error resolving array layouts against bindings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A dimension of `array` references a size with no binding.
    UnboundDim {
        /// The array whose extent is unresolved.
        array: String,
        /// The unbound symbol.
        symbol: String,
    },
    /// An array was declared with a non-positive extent.
    NonPositiveDim {
        /// The offending array.
        array: String,
        /// The resolved extent.
        value: i64,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::UnboundDim { array, symbol } => {
                write!(f, "array `{array}` has unbound dimension `{symbol}`")
            }
            LayoutError::NonPositiveDim { array, value } => {
                write!(f, "array `{array}` has non-positive extent {value}")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A global array with fully resolved extents, in row-major order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayLayout {
    /// Array name.
    pub name: String,
    /// Element type.
    pub elem: ScalarType,
    /// Logical extents, outermost first.
    pub dims: Vec<i64>,
    /// Allocated extent of the innermost dimension (≥ `dims.last()`); the
    /// compiler pads rows to a multiple of 16 words to enable coalescing
    /// (paper §3.3: "padding to input data arrays").
    pub row_pitch: i64,
}

impl ArrayLayout {
    /// Creates an unpadded layout.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty.
    pub fn new(name: impl Into<String>, elem: ScalarType, dims: Vec<i64>) -> ArrayLayout {
        assert!(!dims.is_empty(), "arrays have at least one dimension");
        let row_pitch = *dims.last().unwrap_or(&1);
        ArrayLayout {
            name: name.into(),
            elem,
            dims,
            row_pitch,
        }
    }

    /// Returns the layout with the innermost dimension padded up to a
    /// multiple of `multiple` elements.
    pub fn padded_to(mut self, multiple: i64) -> ArrayLayout {
        let last = self.row_len();
        self.row_pitch = (last + multiple - 1) / multiple * multiple;
        self
    }

    /// True if the row pitch differs from the logical row length.
    pub fn is_padded(&self) -> bool {
        self.row_pitch != self.row_len()
    }

    /// Logical length of the innermost dimension (`dims` is never empty;
    /// the constructor asserts it).
    fn row_len(&self) -> i64 {
        self.dims.last().copied().unwrap_or(1)
    }

    /// Number of *allocated* elements (including padding).
    pub fn alloc_elems(&self) -> i64 {
        self.dims[..self.dims.len() - 1].iter().product::<i64>() * self.row_pitch
    }

    /// Number of *logical* elements.
    pub fn logical_elems(&self) -> i64 {
        self.dims.iter().product()
    }

    /// Element stride of dimension `d` (row-major, padding included).
    pub fn stride(&self, d: usize) -> i64 {
        let mut s = self.row_pitch;
        if d == self.dims.len() - 1 {
            return 1;
        }
        for extent in self.dims[d + 1..self.dims.len() - 1].iter() {
            s *= extent;
        }
        s
    }

    /// Linearizes per-dimension affine indices into one element-offset form.
    ///
    /// Returns `None` if the number of indices does not match the number of
    /// dimensions.
    pub fn linearize(&self, indices: &[Affine]) -> Option<Affine> {
        if indices.len() != self.dims.len() {
            return None;
        }
        let mut addr = Affine::constant(0);
        for (d, ix) in indices.iter().enumerate() {
            addr = addr.add(&ix.scale(self.stride(d)));
        }
        Some(addr)
    }

    /// Linearizes concrete per-dimension indices.
    ///
    /// # Panics
    ///
    /// Panics if `indices.len() != dims.len()`.
    pub fn linearize_concrete(&self, indices: &[i64]) -> i64 {
        assert_eq!(indices.len(), self.dims.len());
        indices
            .iter()
            .enumerate()
            .map(|(d, ix)| ix * self.stride(d))
            .sum()
    }
}

/// Resolves the layouts of every array parameter of `kernel` against
/// `bindings` (plus the kernel's own `size` pragmas).
///
/// # Errors
///
/// Returns [`LayoutError`] when a dimension is unbound or non-positive.
pub fn resolve_layouts(
    kernel: &Kernel,
    bindings: &Bindings,
) -> Result<HashMap<String, ArrayLayout>, LayoutError> {
    let mut out = HashMap::new();
    for p in kernel.array_params() {
        let dims =
            kernel
                .resolve_dims(&p.name, bindings)
                .ok_or_else(|| LayoutError::UnboundDim {
                    array: p.name.clone(),
                    symbol: p
                        .dims
                        .iter()
                        .find_map(|d| match d {
                            gpgpu_ast::Dim::Sym(s)
                                if !bindings.contains_key(s)
                                    && !kernel.pragma_sizes().contains_key(s) =>
                            {
                                Some(s.clone())
                            }
                            _ => None,
                        })
                        .unwrap_or_default(),
                })?;
        if let Some(&bad) = dims.iter().find(|&&v| v <= 0) {
            return Err(LayoutError::NonPositiveDim {
                array: p.name.clone(),
                value: bad,
            });
        }
        out.insert(p.name.clone(), ArrayLayout::new(&p.name, p.ty, dims));
    }
    Ok(out)
}

/// Like [`resolve_layouts`], but pads every row to a multiple of 16 words —
/// the alignment the compiler establishes before coalescing analysis (paper
/// §3.3: "padding to input data arrays to ensure that the row size of each
/// array is a multiple of 16 words").
///
/// # Errors
///
/// Same as [`resolve_layouts`].
pub fn resolve_layouts_padded(
    kernel: &Kernel,
    bindings: &Bindings,
) -> Result<HashMap<String, ArrayLayout>, LayoutError> {
    let mut layouts = resolve_layouts(kernel, bindings)?;
    for layout in layouts.values_mut() {
        *layout = layout.clone().padded_to(16);
    }
    Ok(layouts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Sym;
    use gpgpu_ast::parse_kernel;

    fn layout_2d() -> ArrayLayout {
        ArrayLayout::new("a", ScalarType::Float, vec![128, 100])
    }

    #[test]
    fn strides_row_major() {
        let a = ArrayLayout::new("a", ScalarType::Float, vec![4, 5, 6]);
        assert_eq!(a.stride(2), 1);
        assert_eq!(a.stride(1), 6);
        assert_eq!(a.stride(0), 30);
        assert_eq!(a.linearize_concrete(&[1, 2, 3]), 30 + 12 + 3);
    }

    #[test]
    fn padding_changes_pitch_and_strides() {
        let a = layout_2d().padded_to(16);
        assert!(a.is_padded());
        assert_eq!(a.row_pitch, 112);
        assert_eq!(a.stride(0), 112);
        assert_eq!(a.alloc_elems(), 128 * 112);
        assert_eq!(a.logical_elems(), 128 * 100);
    }

    #[test]
    fn padding_noop_when_aligned() {
        let a = ArrayLayout::new("a", ScalarType::Float, vec![128, 128]).padded_to(16);
        assert!(!a.is_padded());
        assert_eq!(a.row_pitch, 128);
    }

    #[test]
    fn linearize_affine_indices() {
        let a = layout_2d().padded_to(16);
        let idx = Affine::builtin(gpgpu_ast::Builtin::IdX);
        let i = Affine::sym(Sym::var("i"));
        let addr = a.linearize(&[idx.clone(), i.clone()]).unwrap();
        assert_eq!(addr.coeff_builtin(gpgpu_ast::Builtin::IdX), 112);
        assert_eq!(addr.coeff(&Sym::var("i")), 1);
        assert!(a.linearize(&[idx]).is_none());
    }

    #[test]
    fn resolve_layouts_from_kernel() {
        let k = parse_kernel(
            "__global__ void f(float a[n][w], float b[w], int n, int w) { b[idx] = a[idy][idx]; }",
        )
        .unwrap();
        let mut bindings = Bindings::new();
        bindings.insert("n".into(), 64);
        bindings.insert("w".into(), 32);
        let layouts = resolve_layouts(&k, &bindings).unwrap();
        assert_eq!(layouts["a"].dims, vec![64, 32]);
        assert_eq!(layouts["b"].dims, vec![32]);
    }

    #[test]
    fn resolve_layouts_reports_unbound() {
        let k = parse_kernel(
            "__global__ void f(float a[n][w], int n, int w) { a[idy][idx] = 0.0f; }",
        )
        .unwrap();
        let mut bindings = Bindings::new();
        bindings.insert("n".into(), 64);
        let err = resolve_layouts(&k, &bindings).unwrap_err();
        assert_eq!(
            err,
            LayoutError::UnboundDim {
                array: "a".into(),
                symbol: "w".into()
            }
        );
    }

    #[test]
    fn resolve_layouts_rejects_nonpositive() {
        let k = parse_kernel("__global__ void f(float a[n], int n) { a[idx] = 0.0f; }").unwrap();
        let mut bindings = Bindings::new();
        bindings.insert("n".into(), 0);
        assert!(matches!(
            resolve_layouts(&k, &bindings),
            Err(LayoutError::NonPositiveDim { .. })
        ));
    }

    #[test]
    fn resolve_layouts_uses_pragma_sizes() {
        let k = parse_kernel(
            "#pragma gpgpu size n=256\n__global__ void f(float a[n], int n) { a[idx] = 0.0f; }",
        )
        .unwrap();
        let layouts = resolve_layouts(&k, &Bindings::new()).unwrap();
        assert_eq!(layouts["a"].dims, vec![256]);
    }
}
