//! Analytic timing model, in the spirit of the Hong–Kim model the paper
//! cites for design-space exploration.
//!
//! The model is **trace-driven**: a handful of consecutive thread blocks are
//! executed by the functional interpreter against *phantom* buffers (address
//! computation only), yielding exact per-block transaction, instruction,
//! bank-conflict and partition statistics. Those are extrapolated to the
//! full launch and combined with an occupancy computation into three
//! bounds — compute throughput, memory bandwidth (degraded by partition
//! imbalance and element-width efficiency), and latency exposure (how much
//! of the round-trip latency the resident warps cannot hide). The kernel
//! time is the maximum of the three plus a fixed launch overhead.
//!
//! Absolute numbers are simulated, not measured; what the model preserves
//! is the *shape* of the paper's results: who wins, by what factor, and
//! where the crossovers fall.

use crate::cost::CostModelKind;
use crate::device::Device;
use crate::exec::{
    launch_with_sink, ExecError, ExecOptions, ExecStats, MemEvent, MemSink, NullSink, VecSink,
};
use crate::machine::MachineDesc;
use crate::mem::HierarchyStats;
use gpgpu_analysis::{estimate_resources, resolve_layouts_padded, Bindings, LayoutError};
use gpgpu_ast::{Kernel, LaunchConfig};
use std::fmt;

/// Blocks the trace executes by default.
pub const DEFAULT_SAMPLE_BLOCKS: usize = 6;

/// Fixed kernel-launch overhead in microseconds.
pub(crate) const LAUNCH_OVERHEAD_US: f64 = 5.0;

/// Extra cycles per bank-conflict serialization step.
pub(crate) const CONFLICT_CYCLES: f64 = 2.0;

/// Cycles for one warp instruction on an 8-SP SM (32 lanes / 8 SPs).
pub(crate) const CYCLES_PER_WARP_INST: f64 = 4.0;

/// Default cap on traced top-level loop iterations.
pub const DEFAULT_MAX_OUTER_ITERS: u64 = 24;

/// Options for [`estimate`].
#[derive(Debug, Clone)]
pub struct PerfOptions {
    /// How many consecutive blocks the trace executes.
    pub sample_blocks: usize,
    /// Cap on traced top-level loop iterations (trip counts beyond the cap
    /// are extrapolated linearly).
    pub max_outer_iters: Option<u64>,
    /// Per-trace fuel budget, forwarded to [`ExecOptions::fuel`]. `None`
    /// uses the interpreter's built-in step limit.
    pub fuel: Option<u64>,
    /// Wall-clock deadline, forwarded to [`ExecOptions::deadline`].
    pub deadline: Option<std::time::Instant>,
    /// Which [`crate::cost::CostModel`] combines the trace into a time.
    pub cost_model: CostModelKind,
    /// Worker threads for the trace's block loop, forwarded to
    /// [`ExecOptions::block_clusters`]. Estimates trace only a handful of
    /// blocks, so the default stays serial; verification-sized launches
    /// benefit.
    pub block_clusters: usize,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            sample_blocks: DEFAULT_SAMPLE_BLOCKS,
            max_outer_iters: Some(DEFAULT_MAX_OUTER_ITERS),
            fuel: None,
            deadline: None,
            cost_model: CostModelKind::Analytic,
            block_clusters: 1,
        }
    }
}

/// Errors raised by the timing model.
#[derive(Debug, Clone, PartialEq)]
pub enum PerfError {
    /// The kernel does not fit the machine at this launch configuration.
    DoesNotFit(String),
    /// Layout resolution failed.
    Layout(LayoutError),
    /// The trace execution failed (a compiler bug surfaced).
    Exec(ExecError),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::DoesNotFit(s) => write!(f, "configuration does not fit: {s}"),
            PerfError::Layout(e) => write!(f, "{e}"),
            PerfError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PerfError {}

impl From<LayoutError> for PerfError {
    fn from(e: LayoutError) -> Self {
        PerfError::Layout(e)
    }
}

impl From<ExecError> for PerfError {
    fn from(e: ExecError) -> Self {
        PerfError::Exec(e)
    }
}

/// The timing model's verdict for one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEstimate {
    /// Estimated execution time in milliseconds.
    pub time_ms: f64,
    /// Achieved GFLOPS (flops traced / time).
    pub gflops: f64,
    /// Effective bandwidth in GB/s (useful bytes / time).
    pub effective_bandwidth_gbps: f64,
    /// Thread blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Warps resident per SM.
    pub active_warps: u32,
    /// Compute-bound component (cycles).
    pub compute_cycles: f64,
    /// Bandwidth-bound component (cycles).
    pub memory_cycles: f64,
    /// Latency-exposure component (cycles).
    pub latency_cycles: f64,
    /// Partition imbalance factor applied to the memory component.
    pub partition_imbalance: f64,
    /// Fraction of moved bytes the kernel actually used.
    pub coalescing_efficiency: f64,
    /// Wall-clock microseconds spent in the phantom-trace phase (the
    /// sampled interpreter run). Zero when the caller assembled the
    /// estimate from pre-scaled stats via [`finish`].
    pub trace_micros: u64,
    /// Wall-clock microseconds spent in the occupancy + analytical-model
    /// phase.
    pub model_micros: u64,
    /// Per-level hierarchy counters, present when the estimate came from
    /// the `hierarchy` cost model.
    pub hierarchy: Option<HierarchyStats>,
    /// Scaled whole-launch trace statistics.
    pub stats: ExecStats,
}

impl PerfEstimate {
    /// Flattens the estimate plus its [`ExecStats`] into one ordered
    /// counter snapshot for the metrics registry. Counter names are part
    /// of the `gpgpu-trace/v1` schema.
    pub fn counter_snapshot(&self) -> gpgpu_trace::CounterSnapshot {
        let mut s = gpgpu_trace::CounterSnapshot::new();
        s.push("time_ms", self.time_ms);
        s.push("gflops", self.gflops);
        s.push("bandwidth_gbps", self.effective_bandwidth_gbps);
        s.push("blocks_per_sm", self.blocks_per_sm as f64);
        s.push("active_warps", self.active_warps as f64);
        s.push("compute_cycles", self.compute_cycles);
        s.push("memory_cycles", self.memory_cycles);
        s.push("latency_cycles", self.latency_cycles);
        s.push("partition_imbalance", self.partition_imbalance);
        s.push("coalescing_efficiency", self.coalescing_efficiency);
        s.push("blocks_executed", self.stats.blocks_executed as f64);
        s.push("total_blocks", self.stats.total_blocks as f64);
        s.push("warp_insts", self.stats.warp_insts as f64);
        s.push("flops", self.stats.flops as f64);
        s.push("global_transactions", self.stats.global_transactions as f64);
        s.push("global_bytes", self.stats.global_bytes as f64);
        s.push("useful_bytes", self.stats.useful_bytes as f64);
        s.push("gmem_requests", self.stats.gmem_requests as f64);
        s.push("shared_accesses", self.stats.shared_accesses as f64);
        s.push(
            "shared_conflict_cycles",
            self.stats.shared_conflict_cycles as f64,
        );
        s.push("loop_truncation", self.stats.loop_truncation);
        s.push("gsync_crossings", self.stats.gsync_crossings as f64);
        if let Some(h) = &self.hierarchy {
            s.push("l1_hits", h.l1_hits as f64);
            s.push("l1_misses", h.l1_misses as f64);
            s.push("l1_hit_rate", h.l1_hit_rate());
            s.push("l2_hits", h.l2_hits as f64);
            s.push("l2_misses", h.l2_misses as f64);
            s.push("l2_hit_rate", h.l2_hit_rate());
            s.push("mshr_merges", h.mshr_merges as f64);
            s.push("partition_queue_peak", h.partition_queue_peak as f64);
            s.push("dram_bytes", h.dram_bytes as f64);
        }
        s
    }

    /// The bounding component's name, for reports.
    pub fn bound_by(&self) -> &'static str {
        let m = self
            .compute_cycles
            .max(self.memory_cycles)
            .max(self.latency_cycles);
        if m == self.memory_cycles {
            "memory bandwidth"
        } else if m == self.compute_cycles {
            "compute"
        } else {
            "memory latency"
        }
    }
}

/// Estimates the execution time of one kernel launch on `machine`.
///
/// # Errors
///
/// Returns [`PerfError::DoesNotFit`] when the per-block footprint exceeds
/// the machine (the design-space explorer uses this to prune), or
/// propagates trace failures.
pub fn estimate(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    bindings: &Bindings,
    machine: &MachineDesc,
    opts: &PerfOptions,
) -> Result<PerfEstimate, PerfError> {
    let resources = estimate_resources(kernel);
    let layouts = resolve_layouts_padded(kernel, bindings)?;
    estimate_prepared(kernel, cfg, bindings, machine, opts, &resources, &layouts)
}

/// Occupancy and fit checks shared by [`estimate`] and
/// [`estimate_prepared`]: registers and shared memory against the machine
/// limits, then resident blocks per SM.
pub(crate) fn occupancy(
    resources: &gpgpu_analysis::ResourceEstimate,
    machine: &MachineDesc,
    cfg: &LaunchConfig,
) -> Result<u32, PerfError> {
    if resources.registers_per_thread > machine.max_regs_per_thread {
        return Err(PerfError::DoesNotFit(format!(
            "{} registers per thread exceeds {}",
            resources.registers_per_thread, machine.max_regs_per_thread
        )));
    }
    if resources.shared_bytes_per_block > machine.shared_per_sm as u64 {
        return Err(PerfError::DoesNotFit(format!(
            "{} shared bytes per block exceeds {}",
            resources.shared_bytes_per_block, machine.shared_per_sm
        )));
    }
    let tpb = cfg.threads_per_block();
    let blocks_per_sm = machine.blocks_per_sm(
        tpb,
        resources.registers_per_thread,
        resources.shared_bytes_per_block,
    );
    if blocks_per_sm == 0 {
        return Err(PerfError::DoesNotFit(format!(
            "no block of {tpb} threads fits an SM"
        )));
    }
    Ok(blocks_per_sm)
}

/// [`estimate`] for callers that already hold the resource estimate and
/// resolved layouts — the design-space explorer reuses the analysis
/// manager's memoized results instead of recomputing them per candidate.
///
/// # Errors
///
/// Same contract as [`estimate`].
pub fn estimate_prepared(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    bindings: &Bindings,
    machine: &MachineDesc,
    opts: &PerfOptions,
    resources: &gpgpu_analysis::ResourceEstimate,
    layouts: &gpgpu_analysis::LayoutMap,
) -> Result<PerfEstimate, PerfError> {
    opts.cost_model
        .model()
        .estimate_prepared(kernel, cfg, bindings, machine, opts, resources, layouts)
}

/// A sampled phantom trace, scaled to the full launch, shared by every
/// [`crate::cost::CostModel`].
pub(crate) struct SampledTrace {
    /// Whole-launch (scaled) statistics.
    pub stats: ExecStats,
    /// Extrapolation factor applied (block sampling × loop truncation).
    pub factor: f64,
    /// Resident blocks per SM from the occupancy computation.
    pub blocks_per_sm: u32,
    /// Wall-clock microseconds in the interpreter.
    pub trace_micros: u64,
    /// Wall-clock microseconds in the occupancy computation.
    pub occupancy_micros: u64,
    /// Raw (unscaled) transaction stream; empty unless requested.
    pub events: Vec<MemEvent>,
}

/// Runs the occupancy check and the phantom-buffer trace, optionally
/// collecting the [`MemEvent`] stream for trace-driven models.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sample_trace(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    bindings: &Bindings,
    machine: &MachineDesc,
    opts: &PerfOptions,
    resources: &gpgpu_analysis::ResourceEstimate,
    layouts: &gpgpu_analysis::LayoutMap,
    collect_events: bool,
) -> Result<SampledTrace, PerfError> {
    let model_started = std::time::Instant::now();
    let blocks_per_sm = occupancy(resources, machine, cfg)?;
    let occupancy_micros = model_started.elapsed().as_micros() as u64;

    // Phantom trace over a sample of consecutive blocks.
    let trace_started = std::time::Instant::now();
    let mut device = Device::new(machine.clone());
    for p in kernel.array_params() {
        device.alloc_phantom(layouts[&p.name].clone());
    }
    let exec_opts = ExecOptions {
        sample_blocks: Some(opts.sample_blocks),
        max_outer_iters: opts.max_outer_iters,
        sample_spread: Some(machine.sm_count as u64 * blocks_per_sm as u64),
        fuel: opts.fuel,
        deadline: opts.deadline,
        block_clusters: opts.block_clusters,
        ..ExecOptions::default()
    };
    let mut events = VecSink::default();
    let sink: &mut dyn MemSink = if collect_events {
        &mut events
    } else {
        &mut NullSink
    };
    let stats = launch_with_sink(kernel, cfg, bindings, &mut device, &exec_opts, sink)?;
    let trace_micros = trace_started.elapsed().as_micros() as u64;

    let block_factor = if stats.blocks_executed == 0 {
        1.0
    } else {
        stats.total_blocks as f64 / stats.blocks_executed as f64
    };
    let factor = block_factor * stats.loop_truncation;
    Ok(SampledTrace {
        stats: stats.scaled(factor),
        factor,
        blocks_per_sm,
        trace_micros,
        occupancy_micros,
        events: events.events,
    })
}

/// Combines trace statistics and occupancy into the final estimate. Public
/// so that callers who traced at a reduced problem size can scale the stats
/// themselves (`ExecStats::scaled`) and still get a consistent estimate.
pub fn finish(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    machine: &MachineDesc,
    blocks_per_sm: u32,
    stats: ExecStats,
) -> PerfEstimate {
    let warps_per_block = cfg.threads_per_block().div_ceil(machine.warp_size);
    let active_warps = (blocks_per_sm * warps_per_block).max(1);
    // A launch with fewer blocks than SMs leaves the rest idle.
    let busy_sms = (machine.sm_count as u64).min(cfg.total_blocks()).max(1) as f64;

    // Compute bound: all warp instructions, spread over the busy SMs, plus
    // bank-conflict serialization.
    let compute_cycles = (stats.warp_insts as f64 * CYCLES_PER_WARP_INST
        + stats.shared_conflict_cycles as f64 * CONFLICT_CYCLES)
        / busy_sms;

    // Bandwidth bound: moved bytes over sustained bandwidth, degraded by
    // partition imbalance (camping queues requests on one partition).
    let widest = kernel
        .array_params()
        .map(|p| p.ty.size_bytes())
        .max()
        .unwrap_or(4);
    let imbalance = stats.partition_imbalance();
    let memory_cycles =
        stats.global_bytes as f64 / machine.bytes_per_cycle(widest) * imbalance;

    // Latency bound: each half-warp request keeps its warp waiting; the
    // resident warps hide each other's latency.
    let requests_per_sm = stats.gmem_requests as f64 / busy_sms;
    let latency_cycles =
        requests_per_sm * machine.mem_latency_cycles / f64::from(active_warps.min(32));

    let cycles = compute_cycles
        .max(memory_cycles)
        .max(latency_cycles)
        .max(1.0);
    // Each grid-wide barrier is a kernel relaunch on real hardware.
    let launches = 1.0 + stats.gsync_crossings as f64;
    let time_ms = cycles / (machine.clock_ghz * 1e9) * 1e3 + launches * LAUNCH_OVERHEAD_US / 1e3;
    let gflops = stats.flops as f64 / (time_ms * 1e-3) / 1e9;
    let effective_bandwidth_gbps = stats.useful_bytes as f64 / (time_ms * 1e-3) / 1e9;

    PerfEstimate {
        time_ms,
        gflops,
        effective_bandwidth_gbps,
        blocks_per_sm,
        active_warps,
        compute_cycles,
        memory_cycles,
        latency_cycles,
        partition_imbalance: imbalance,
        coalescing_efficiency: stats.coalescing_efficiency(),
        trace_micros: 0,
        model_micros: 0,
        hierarchy: None,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_ast::parse_kernel;

    fn binds(pairs: &[(&str, i64)]) -> Bindings {
        pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    const NAIVE_MM: &str = r#"
        __global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
            float sum = 0.0f;
            for (int i = 0; i < w; i = i + 1) { sum += a[idy][i] * b[i][idx]; }
            c[idy][idx] = sum;
        }
    "#;

    #[test]
    fn naive_mm_is_memory_bound_and_wasteful() {
        let k = parse_kernel(NAIVE_MM).unwrap();
        let b = binds(&[("n", 512), ("w", 512)]);
        let cfg = LaunchConfig {
            grid_x: 32,
            grid_y: 512,
            block_x: 16,
            block_y: 1,
        };
        let est = estimate(&k, &cfg, &b, &MachineDesc::gtx280(), &PerfOptions::default()).unwrap();
        // The a[idy][i] broadcast wastes 7/8 of each 32-byte line.
        assert!(est.coalescing_efficiency < 0.8, "{est:?}");
        assert!(est.gflops > 0.0);
        assert!(est.time_ms > 0.0);
    }

    #[test]
    fn coalesced_mm_beats_naive() {
        let naive = parse_kernel(NAIVE_MM).unwrap();
        let coalesced = parse_kernel(
            r#"__global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
                float sum = 0.0f;
                for (int i = 0; i < w; i = i + 16) {
                    __shared__ float shared0[16];
                    shared0[tidx] = a[idy][i + tidx];
                    __syncthreads();
                    for (int k = 0; k < 16; k = k + 1) {
                        sum += shared0[k] * b[i + k][idx];
                    }
                    __syncthreads();
                }
                c[idy][idx] = sum;
            }"#,
        )
        .unwrap();
        let b = binds(&[("n", 512), ("w", 512)]);
        let cfg = LaunchConfig {
            grid_x: 32,
            grid_y: 512,
            block_x: 16,
            block_y: 1,
        };
        let m = MachineDesc::gtx280();
        let t_naive = estimate(&naive, &cfg, &b, &m, &PerfOptions::default()).unwrap();
        let t_coal = estimate(&coalesced, &cfg, &b, &m, &PerfOptions::default()).unwrap();
        assert!(
            t_coal.time_ms < t_naive.time_ms,
            "coalesced {:?} vs naive {:?}",
            t_coal.time_ms,
            t_naive.time_ms
        );
        assert!(t_coal.coalescing_efficiency > t_naive.coalescing_efficiency);
    }

    #[test]
    fn oversized_blocks_rejected() {
        let k = parse_kernel(NAIVE_MM).unwrap();
        let b = binds(&[("n", 512), ("w", 512)]);
        let cfg = LaunchConfig {
            grid_x: 1,
            grid_y: 1,
            block_x: 1024,
            block_y: 1,
        };
        assert!(matches!(
            estimate(&k, &cfg, &b, &MachineDesc::gtx280(), &PerfOptions::default()),
            Err(PerfError::DoesNotFit(_))
        ));
    }

    #[test]
    fn shared_overflow_rejected() {
        let k = parse_kernel(
            "__global__ void f(float a[n], int n) {
                __shared__ float s0[5000];
                s0[tidx] = a[idx];
                __syncthreads();
                a[idx] = s0[tidx];
            }",
        )
        .unwrap();
        let b = binds(&[("n", 1024)]);
        let cfg = LaunchConfig::one_d(64, 16);
        assert!(matches!(
            estimate(&k, &cfg, &b, &MachineDesc::gtx280(), &PerfOptions::default()),
            Err(PerfError::DoesNotFit(_))
        ));
    }

    #[test]
    fn partition_camping_slows_the_kernel() {
        // Row-walk mv at 4096 camps on GTX 280 (power-of-two resonance)
        // but not at 4096+64 rows... compare imbalance factors directly.
        let k = parse_kernel(
            "__global__ void mv(float a[n][w], float b[w], float c[n], int n, int w) {
                float s = 0.0f;
                for (int i = 0; i < w; i = i + 1) { s += a[idx][i] * b[i]; }
                c[idx] = s;
            }",
        )
        .unwrap();
        let m = MachineDesc::gtx280();
        let cfg = LaunchConfig::one_d(64, 16);
        let camped = estimate(
            &k,
            &cfg,
            &binds(&[("n", 1024), ("w", 4096)]),
            &m,
            &PerfOptions::default(),
        )
        .unwrap();
        let spread = estimate(
            &k,
            &cfg,
            &binds(&[("n", 1024), ("w", 4096 + 64)]),
            &m,
            &PerfOptions::default(),
        )
        .unwrap();
        assert!(
            camped.partition_imbalance > spread.partition_imbalance,
            "camped {} vs spread {}",
            camped.partition_imbalance,
            spread.partition_imbalance
        );
    }

    #[test]
    fn more_parallelism_hides_latency() {
        let k = parse_kernel(
            "__global__ void cp(float a[n][n], float c[n][n], int n) {
                c[idy][idx] = a[idy][idx];
            }",
        )
        .unwrap();
        let b = binds(&[("n", 1024)]);
        let m = MachineDesc::gtx280();
        let small = LaunchConfig {
            grid_x: 64,
            grid_y: 1024,
            block_x: 16,
            block_y: 1,
        };
        let big = LaunchConfig {
            grid_x: 8,
            grid_y: 1024,
            block_x: 128,
            block_y: 1,
        };
        let t16 = estimate(&k, &small, &b, &m, &PerfOptions::default()).unwrap();
        let t128 = estimate(&k, &big, &b, &m, &PerfOptions::default()).unwrap();
        assert!(t128.active_warps > t16.active_warps);
        assert!(t128.latency_cycles < t16.latency_cycles);
    }

    #[test]
    fn bound_by_reports_dominant_component() {
        let est = PerfEstimate {
            time_ms: 1.0,
            gflops: 1.0,
            effective_bandwidth_gbps: 1.0,
            blocks_per_sm: 1,
            active_warps: 8,
            compute_cycles: 10.0,
            memory_cycles: 100.0,
            latency_cycles: 50.0,
            partition_imbalance: 1.0,
            coalescing_efficiency: 1.0,
            trace_micros: 0,
            model_micros: 0,
            hierarchy: None,
            stats: ExecStats::default(),
        };
        assert_eq!(est.bound_by(), "memory bandwidth");
    }
}
