//! Trace-driven memory-hierarchy model: per-SM L1 caches with MSHR-style
//! miss coalescing, shared L2 slices over the machine's memory partitions,
//! and per-partition queue backpressure.
//!
//! The functional interpreter streams [`MemEvent`]s (one per 32-byte line
//! of every traced half-warp access) into a [`HierarchySim`], which is a
//! [`MemSink`]. Replay produces [`HierarchyStats`]: hit/miss/merge counts
//! per level, DRAM traffic, per-partition busy cycles (the hottest
//! partition bounds the memory component — camping backpressure emerges
//! from the geometry instead of being a correction factor), and the peak
//! partition-queue depth over a reorder window.
//!
//! Cache geometry is fixed per machine class (GT200-scale defaults) rather
//! than a [`MachineDesc`] field: the paper's machines have no general L1/L2
//! for global memory, so this subsystem models the *reuse-visible* variant
//! of each machine used by the `hierarchy` cost model, and the descriptors
//! stay bit-identical for the analytic model and all existing tests.

pub mod addrdec;
pub mod cache;
pub mod mshr;

pub use addrdec::{AddrDec, DecodedAddr, LINE_BYTES};
pub use cache::SetAssocCache;
pub use mshr::MshrTable;

use crate::exec::{MemEvent, MemSink};
use crate::machine::MachineDesc;
use std::collections::VecDeque;

/// Cache/queue geometry for the hierarchy simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyConfig {
    /// L1 sets per SM (16 KB, 4-way, 32-byte lines → 128 sets).
    pub l1_sets: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 sets per partition slice (128 KB, 8-way → 512 sets).
    pub l2_sets: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// MSHR entries per SM.
    pub mshr_entries: usize,
    /// Ticks an outstanding fill stays mergeable.
    pub mshr_window: u64,
    /// Reorder window (in ticks) for partition-queue depth, matching the
    /// analytic model's 64-request window.
    pub queue_window: u64,
    /// How much cheaper an L2 hit is than a DRAM access (bandwidth ratio).
    pub l2_hit_boost: f64,
}

impl HierarchyConfig {
    /// The geometry used for `machine`. One GT200-scale configuration
    /// serves all three descriptors today; per-machine overrides slot in
    /// here when a machine gains a measured hierarchy.
    pub fn for_machine(_machine: &MachineDesc) -> HierarchyConfig {
        HierarchyConfig {
            l1_sets: 128,
            l1_ways: 4,
            l2_sets: 512,
            l2_ways: 8,
            mshr_entries: 32,
            mshr_window: 8,
            queue_window: 64,
            l2_hit_boost: 4.0,
        }
    }
}

/// Counters produced by replaying a transaction stream through the
/// hierarchy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierarchyStats {
    /// Read transactions served by an L1.
    pub l1_hits: u64,
    /// Read transactions that missed their L1 (merges included).
    pub l1_misses: u64,
    /// L1 misses merged into an outstanding fill (no downstream traffic).
    pub mshr_merges: u64,
    /// Transactions served by an L2 slice.
    pub l2_hits: u64,
    /// Transactions that fell through to DRAM.
    pub l2_misses: u64,
    /// Bytes actually moved from DRAM.
    pub dram_bytes: u64,
    /// Peak partition-queue depth over the reorder window (intensive:
    /// camping shows up as one deep queue).
    pub partition_queue_peak: u64,
    /// Service cycles accumulated per partition; the hottest partition
    /// bounds the memory component.
    pub partition_busy_cycles: Vec<f64>,
}

impl HierarchyStats {
    /// The memory-bound component: busy cycles of the hottest partition.
    pub fn memory_cycles(&self) -> f64 {
        self.partition_busy_cycles
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }

    /// Ratio of the hottest partition's busy cycles to the average
    /// (1.0 = even; approaches the partition count under full camping).
    pub fn busy_imbalance(&self) -> f64 {
        let n = self.partition_busy_cycles.len();
        if n == 0 {
            return 1.0;
        }
        let total: f64 = self.partition_busy_cycles.iter().sum();
        if total == 0.0 {
            return 1.0;
        }
        self.memory_cycles() / (total / n as f64)
    }

    /// Fraction of read transactions an L1 served.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            1.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Fraction of L2 lookups that hit.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            1.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Scales the extensive counters by `factor` (extrapolating a sampled
    /// trace to the full launch). Queue peak is intensive and unchanged.
    pub fn scaled(&self, factor: f64) -> HierarchyStats {
        let s = |v: u64| (v as f64 * factor).round() as u64;
        HierarchyStats {
            l1_hits: s(self.l1_hits),
            l1_misses: s(self.l1_misses),
            mshr_merges: s(self.mshr_merges),
            l2_hits: s(self.l2_hits),
            l2_misses: s(self.l2_misses),
            dram_bytes: s(self.dram_bytes),
            partition_queue_peak: self.partition_queue_peak,
            partition_busy_cycles: self
                .partition_busy_cycles
                .iter()
                .map(|&c| c * factor)
                .collect(),
        }
    }
}

/// Replays a [`MemEvent`] stream through L1s, MSHRs, L2 slices, and
/// partition queues. Implements [`MemSink`], so it can consume a launch's
/// stream directly.
#[derive(Debug)]
pub struct HierarchySim {
    dec: AddrDec,
    l1: Vec<SetAssocCache>,
    mshr: Vec<MshrTable>,
    l2: Vec<SetAssocCache>,
    queues: Vec<VecDeque<u64>>,
    /// DRAM service cycles per 32-byte line for this machine/element width.
    dram_cycles_per_line: f64,
    l2_hit_boost: f64,
    queue_window: u64,
    stats: HierarchyStats,
}

impl HierarchySim {
    /// Creates a simulator for `machine`, with bandwidth efficiency taken
    /// at `elem_bytes` (the kernel's widest element, as in the analytic
    /// model).
    pub fn new(machine: &MachineDesc, elem_bytes: u32) -> HierarchySim {
        let cfg = HierarchyConfig::for_machine(machine);
        let nparts = machine.partitions.count.max(1) as usize;
        let sms = machine.sm_count.max(1) as usize;
        // Aggregate sustained bandwidth splits evenly over the partitions;
        // a partition serves one line in 32 / (bytes-per-cycle / nparts).
        let per_partition = (machine.bytes_per_cycle(elem_bytes) / nparts as f64).max(1e-9);
        HierarchySim {
            dec: AddrDec::new(cfg.l1_sets, cfg.l2_sets, machine.partitions),
            l1: vec![SetAssocCache::new(cfg.l1_sets, cfg.l1_ways); sms],
            mshr: vec![MshrTable::new(cfg.mshr_entries, cfg.mshr_window); sms],
            l2: vec![SetAssocCache::new(cfg.l2_sets, cfg.l2_ways); nparts],
            queues: vec![VecDeque::new(); nparts],
            dram_cycles_per_line: LINE_BYTES as f64 / per_partition,
            l2_hit_boost: cfg.l2_hit_boost,
            queue_window: cfg.queue_window,
            stats: HierarchyStats {
                partition_busy_cycles: vec![0.0; nparts],
                ..HierarchyStats::default()
            },
        }
    }

    /// Replays a buffered stream and returns the counters.
    pub fn replay(mut self, events: &[MemEvent]) -> HierarchyStats {
        for &ev in events {
            self.record(ev);
        }
        self.into_stats()
    }

    /// Finishes the simulation, yielding the counters.
    pub fn into_stats(self) -> HierarchyStats {
        self.stats
    }

    fn access_l2(&mut self, partition: usize, l2_set: usize, line: i64, tick: u64) {
        if let Some(q) = self.queues.get_mut(partition) {
            // Keep only requests inside the reorder window; ticks restart
            // per block, so "future" entries from a previous block expire.
            while let Some(&t) = q.front() {
                if t + self.queue_window <= tick || t > tick {
                    q.pop_front();
                } else {
                    break;
                }
            }
            q.push_back(tick);
            self.stats.partition_queue_peak =
                self.stats.partition_queue_peak.max(q.len() as u64);
        }
        let hit = self
            .l2
            .get_mut(partition)
            .map(|c| c.access(l2_set, line))
            .unwrap_or(false);
        let cycles = if hit {
            self.stats.l2_hits += 1;
            self.dram_cycles_per_line / self.l2_hit_boost
        } else {
            self.stats.l2_misses += 1;
            self.stats.dram_bytes += LINE_BYTES as u64;
            self.dram_cycles_per_line
        };
        if let Some(busy) = self.stats.partition_busy_cycles.get_mut(partition) {
            *busy += cycles;
        }
    }
}

impl MemSink for HierarchySim {
    fn record(&mut self, ev: MemEvent) {
        let d = self.dec.decode(ev.line);
        if !ev.write {
            let sm = ev.sm as usize % self.l1.len().max(1);
            // A fill in flight for this line means the request merges: it
            // piggybacks on the outstanding miss instead of hitting the
            // (not yet filled) L1 or refetching.
            let in_flight = self
                .mshr
                .get_mut(sm)
                .map(|m| m.lookup(ev.line, ev.tick))
                .unwrap_or(false);
            if in_flight {
                self.stats.l1_misses += 1;
                self.stats.mshr_merges += 1;
                return;
            }
            let l1_hit = self
                .l1
                .get_mut(sm)
                .map(|c| c.access(d.l1_set, ev.line))
                .unwrap_or(false);
            if l1_hit {
                self.stats.l1_hits += 1;
                return;
            }
            self.stats.l1_misses += 1;
            if let Some(m) = self.mshr.get_mut(sm) {
                m.insert(ev.line, ev.tick);
            }
        }
        // Writes are write-through/no-allocate: they skip the L1 but still
        // occupy the partition and may hit lines resident in the slice.
        self.access_l2(d.partition, d.l2_set, d.line, ev.tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(line: i64, sm: u32, tick: u64) -> MemEvent {
        MemEvent {
            line,
            write: false,
            sm,
            tick,
        }
    }

    #[test]
    fn rereads_hit_in_l1_once_the_fill_lands() {
        let sim = HierarchySim::new(&MachineDesc::gtx280(), 4);
        // Ticks 20 and 40 are past the fill window, so these are hits.
        let stats = sim.replay(&[ev(0, 0, 0), ev(0, 0, 20), ev(0, 0, 40)]);
        assert_eq!(stats.l1_misses, 1);
        assert_eq!(stats.l1_hits, 2);
        assert_eq!(stats.mshr_merges, 0);
        assert_eq!(stats.l2_misses, 1, "only the cold miss reaches DRAM");
        assert_eq!(stats.dram_bytes, 32);
    }

    #[test]
    fn l1s_are_private_per_sm() {
        let sim = HierarchySim::new(&MachineDesc::gtx280(), 4);
        let stats = sim.replay(&[ev(0, 0, 0), ev(0, 1, 0)]);
        assert_eq!(stats.l1_hits, 0, "different SMs do not share an L1");
        // The second SM's miss still hits in the shared L2 slice.
        assert_eq!(stats.l2_hits, 1);
        assert_eq!(stats.l2_misses, 1);
    }

    #[test]
    fn concurrent_same_line_misses_merge_in_mshr() {
        let sim = HierarchySim::new(&MachineDesc::gtx280(), 4);
        // Re-touch while the fill is still in flight (tick 2 < window 8):
        // the request merges — no L1 hit, no new DRAM traffic.
        let stats = sim.replay(&[ev(0, 0, 0), ev(0, 0, 2), ev(0, 0, 20)]);
        assert_eq!(stats.mshr_merges, 1, "{stats:?}");
        assert_eq!(stats.l1_hits, 1, "post-fill re-touch hits the L1");
        assert_eq!(stats.l2_misses, 1);
        assert_eq!(stats.dram_bytes, 32 * stats.l2_misses);
    }

    #[test]
    fn camping_concentrates_busy_cycles_and_queue_depth() {
        let m = MachineDesc::gtx280();
        let period_lines = (m.partitions.width_bytes as i64 / 32) * m.partitions.count as i64;
        // Camped: every line lands in partition 0.
        let camped: Vec<MemEvent> = (0..256)
            .map(|i| ev(i * period_lines, (i % 30) as u32, i as u64))
            .collect();
        // Spread: consecutive chunks rotate partitions.
        let spread: Vec<MemEvent> = (0..256)
            .map(|i| ev(i * (m.partitions.width_bytes as i64 / 32), (i % 30) as u32, i as u64))
            .collect();
        let s_camped = HierarchySim::new(&m, 4).replay(&camped);
        let s_spread = HierarchySim::new(&m, 4).replay(&spread);
        assert!(
            s_camped.busy_imbalance() > 4.0,
            "camped imbalance {}",
            s_camped.busy_imbalance()
        );
        assert!(s_spread.busy_imbalance() < 1.5);
        assert!(s_camped.memory_cycles() > s_spread.memory_cycles() * 3.0);
        assert!(s_camped.partition_queue_peak > s_spread.partition_queue_peak);
    }

    #[test]
    fn writes_bypass_l1_but_use_l2() {
        let sim = HierarchySim::new(&MachineDesc::gtx280(), 4);
        let w = MemEvent {
            line: 0,
            write: true,
            sm: 0,
            tick: 0,
        };
        let stats = sim.replay(&[w, w]);
        assert_eq!(stats.l1_hits + stats.l1_misses, 0);
        assert_eq!(stats.l2_misses, 1);
        assert_eq!(stats.l2_hits, 1, "second store hits the allocated line");
    }

    #[test]
    fn scaled_extrapolates_extensive_counters_only() {
        let sim = HierarchySim::new(&MachineDesc::gtx280(), 4);
        let stats = sim.replay(&[ev(0, 0, 0), ev(8, 0, 1)]);
        let scaled = stats.scaled(10.0);
        assert_eq!(scaled.l1_misses, stats.l1_misses * 10);
        assert_eq!(scaled.dram_bytes, stats.dram_bytes * 10);
        assert_eq!(scaled.partition_queue_peak, stats.partition_queue_peak);
        assert!(
            (scaled.memory_cycles() - stats.memory_cycles() * 10.0).abs() < 1e-9
        );
    }
}
