//! Address decoder: maps a 32-byte line index to its L1 set, its memory
//! partition, and its set within that partition's L2 slice.
//!
//! The partition mapping follows the machine's [`PartitionGeometry`]
//! (consecutive `width_bytes` chunks rotate round-robin over the
//! partitions, paper §2). Within a partition the L2-slice set index is the
//! *partition-local* line index modulo the set count — the decoder strips
//! the partition-selecting bits so that a camped stride, which pins one
//! partition, still spreads over that slice's sets instead of thrashing a
//! single set.

use gpgpu_analysis::PartitionGeometry;

/// Bytes per memory line / cache line. Matches the 32-byte transaction
/// granularity of the interpreter's coalescing tracer.
pub const LINE_BYTES: i64 = 32;

/// A decoded memory line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    /// The 32-byte line index (identity; kept for tag checks).
    pub line: i64,
    /// Set index in an SM's L1.
    pub l1_set: usize,
    /// Memory partition (equivalently: L2 slice) holding the line.
    pub partition: usize,
    /// Set index within that partition's L2 slice.
    pub l2_set: usize,
}

/// Decodes line indices for a fixed cache/partition geometry.
#[derive(Debug, Clone, Copy)]
pub struct AddrDec {
    l1_sets: usize,
    l2_sets: usize,
    geometry: PartitionGeometry,
}

impl AddrDec {
    /// Creates a decoder. `l1_sets` and `l2_sets` must be nonzero.
    pub fn new(l1_sets: usize, l2_sets: usize, geometry: PartitionGeometry) -> AddrDec {
        AddrDec {
            l1_sets: l1_sets.max(1),
            l2_sets: l2_sets.max(1),
            geometry,
        }
    }

    /// Decodes one 32-byte line index.
    pub fn decode(&self, line: i64) -> DecodedAddr {
        let l1_set = spread_set(line, self.l1_sets);
        let partition = self.geometry.partition_of(line * LINE_BYTES) as usize;
        // Partition-local line index: global address = chunk·period +
        // partition·width + offset; the slice sees chunk·width + offset.
        let width_lines = (self.geometry.width_bytes as i64 / LINE_BYTES).max(1);
        let period_lines = width_lines * self.geometry.count.max(1) as i64;
        let chunk = line.div_euclid(period_lines);
        let offset = line.rem_euclid(width_lines);
        let local = chunk * width_lines + offset;
        let l2_set = spread_set(local, self.l2_sets);
        DecodedAddr {
            line,
            l1_set,
            partition,
            l2_set,
        }
    }
}

/// Set index with tag bits XOR-folded in, as real GPU address decoders
/// hash sets: power-of-two strides (matrix rows of width 2^k) would
/// otherwise land every lane of a half-warp in the same set and thrash it.
fn spread_set(index: i64, sets: usize) -> usize {
    let s = sets.max(1) as i64;
    (index ^ index.div_euclid(s)).rem_euclid(s) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec() -> AddrDec {
        AddrDec::new(128, 512, PartitionGeometry::gtx280())
    }

    #[test]
    fn partitions_rotate_with_the_geometry() {
        let d = dec();
        // width_bytes = 256 → 8 lines per partition chunk on GT200.
        for line in 0..8 {
            assert_eq!(d.decode(line).partition, 0);
        }
        assert_eq!(d.decode(8).partition, 1);
        assert_eq!(d.decode(8 * 8).partition, 0); // full rotation
    }

    #[test]
    fn l1_sets_spread_power_of_two_strides() {
        let d = dec();
        // Low lines keep their identity mapping.
        assert_eq!(d.decode(5).l1_set, 5);
        assert_eq!(d.decode(127).l1_set, 127);
        // Sixteen lanes exactly one set-count apart (a row walk over a
        // 1024-wide float matrix) must NOT collapse into one set.
        let mut sets: Vec<usize> = (0..16).map(|lane| d.decode(lane * 128).l1_set).collect();
        sets.sort_unstable();
        sets.dedup();
        assert_eq!(sets.len(), 16, "{sets:?}");
    }

    #[test]
    fn camped_stride_still_spreads_over_l2_sets() {
        let d = dec();
        // A stride of one full partition period pins partition 0 but must
        // walk distinct L2 sets (camping ≠ single-set thrashing).
        let period_lines = 8 * 8; // width_lines × partitions on GT200
        let decoded: Vec<DecodedAddr> =
            (0..16).map(|i| d.decode(i * period_lines)).collect();
        assert!(decoded.iter().all(|a| a.partition == 0));
        let mut sets: Vec<usize> = decoded.iter().map(|a| a.l2_set).collect();
        sets.dedup();
        assert_eq!(sets.len(), 16, "{sets:?}");
    }

    #[test]
    fn decoding_is_stable_for_negative_guard_values() {
        // Lines are non-negative in practice; the decoder must still not
        // panic or produce out-of-range sets if one slips through.
        let d = dec();
        let a = d.decode(-3);
        assert!(a.l1_set < 128);
        assert!(a.partition < 8);
        assert!(a.l2_set < 512);
    }
}
