//! Miss-status holding registers: merge concurrent misses to the same
//! line into one outstanding fill.
//!
//! Each SM's L1 owns an MSHR table. A read miss probes the table: if the
//! line is already in flight (requested within the last `window` ticks),
//! the request *merges* — it piggybacks on the outstanding fill and
//! generates no new downstream traffic. Ticks are the interpreter's
//! in-block issue indices; every block restarts at zero, so the table also
//! expires entries whose tick lies in the future (a new block began).

use std::collections::VecDeque;

/// An MSHR table with a fixed number of entries and a fill window.
#[derive(Debug, Clone)]
pub struct MshrTable {
    /// Outstanding fills as `(line, issue_tick)`, oldest first.
    entries: VecDeque<(i64, u64)>,
    capacity: usize,
    window: u64,
}

impl MshrTable {
    /// Creates a table with `capacity` entries whose fills retire `window`
    /// ticks after issue.
    pub fn new(capacity: usize, window: u64) -> MshrTable {
        MshrTable {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            window,
        }
    }

    /// Whether a fill for `line` is outstanding at `tick` — i.e. a request
    /// now would *merge* instead of refetching. Retires completed fills
    /// (and stale entries from a previous block whose ticks lie in the
    /// future) as a side effect.
    pub fn lookup(&mut self, line: i64, tick: u64) -> bool {
        while let Some(&(_, issued)) = self.entries.front() {
            if issued + self.window <= tick || issued > tick {
                self.entries.pop_front();
            } else {
                break;
            }
        }
        self.entries.iter().any(|&(l, _)| l == line)
    }

    /// Allocates an entry for a miss on `line` issued at `tick`, evicting
    /// the oldest entry when full.
    pub fn insert(&mut self, line: i64, tick: u64) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((line, tick));
    }

    /// Entries currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_within_window_merges() {
        let mut m = MshrTable::new(8, 8);
        assert!(!m.lookup(42, 0));
        m.insert(42, 0);
        assert!(m.lookup(42, 3), "second miss inside the window merges");
        assert!(!m.lookup(7, 3));
    }

    #[test]
    fn fills_retire_after_the_window() {
        let mut m = MshrTable::new(8, 8);
        m.insert(42, 0);
        assert!(!m.lookup(42, 8), "fill completed; this is a fresh miss");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut m = MshrTable::new(2, 100);
        m.insert(1, 0);
        m.insert(2, 1);
        m.insert(3, 2); // evicts line 1
        assert_eq!(m.outstanding(), 2);
        assert!(!m.lookup(1, 3), "evicted entry cannot merge");
        assert!(m.lookup(2, 3));
    }

    #[test]
    fn new_block_tick_reset_expires_stale_entries() {
        let mut m = MshrTable::new(8, 8);
        m.insert(42, 100);
        // Next block restarts ticks at zero: the old entry must not merge.
        assert!(!m.lookup(42, 0));
    }
}
