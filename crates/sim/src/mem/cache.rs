//! A set-associative cache with true-LRU replacement, keyed by line index.
//!
//! Used for both the per-SM L1s and the per-partition L2 slices. Tags are
//! whole line indices (no bit slicing needed — the address decoder already
//! assigns the set), which keeps the model trivially correct for any
//! geometry.

/// A set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// `sets[s]` holds the resident lines of set `s`, most recently used
    /// first. Length is at most `ways`.
    sets: Vec<Vec<i64>>,
    ways: usize,
}

impl SetAssocCache {
    /// Creates an empty cache with `sets` sets of `ways` ways.
    pub fn new(sets: usize, ways: usize) -> SetAssocCache {
        SetAssocCache {
            sets: vec![Vec::new(); sets.max(1)],
            ways: ways.max(1),
        }
    }

    /// Looks up `line` in `set`, allocating it on miss (LRU eviction).
    /// Returns whether the access hit.
    pub fn access(&mut self, set: usize, line: i64) -> bool {
        let ways = self.ways;
        let slot = match self.sets.get_mut(set) {
            Some(s) => s,
            None => return false,
        };
        if let Some(pos) = slot.iter().position(|&l| l == line) {
            // Move to MRU position.
            slot.remove(pos);
            slot.insert(0, line);
            return true;
        }
        if slot.len() == ways {
            slot.pop();
        }
        slot.insert(0, line);
        false
    }

    /// Number of lines currently resident (across all sets).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_after_cold_miss() {
        let mut c = SetAssocCache::new(4, 2);
        assert!(!c.access(0, 10));
        assert!(c.access(0, 10));
        assert!(c.access(0, 10));
    }

    #[test]
    fn lru_evicts_the_coldest_way() {
        let mut c = SetAssocCache::new(1, 2);
        c.access(0, 1);
        c.access(0, 2);
        assert!(c.access(0, 1)); // 1 becomes MRU; LRU is now 2
        c.access(0, 3); // evicts 2
        assert!(c.access(0, 1));
        assert!(!c.access(0, 2), "2 should have been evicted");
    }

    #[test]
    fn sets_are_independent() {
        let mut c = SetAssocCache::new(2, 1);
        c.access(0, 1);
        c.access(1, 2);
        assert!(c.access(0, 1));
        assert!(c.access(1, 2));
        assert_eq!(c.resident_lines(), 2);
    }
}
