//! Cost-model abstraction: the timing stack behind a trait, with two
//! implementations.
//!
//! [`AnalyticModel`] is the original MWP/CWP-style combine
//! ([`crate::timing`]): three closed-form bounds over the sampled trace
//! statistics. [`HierarchyModel`] replays the interpreter's per-line
//! transaction stream ([`crate::exec::MemEvent`]) through the
//! [`crate::mem`] subsystem — per-SM L1s with MSHR merging, L2 slices over
//! the memory partitions — so reuse, merge, and queueing effects the
//! analytic model cannot see shape the memory and latency bounds.
//!
//! Both models must reproduce the paper's *shapes* (fig10 occupancy ridge,
//! fig11 winner orderings, camping crossovers); `gpgpuc validate` and
//! `tests/model_validation.rs` gate that property in CI.

use crate::exec::ExecStats;
use crate::machine::MachineDesc;
use crate::mem::{HierarchySim, HierarchyStats};
use crate::timing::{
    finish, sample_trace, PerfError, PerfEstimate, PerfOptions, CONFLICT_CYCLES,
    CYCLES_PER_WARP_INST, LAUNCH_OVERHEAD_US,
};
use gpgpu_analysis::Bindings;
use gpgpu_ast::{Kernel, LaunchConfig};
use std::fmt;

/// Which cost model scores candidates. Selected by `--cost-model` on the
/// CLI and `CompileOptions::cost_model` in the library; part of compile
/// cache fingerprints, so artifacts tuned under one model are never served
/// to the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CostModelKind {
    /// Closed-form MWP/CWP-style combine over sampled trace statistics.
    #[default]
    Analytic,
    /// Trace-driven L1/MSHR/L2/partition-queue simulation.
    Hierarchy,
}

impl CostModelKind {
    /// Every selectable model, for CLIs and validation sweeps.
    pub const ALL: [CostModelKind; 2] = [CostModelKind::Analytic, CostModelKind::Hierarchy];

    /// Stable identifier: `"analytic"` or `"hierarchy"`. Part of the trace
    /// schema and cache fingerprint.
    pub fn as_str(self) -> &'static str {
        match self {
            CostModelKind::Analytic => "analytic",
            CostModelKind::Hierarchy => "hierarchy",
        }
    }

    /// Parses an identifier (case-insensitive).
    pub fn parse(s: &str) -> Option<CostModelKind> {
        match s.to_ascii_lowercase().as_str() {
            "analytic" => Some(CostModelKind::Analytic),
            "hierarchy" => Some(CostModelKind::Hierarchy),
            _ => None,
        }
    }

    /// The model implementation for this kind.
    pub fn model(self) -> &'static dyn CostModel {
        match self {
            CostModelKind::Analytic => &AnalyticModel,
            CostModelKind::Hierarchy => &HierarchyModel,
        }
    }
}

impl fmt::Display for CostModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for CostModelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CostModelKind::parse(s)
            .ok_or_else(|| format!("unknown cost model `{s}` (expected analytic|hierarchy)"))
    }
}

/// A kernel-launch timing model.
///
/// Implementations share the phantom-buffer trace sampling
/// (`sample_trace` in the timing module) and differ in how they combine
/// the observations into the three cycle bounds.
pub trait CostModel: Send + Sync {
    /// The identifier this model answers to.
    fn kind(&self) -> CostModelKind;

    /// Estimates one launch from a pre-computed resource estimate and
    /// layout map (the design-space explorer's memoized analyses).
    ///
    /// # Errors
    ///
    /// [`PerfError::DoesNotFit`] when the launch exceeds the machine, or a
    /// propagated trace failure.
    #[allow(clippy::too_many_arguments)]
    fn estimate_prepared(
        &self,
        kernel: &Kernel,
        cfg: &LaunchConfig,
        bindings: &Bindings,
        machine: &MachineDesc,
        opts: &PerfOptions,
        resources: &gpgpu_analysis::ResourceEstimate,
        layouts: &gpgpu_analysis::LayoutMap,
    ) -> Result<PerfEstimate, PerfError>;

    /// Combines externally scaled trace statistics into an estimate — the
    /// shrunk-trace path for `__gsync` mega-kernels, where the caller
    /// traced a reduced problem size and scaled the counters itself.
    fn finish_scaled(
        &self,
        kernel: &Kernel,
        cfg: &LaunchConfig,
        machine: &MachineDesc,
        blocks_per_sm: u32,
        stats: ExecStats,
    ) -> PerfEstimate;
}

/// The original closed-form model (paper-era behaviour; the default).
pub struct AnalyticModel;

impl CostModel for AnalyticModel {
    fn kind(&self) -> CostModelKind {
        CostModelKind::Analytic
    }

    fn estimate_prepared(
        &self,
        kernel: &Kernel,
        cfg: &LaunchConfig,
        bindings: &Bindings,
        machine: &MachineDesc,
        opts: &PerfOptions,
        resources: &gpgpu_analysis::ResourceEstimate,
        layouts: &gpgpu_analysis::LayoutMap,
    ) -> Result<PerfEstimate, PerfError> {
        let t = sample_trace(kernel, cfg, bindings, machine, opts, resources, layouts, false)?;
        let started = std::time::Instant::now();
        let mut est = finish(kernel, cfg, machine, t.blocks_per_sm, t.stats);
        est.trace_micros = t.trace_micros;
        est.model_micros = t.occupancy_micros + started.elapsed().as_micros() as u64;
        Ok(est)
    }

    fn finish_scaled(
        &self,
        kernel: &Kernel,
        cfg: &LaunchConfig,
        machine: &MachineDesc,
        blocks_per_sm: u32,
        stats: ExecStats,
    ) -> PerfEstimate {
        finish(kernel, cfg, machine, blocks_per_sm, stats)
    }
}

/// The trace-driven memory-hierarchy model.
pub struct HierarchyModel;

impl CostModel for HierarchyModel {
    fn kind(&self) -> CostModelKind {
        CostModelKind::Hierarchy
    }

    fn estimate_prepared(
        &self,
        kernel: &Kernel,
        cfg: &LaunchConfig,
        bindings: &Bindings,
        machine: &MachineDesc,
        opts: &PerfOptions,
        resources: &gpgpu_analysis::ResourceEstimate,
        layouts: &gpgpu_analysis::LayoutMap,
    ) -> Result<PerfEstimate, PerfError> {
        let t = sample_trace(kernel, cfg, bindings, machine, opts, resources, layouts, true)?;
        let started = std::time::Instant::now();
        let widest = widest_elem(kernel);
        let hstats = HierarchySim::new(machine, widest)
            .replay(&t.events)
            .scaled(t.factor);
        let mut est = finish_hierarchy(kernel, cfg, machine, t.blocks_per_sm, t.stats, hstats);
        est.trace_micros = t.trace_micros;
        est.model_micros = t.occupancy_micros + started.elapsed().as_micros() as u64;
        Ok(est)
    }

    fn finish_scaled(
        &self,
        kernel: &Kernel,
        cfg: &LaunchConfig,
        machine: &MachineDesc,
        blocks_per_sm: u32,
        stats: ExecStats,
    ) -> PerfEstimate {
        // Externally scaled counters carry no replayable event stream
        // (the shrunk-trace `__gsync` path), so the analytic combine
        // scores these launches under either model; `hierarchy` stays
        // `None` to make the fallback visible in reports.
        finish(kernel, cfg, machine, blocks_per_sm, stats)
    }
}

/// Widest array element in bytes (drives sustained-bandwidth efficiency,
/// as in the analytic model).
fn widest_elem(kernel: &Kernel) -> u32 {
    kernel
        .array_params()
        .map(|p| p.ty.size_bytes())
        .max()
        .unwrap_or(4)
}

/// Combines trace statistics and hierarchy counters into the final
/// estimate. Occupancy and the compute bound match the analytic model;
/// the memory bound is the hottest partition's busy cycles (camping
/// backpressure emerges from the address decoding instead of being a
/// correction factor), and latency exposure is scaled by the L1 miss
/// fraction with L2 hits charged half the round trip.
pub fn finish_hierarchy(
    _kernel: &Kernel,
    cfg: &LaunchConfig,
    machine: &MachineDesc,
    blocks_per_sm: u32,
    stats: ExecStats,
    hstats: HierarchyStats,
) -> PerfEstimate {
    let warps_per_block = cfg.threads_per_block().div_ceil(machine.warp_size);
    let active_warps = (blocks_per_sm * warps_per_block).max(1);
    let busy_sms = (machine.sm_count as u64).min(cfg.total_blocks()).max(1) as f64;

    let compute_cycles = (stats.warp_insts as f64 * CYCLES_PER_WARP_INST
        + stats.shared_conflict_cycles as f64 * CONFLICT_CYCLES)
        / busy_sms;

    let memory_cycles = hstats.memory_cycles();

    // Latency bound: only L1 misses expose the round trip; L2 hits expose
    // roughly half of it.
    let miss_frac = 1.0 - hstats.l1_hit_rate();
    let l2_frac = hstats.l2_hit_rate();
    let effective_latency = machine.mem_latency_cycles * ((1.0 - l2_frac) + 0.5 * l2_frac);
    let requests_per_sm = stats.gmem_requests as f64 / busy_sms;
    let latency_cycles =
        requests_per_sm * miss_frac * effective_latency / f64::from(active_warps.min(32));

    let cycles = compute_cycles
        .max(memory_cycles)
        .max(latency_cycles)
        .max(1.0);
    let launches = 1.0 + stats.gsync_crossings as f64;
    let time_ms = cycles / (machine.clock_ghz * 1e9) * 1e3 + launches * LAUNCH_OVERHEAD_US / 1e3;
    let gflops = stats.flops as f64 / (time_ms * 1e-3) / 1e9;
    let effective_bandwidth_gbps = stats.useful_bytes as f64 / (time_ms * 1e-3) / 1e9;

    PerfEstimate {
        time_ms,
        gflops,
        effective_bandwidth_gbps,
        blocks_per_sm,
        active_warps,
        compute_cycles,
        memory_cycles,
        latency_cycles,
        partition_imbalance: hstats.busy_imbalance(),
        coalescing_efficiency: stats.coalescing_efficiency(),
        trace_micros: 0,
        model_micros: 0,
        hierarchy: Some(hstats),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_analysis::{estimate_resources, resolve_layouts_padded};
    use gpgpu_ast::parse_kernel;

    fn binds(pairs: &[(&str, i64)]) -> Bindings {
        pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn kind_round_trips_through_strings() {
        for kind in CostModelKind::ALL {
            assert_eq!(CostModelKind::parse(kind.as_str()), Some(kind));
            assert_eq!(kind.model().kind(), kind);
        }
        assert_eq!(CostModelKind::parse("ANALYTIC"), Some(CostModelKind::Analytic));
        assert!(CostModelKind::parse("magic").is_none());
        assert!("hierarchy".parse::<CostModelKind>().is_ok());
        assert!("nope".parse::<CostModelKind>().is_err());
    }

    #[test]
    fn hierarchy_model_attaches_counters_and_agrees_on_occupancy() {
        let k = parse_kernel(
            "__global__ void mv(float a[n][w], float b[w], float c[n], int n, int w) {
                float s = 0.0f;
                for (int i = 0; i < w; i = i + 1) { s += a[idx][i] * b[i]; }
                c[idx] = s;
            }",
        )
        .unwrap();
        // w = 24 keeps the traced loop inside the default iteration cap,
        // so the row walk's line reuse is visible to the hierarchy (loop
        // truncation strides traced iterations apart).
        let b = binds(&[("n", 1024), ("w", 24)]);
        let cfg = LaunchConfig::one_d(64, 16);
        let m = MachineDesc::gtx280();
        let resources = estimate_resources(&k);
        let layouts = resolve_layouts_padded(&k, &b).unwrap();
        let analytic = AnalyticModel
            .estimate_prepared(
                &k,
                &cfg,
                &b,
                &m,
                &PerfOptions::default(),
                &resources,
                &layouts,
            )
            .unwrap();
        let hier = HierarchyModel
            .estimate_prepared(
                &k,
                &cfg,
                &b,
                &m,
                &PerfOptions {
                    cost_model: CostModelKind::Hierarchy,
                    ..PerfOptions::default()
                },
                &resources,
                &layouts,
            )
            .unwrap();
        assert!(analytic.hierarchy.is_none());
        let h = hier.hierarchy.as_ref().expect("hierarchy counters");
        assert!(h.l1_hits > 0, "row walk rereads lines: {h:?}");
        assert_eq!(hier.blocks_per_sm, analytic.blocks_per_sm);
        assert_eq!(hier.active_warps, analytic.active_warps);
        assert!(hier.time_ms > 0.0);
        // The b[i] stream is shared by every lane and block — the
        // hierarchy sees that reuse, the analytic model cannot, so the
        // hierarchy's memory bound must not exceed the analytic one.
        assert!(hier.memory_cycles <= analytic.memory_cycles * 1.01);
    }

    #[test]
    fn camping_crossover_reproduces_under_hierarchy() {
        let k = parse_kernel(
            "__global__ void mv(float a[n][w], float b[w], float c[n], int n, int w) {
                float s = 0.0f;
                for (int i = 0; i < w; i = i + 1) { s += a[idx][i] * b[i]; }
                c[idx] = s;
            }",
        )
        .unwrap();
        let m = MachineDesc::gtx280();
        let cfg = LaunchConfig::one_d(64, 16);
        let opts = PerfOptions {
            cost_model: CostModelKind::Hierarchy,
            ..PerfOptions::default()
        };
        let run = |w: i64| {
            let b = binds(&[("n", 1024), ("w", w)]);
            let resources = estimate_resources(&k);
            let layouts = resolve_layouts_padded(&k, &b).unwrap();
            HierarchyModel
                .estimate_prepared(&k, &cfg, &b, &m, &opts, &resources, &layouts)
                .unwrap()
        };
        let camped = run(4096);
        let spread = run(4096 + 64);
        assert!(
            camped.partition_imbalance > spread.partition_imbalance,
            "camped {} vs spread {}",
            camped.partition_imbalance,
            spread.partition_imbalance
        );
    }
}
