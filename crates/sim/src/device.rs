//! Simulated device memory: global buffers with padded layouts.

use crate::machine::MachineDesc;
use crate::value::Val;
use gpgpu_analysis::ArrayLayout;
use std::collections::HashMap;
use std::fmt;

/// Errors raised by device-memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// An access used an array name with no allocated buffer.
    UnknownBuffer(String),
    /// An access fell outside the array's logical extents.
    OutOfBounds {
        /// Array accessed.
        array: String,
        /// Offending per-dimension indices.
        indices: Vec<i64>,
    },
    /// Wrong number of indices for the array's rank.
    RankMismatch {
        /// Array accessed.
        array: String,
        /// Indices supplied.
        got: usize,
        /// Rank expected.
        expected: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::UnknownBuffer(a) => write!(f, "unknown buffer `{a}`"),
            DeviceError::OutOfBounds { array, indices } => {
                write!(f, "out-of-bounds access {array}{indices:?}")
            }
            DeviceError::RankMismatch {
                array,
                got,
                expected,
            } => write!(f, "{array}: {got} indices for rank-{expected} array"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// One global-memory allocation.
#[derive(Debug, Clone)]
pub struct Buffer {
    /// Resolved (padded) layout.
    pub layout: ArrayLayout,
    /// Backing storage, one `f32` per 32-bit lane; empty in phantom mode.
    pub data: Vec<f32>,
    /// Byte address of the first element in the simulated address space.
    pub base_addr: i64,
    phantom: bool,
    /// Per-element initialization shadow (uploads and writes mark cells);
    /// empty in phantom mode. The sanitizer reads it; maintenance is
    /// always on because it is a handful of bit flips per access.
    shadow: Vec<bool>,
}

impl Buffer {
    /// Bytes the buffer occupies (padding included).
    pub fn size_bytes(&self) -> i64 {
        self.layout.alloc_elems() * self.layout.elem.size_bytes() as i64
    }

    /// Element offset (in elements, padding-aware) of a multi-dim index,
    /// bounds-checked against the logical extents.
    pub fn elem_offset(&self, indices: &[i64]) -> Result<i64, DeviceError> {
        if indices.len() != self.layout.dims.len() {
            return Err(DeviceError::RankMismatch {
                array: self.layout.name.clone(),
                got: indices.len(),
                expected: self.layout.dims.len(),
            });
        }
        for (d, (&ix, &extent)) in indices.iter().zip(&self.layout.dims).enumerate() {
            // The innermost dimension may use the padded pitch (the compiler
            // pads allocations); higher dims are strict.
            let limit = if d == indices.len() - 1 {
                self.layout.row_pitch
            } else {
                extent
            };
            if ix < 0 || ix >= limit {
                return Err(DeviceError::OutOfBounds {
                    array: self.layout.name.clone(),
                    indices: indices.to_vec(),
                });
            }
        }
        Ok(self.layout.linearize_concrete(indices))
    }

    /// Byte address of an element offset.
    pub fn byte_addr(&self, elem_offset: i64) -> i64 {
        self.base_addr + elem_offset * self.layout.elem.size_bytes() as i64
    }

    /// Reads the element at `indices`.
    pub fn read(&self, indices: &[i64]) -> Result<Val, DeviceError> {
        let off = self.elem_offset(indices)?;
        if self.phantom {
            return Ok(Val::zero(self.layout.elem));
        }
        let lanes = self.layout.elem.lanes() as usize;
        let base = off as usize * lanes;
        Ok(match lanes {
            1 => Val::F(self.data[base]),
            2 => Val::F2([self.data[base], self.data[base + 1]]),
            _ => Val::F4([
                self.data[base],
                self.data[base + 1],
                self.data[base + 2],
                self.data[base + 3],
            ]),
        })
    }

    /// Writes the element at `indices`.
    pub fn write(&mut self, indices: &[i64], v: Val) -> Result<(), DeviceError> {
        let off = self.elem_offset(indices)?;
        if self.phantom {
            return Ok(());
        }
        let lanes = self.layout.elem.lanes() as usize;
        let base = off as usize * lanes;
        for lane in 0..lanes {
            self.data[base + lane] = v.component(lane).unwrap_or(0.0);
        }
        self.shadow[off as usize] = true;
        Ok(())
    }

    /// Uploads a logical row-major `f32` stream (no padding) into the
    /// buffer, respecting row padding.
    ///
    /// # Panics
    ///
    /// Panics if `src` does not hold exactly the logical lane count, or on a
    /// phantom buffer.
    pub fn upload(&mut self, src: &[f32]) {
        assert!(!self.phantom, "cannot upload to a phantom buffer");
        let lanes = self.layout.elem.lanes() as i64;
        assert_eq!(src.len() as i64, self.layout.logical_elems() * lanes);
        // Layouts always have at least one dimension (ArrayLayout::new
        // asserts it); 1 keeps the arithmetic safe regardless.
        let last_dim = self.layout.dims.last().copied().unwrap_or(1);
        let row_len = (last_dim * lanes) as usize;
        let pitch = (self.layout.row_pitch * lanes) as usize;
        let rows = (self.layout.logical_elems() / last_dim) as usize;
        let pitch_elems = self.layout.row_pitch as usize;
        for r in 0..rows {
            self.data[r * pitch..r * pitch + row_len]
                .copy_from_slice(&src[r * row_len..(r + 1) * row_len]);
            self.shadow[r * pitch_elems..r * pitch_elems + last_dim as usize].fill(true);
        }
    }

    /// Marks every cell (padding included) as initialized. Callers that
    /// guarantee defined contents out of band — zero-allocated scratch
    /// buffers, for instance — use this so the sanitizer does not flag
    /// their first reads.
    pub fn mark_all_initialized(&mut self) {
        self.shadow.fill(true);
    }

    /// Whether the cell at an element offset has ever been uploaded or
    /// written. Phantom buffers read as all zeros, hence always
    /// initialized.
    pub fn cell_initialized(&self, elem_offset: i64) -> bool {
        self.phantom
            || self
                .shadow
                .get(elem_offset as usize)
                .copied()
                .unwrap_or(false)
    }

    /// Whether an (in-allocation) index lands in compiler-introduced
    /// padding: inside the row pitch but beyond the logical innermost
    /// extent.
    pub fn is_padding(&self, indices: &[i64]) -> bool {
        match (indices.last(), self.layout.dims.last()) {
            (Some(&ix), Some(&extent)) => ix >= extent && ix < self.layout.row_pitch,
            _ => false,
        }
    }

    /// Folds the writes recorded in `theirs` (a descendant of `snapshot`)
    /// into this buffer: any cell whose bit pattern differs from the
    /// snapshot was written and wins. Used to merge block-cluster devices
    /// after a parallel launch; cells written by several clusters were
    /// inter-block data races in the source program, so "last merged
    /// cluster wins" is as defined as the hardware.
    pub fn merge_writes(&mut self, snapshot: &Buffer, theirs: &Buffer) {
        for (i, (&new, &old)) in theirs.data.iter().zip(&snapshot.data).enumerate() {
            if new.to_bits() != old.to_bits() {
                if let Some(cell) = self.data.get_mut(i) {
                    *cell = new;
                }
            }
        }
        for (i, &init) in theirs.shadow.iter().enumerate() {
            if init {
                if let Some(cell) = self.shadow.get_mut(i) {
                    *cell = true;
                }
            }
        }
    }

    /// Downloads the logical contents as a row-major `f32` stream.
    pub fn download(&self) -> Vec<f32> {
        let lanes = self.layout.elem.lanes() as i64;
        let last_dim = self.layout.dims.last().copied().unwrap_or(1);
        let row_len = (last_dim * lanes) as usize;
        let pitch = (self.layout.row_pitch * lanes) as usize;
        let rows = (self.layout.logical_elems() / last_dim) as usize;
        let mut out = Vec::with_capacity(rows * row_len);
        for r in 0..rows {
            out.extend_from_slice(&self.data[r * pitch..r * pitch + row_len]);
        }
        out
    }
}

/// The simulated device: a machine description plus named global buffers.
#[derive(Debug, Clone)]
pub struct Device {
    /// Hardware description (drives the timing model and validation).
    pub machine: MachineDesc,
    buffers: HashMap<String, Buffer>,
    next_base: i64,
}

impl Device {
    /// Creates a device for the given machine.
    pub fn new(machine: MachineDesc) -> Device {
        Device {
            machine,
            buffers: HashMap::new(),
            next_base: 0,
        }
    }

    /// Allocates a zero-initialized buffer.
    pub fn alloc(&mut self, layout: ArrayLayout) -> &mut Buffer {
        self.alloc_inner(layout, false)
    }

    /// Allocates an address-only buffer: reads return zero, writes vanish.
    /// Used by the timing model to trace huge launches without the memory.
    pub fn alloc_phantom(&mut self, layout: ArrayLayout) -> &mut Buffer {
        self.alloc_inner(layout, true)
    }

    fn alloc_inner(&mut self, layout: ArrayLayout, phantom: bool) -> &mut Buffer {
        let name = layout.name.clone();
        let lanes = layout.elem.lanes() as i64;
        let (data, shadow) = if phantom {
            (Vec::new(), Vec::new())
        } else {
            (
                vec![0.0; (layout.alloc_elems() * lanes) as usize],
                vec![false; layout.alloc_elems() as usize],
            )
        };
        let buffer = Buffer {
            base_addr: self.next_base,
            phantom,
            data,
            shadow,
            layout,
        };
        // Allocations are 256-byte aligned, like the CUDA allocator.
        self.next_base += (buffer.size_bytes() + 255) / 256 * 256;
        match self.buffers.entry(name) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.insert(buffer);
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => e.insert(buffer),
        }
    }

    /// The buffer named `name`.
    pub fn buffer(&self, name: &str) -> Result<&Buffer, DeviceError> {
        self.buffers
            .get(name)
            .ok_or_else(|| DeviceError::UnknownBuffer(name.to_string()))
    }

    /// Mutable access to the buffer named `name`.
    pub fn buffer_mut(&mut self, name: &str) -> Result<&mut Buffer, DeviceError> {
        self.buffers
            .get_mut(name)
            .ok_or_else(|| DeviceError::UnknownBuffer(name.to_string()))
    }

    /// Names of all allocated buffers.
    pub fn buffer_names(&self) -> Vec<String> {
        self.buffers.keys().cloned().collect()
    }

    /// Folds the buffer writes a block cluster performed on `theirs` (a
    /// clone of the pre-fork `snapshot` device) into this device. See
    /// [`Buffer::merge_writes`].
    pub fn merge_writes(&mut self, snapshot: &Device, theirs: &Device) {
        for (name, ours) in self.buffers.iter_mut() {
            if let (Some(snap), Some(their)) =
                (snapshot.buffers.get(name), theirs.buffers.get(name))
            {
                ours.merge_writes(snap, their);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_ast::ScalarType;

    fn layout_2d() -> ArrayLayout {
        ArrayLayout::new("a", ScalarType::Float, vec![4, 5]).padded_to(16)
    }

    #[test]
    fn upload_download_round_trip_with_padding() {
        let mut dev = Device::new(MachineDesc::gtx280());
        dev.alloc(layout_2d());
        let src: Vec<f32> = (0..20).map(|v| v as f32).collect();
        dev.buffer_mut("a").unwrap().upload(&src);
        assert_eq!(dev.buffer("a").unwrap().download(), src);
        // Padded pitch really is 16.
        assert_eq!(dev.buffer("a").unwrap().layout.row_pitch, 16);
        assert_eq!(dev.buffer("a").unwrap().data.len(), 4 * 16);
    }

    #[test]
    fn read_write_elements() {
        let mut dev = Device::new(MachineDesc::gtx280());
        dev.alloc(layout_2d());
        let b = dev.buffer_mut("a").unwrap();
        b.write(&[2, 3], Val::F(7.5)).unwrap();
        assert_eq!(b.read(&[2, 3]).unwrap(), Val::F(7.5));
        assert_eq!(b.read(&[2, 4]).unwrap(), Val::F(0.0));
    }

    #[test]
    fn bounds_checking() {
        let mut dev = Device::new(MachineDesc::gtx280());
        dev.alloc(layout_2d());
        let b = dev.buffer("a").unwrap();
        // Row index strict; column may extend into the padding.
        assert!(b.read(&[4, 0]).is_err());
        assert!(b.read(&[0, 15]).is_ok());
        assert!(b.read(&[0, 16]).is_err());
        assert!(b.read(&[0, -1]).is_err());
        assert!(matches!(
            b.read(&[0]),
            Err(DeviceError::RankMismatch { .. })
        ));
    }

    #[test]
    fn shadow_tracks_initialization() {
        let mut dev = Device::new(MachineDesc::gtx280());
        dev.alloc(layout_2d());
        let b = dev.buffer_mut("a").unwrap();
        assert!(!b.cell_initialized(0));
        b.write(&[0, 0], Val::F(1.0)).unwrap();
        assert!(b.cell_initialized(0));
        // Upload marks logical cells but not the row padding.
        let src: Vec<f32> = (0..20).map(|v| v as f32).collect();
        b.upload(&src);
        assert!(b.cell_initialized(16 + 4)); // [1][4], logical
        assert!(!b.cell_initialized(5)); // [0][5], padding
        assert!(b.is_padding(&[0, 5]));
        assert!(!b.is_padding(&[0, 4]));
        assert!(!b.is_padding(&[0, 16])); // true OOB, not padding
        b.mark_all_initialized();
        assert!(b.cell_initialized(5));
    }

    #[test]
    fn phantom_cells_always_initialized() {
        let mut dev = Device::new(MachineDesc::gtx280());
        dev.alloc_phantom(layout_2d());
        assert!(dev.buffer("a").unwrap().cell_initialized(3));
    }

    #[test]
    fn float2_buffers_store_two_lanes() {
        let mut dev = Device::new(MachineDesc::gtx280());
        dev.alloc(ArrayLayout::new("v", ScalarType::Float2, vec![8]));
        let b = dev.buffer_mut("v").unwrap();
        b.upload(&(0..16).map(|v| v as f32).collect::<Vec<_>>());
        assert_eq!(b.read(&[3]).unwrap(), Val::F2([6.0, 7.0]));
        b.write(&[0], Val::F2([9.0, 10.0])).unwrap();
        assert_eq!(b.download()[0..2], [9.0, 10.0]);
    }

    #[test]
    fn base_addresses_are_disjoint_and_aligned() {
        let mut dev = Device::new(MachineDesc::gtx280());
        dev.alloc(ArrayLayout::new("a", ScalarType::Float, vec![100]));
        dev.alloc(ArrayLayout::new("b", ScalarType::Float, vec![100]));
        let a = dev.buffer("a").unwrap();
        let b = dev.buffer("b").unwrap();
        assert_eq!(a.base_addr % 256, 0);
        assert_eq!(b.base_addr % 256, 0);
        assert!(b.base_addr >= a.base_addr + a.size_bytes());
    }

    #[test]
    fn phantom_buffers_trace_without_memory() {
        let mut dev = Device::new(MachineDesc::gtx280());
        dev.alloc_phantom(ArrayLayout::new(
            "huge",
            ScalarType::Float,
            vec![1 << 20, 1 << 10],
        ));
        let b = dev.buffer_mut("huge").unwrap();
        assert!(b.data.is_empty());
        assert_eq!(b.read(&[5, 5]).unwrap(), Val::F(0.0));
        b.write(&[5, 5], Val::F(1.0)).unwrap();
        assert_eq!(b.read(&[5, 5]).unwrap(), Val::F(0.0));
        assert!(b.read(&[1 << 20, 0]).is_err());
    }
}
