//! Execution sanitizing: shadow-state checks for memory safety and
//! barrier discipline.
//!
//! When [`crate::ExecOptions::sanitize`] is set, the interpreter tracks
//! per-cell shadow state alongside every access and reports the first
//! violation as a [`SanitizerError`]:
//!
//! * **Global out-of-bounds** — an access outside the array's allocation.
//!   Reads that land in *compiler-introduced padding* (the region between
//!   an array's logical extent and its padded row pitch) are reported
//!   separately with [`padding`](SanitizerKind::GlobalOutOfBounds) set:
//!   they return zeros rather than faulting on real hardware, so a kernel
//!   relying on them is wrong in a subtler way than a true OOB.
//! * **Uninitialized reads** — a read of a global or shared cell that was
//!   never uploaded or written. The functional simulator zero-fills
//!   allocations, so such reads silently "work" here but are garbage on a
//!   real device.
//! * **Shared-memory races** — two different threads of a block touch the
//!   same shared cell with at least one write and no `__syncthreads()`
//!   between the accesses. The detector is epoch-based: each barrier
//!   increments the block's epoch, and every shared cell remembers the
//!   epoch and lane of its last write and last read.
//! * **Barrier divergence** — a barrier reached with only part of the
//!   block active. The interpreter runs lock-step with divergence masks,
//!   so threads reaching different barrier sites or iteration counts
//!   manifest as a non-uniform mask at the barrier.
//! * **Shared overflow** — the block's `__shared__` declarations exceed
//!   the machine's per-SM shared memory.
//!
//! Errors carry the source [`Span`] of the offending array's first
//! subscripted access when the caller provides an access-span table
//! (see [`crate::ExecOptions::spans`]).

use gpgpu_ast::Span;
use std::fmt;

/// What a sanitizer finding is, with enough payload to bucket and replay
/// it. The [`SanitizerKind::name`] strings are stable identifiers used by
/// the fuzzing oracle's failure buckets and the `sanitizer` trace events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SanitizerKind {
    /// A global-memory access outside the array's bounds.
    GlobalOutOfBounds {
        /// Array accessed.
        array: String,
        /// Offending per-dimension indices.
        indices: Vec<i64>,
        /// True for stores.
        write: bool,
        /// True when the access is inside the allocation but beyond the
        /// logical extent — a read of compiler-introduced padding.
        padding: bool,
    },
    /// A shared-memory access outside the staging array's extents.
    SharedOutOfBounds {
        /// Shared array accessed.
        array: String,
        /// Offending per-dimension indices.
        indices: Vec<i64>,
        /// True for stores.
        write: bool,
    },
    /// A read of a cell that was never uploaded or written.
    UninitializedRead {
        /// Array read.
        array: String,
        /// Per-dimension indices of the cell.
        indices: Vec<i64>,
        /// True for `__shared__` arrays, false for global memory.
        shared: bool,
    },
    /// Two threads touched a shared cell, at least one writing, with no
    /// intervening `__syncthreads()`.
    SharedRace {
        /// Shared array raced on.
        array: String,
        /// Linear cell offset within the array.
        offset: usize,
        /// The two racing lanes (thread indices within the block).
        lanes: (u32, u32),
        /// True for a write-write race; false when one side was a read.
        write_write: bool,
    },
    /// A barrier reached with a divergent mask (threads of one block at
    /// different barrier sites or iteration counts).
    BarrierDivergence {
        /// Lanes active at the barrier.
        active: usize,
        /// Threads in the block.
        total: usize,
    },
    /// The block's `__shared__` declarations exceed the machine's shared
    /// memory.
    SharedOverflow {
        /// The declaration that overflowed.
        array: String,
        /// Total shared bytes declared by the block so far.
        bytes: u64,
        /// The machine's per-SM shared-memory capacity.
        limit: u64,
    },
}

impl SanitizerKind {
    /// Stable identifier of this finding, used for failure bucketing and
    /// trace events: `global-oob`, `padding-read`, `shared-oob`,
    /// `uninit-read`, `shared-race`, `barrier-divergence`,
    /// `shared-overflow`.
    pub fn name(&self) -> &'static str {
        match self {
            SanitizerKind::GlobalOutOfBounds { padding: true, .. } => "padding-read",
            SanitizerKind::GlobalOutOfBounds { padding: false, .. } => "global-oob",
            SanitizerKind::SharedOutOfBounds { .. } => "shared-oob",
            SanitizerKind::UninitializedRead { .. } => "uninit-read",
            SanitizerKind::SharedRace { .. } => "shared-race",
            SanitizerKind::BarrierDivergence { .. } => "barrier-divergence",
            SanitizerKind::SharedOverflow { .. } => "shared-overflow",
        }
    }

    /// The array the finding refers to, when there is one.
    pub fn array(&self) -> Option<&str> {
        match self {
            SanitizerKind::GlobalOutOfBounds { array, .. }
            | SanitizerKind::SharedOutOfBounds { array, .. }
            | SanitizerKind::UninitializedRead { array, .. }
            | SanitizerKind::SharedRace { array, .. }
            | SanitizerKind::SharedOverflow { array, .. } => Some(array),
            SanitizerKind::BarrierDivergence { .. } => None,
        }
    }
}

/// A sanitizer violation: the finding plus the source location of the
/// offending array's first subscripted access, when known.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizerError {
    /// What went wrong.
    pub kind: SanitizerKind,
    /// Source location of the array's first subscripted use in the naive
    /// kernel, when the caller supplied an access-span table.
    pub span: Option<Span>,
}

impl SanitizerError {
    /// Stable bucket identifier (see [`SanitizerKind::name`]).
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }
}

impl fmt::Display for SanitizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SanitizerKind::GlobalOutOfBounds {
                array,
                indices,
                write,
                padding,
            } => {
                let dir = if *write { "write" } else { "read" };
                if *padding {
                    write!(
                        f,
                        "sanitizer: {dir} of uninitialized padding {array}{indices:?} \
                         (inside the allocation, beyond the logical extent)"
                    )?;
                } else {
                    write!(f, "sanitizer: out-of-bounds {dir} {array}{indices:?}")?;
                }
            }
            SanitizerKind::SharedOutOfBounds {
                array,
                indices,
                write,
            } => {
                let dir = if *write { "write" } else { "read" };
                write!(f, "sanitizer: out-of-bounds shared {dir} {array}{indices:?}")?;
            }
            SanitizerKind::UninitializedRead {
                array,
                indices,
                shared,
            } => {
                let space = if *shared { "shared" } else { "global" };
                write!(f, "sanitizer: uninitialized {space} read {array}{indices:?}")?;
            }
            SanitizerKind::SharedRace {
                array,
                offset,
                lanes,
                write_write,
            } => {
                let kind = if *write_write {
                    "write-write"
                } else {
                    "read-write"
                };
                write!(
                    f,
                    "sanitizer: {kind} race on shared {array}[+{offset}] between \
                     threads {} and {} (no __syncthreads() between them)",
                    lanes.0, lanes.1
                )?;
            }
            SanitizerKind::BarrierDivergence { active, total } => {
                write!(
                    f,
                    "sanitizer: barrier divergence ({active} of {total} threads \
                     reached the barrier)"
                )?;
            }
            SanitizerKind::SharedOverflow {
                array,
                bytes,
                limit,
            } => {
                write!(
                    f,
                    "sanitizer: shared-memory overflow declaring `{array}` \
                     ({bytes} bytes declared, {limit} available)"
                )?;
            }
        }
        if let Some(span) = self.span {
            write!(f, " at {span}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SanitizerError {}

/// Per-cell shadow state of a `__shared__` array: what the last accesses
/// within the current barrier epoch were. Fresh cells are unwritten with
/// no recorded accesses.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShadowCell {
    /// Ever written since the block started.
    pub written: bool,
    /// Epoch and lane of the most recent write.
    pub last_write: Option<(u32, u32)>,
    /// Epoch, first reader lane, and optionally a second distinct reader
    /// lane within that epoch.
    pub last_read: Option<(u32, u32, Option<u32>)>,
}

impl ShadowCell {
    /// Records a write by `lane` in `epoch`, returning the racing lane and
    /// whether the race was write-write, if the write races.
    pub fn record_write(&mut self, epoch: u32, lane: u32) -> Option<(u32, bool)> {
        let conflict = match (self.last_write, self.last_read) {
            (Some((e, l)), _) if e == epoch && l != lane => Some((l, true)),
            (_, Some((e, r1, _))) if e == epoch && r1 != lane => Some((r1, false)),
            (_, Some((e, _, Some(r2)))) if e == epoch && r2 != lane => Some((r2, false)),
            _ => None,
        };
        self.written = true;
        self.last_write = Some((epoch, lane));
        conflict
    }

    /// Records a read by `lane` in `epoch`, returning the racing writer
    /// lane if the read races a same-epoch write by another lane.
    pub fn record_read(&mut self, epoch: u32, lane: u32) -> Option<u32> {
        let conflict = match self.last_write {
            Some((e, l)) if e == epoch && l != lane => Some(l),
            _ => None,
        };
        self.last_read = Some(match self.last_read {
            Some((e, r1, r2)) if e == epoch => {
                (epoch, r1, r2.or((r1 != lane).then_some(lane)))
            }
            _ => (epoch, lane, None),
        });
        conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_distinct_and_stable() {
        let kinds = [
            SanitizerKind::GlobalOutOfBounds {
                array: "a".into(),
                indices: vec![9],
                write: false,
                padding: false,
            },
            SanitizerKind::GlobalOutOfBounds {
                array: "a".into(),
                indices: vec![9],
                write: false,
                padding: true,
            },
            SanitizerKind::SharedOutOfBounds {
                array: "s0".into(),
                indices: vec![17],
                write: true,
            },
            SanitizerKind::UninitializedRead {
                array: "a".into(),
                indices: vec![0],
                shared: false,
            },
            SanitizerKind::SharedRace {
                array: "s0".into(),
                offset: 3,
                lanes: (0, 1),
                write_write: false,
            },
            SanitizerKind::BarrierDivergence {
                active: 8,
                total: 16,
            },
            SanitizerKind::SharedOverflow {
                array: "s0".into(),
                bytes: 32768,
                limit: 16384,
            },
        ];
        let names: std::collections::HashSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
        for k in kinds {
            let e = SanitizerError {
                kind: k,
                span: None,
            };
            assert!(e.to_string().starts_with("sanitizer: "), "{e}");
        }
    }

    #[test]
    fn shadow_cell_race_rules() {
        // Write then read by another lane, same epoch: race on the read.
        let mut c = ShadowCell::default();
        assert_eq!(c.record_write(1, 0), None);
        assert_eq!(c.record_read(1, 1), Some(0));
        // After a barrier (new epoch) the same pattern is clean.
        let mut c = ShadowCell::default();
        assert_eq!(c.record_write(1, 0), None);
        assert_eq!(c.record_read(2, 1), None);
        // Read then write by another lane, same epoch: race on the write.
        let mut c = ShadowCell::default();
        assert_eq!(c.record_read(1, 5), None);
        assert_eq!(c.record_write(1, 6), Some((5, false)));
        // Write-write by two lanes.
        let mut c = ShadowCell::default();
        assert_eq!(c.record_write(3, 2), None);
        assert_eq!(c.record_write(3, 7), Some((2, true)));
        // Same-lane rewrite and reread are always fine.
        let mut c = ShadowCell::default();
        assert_eq!(c.record_write(1, 4), None);
        assert_eq!(c.record_write(1, 4), None);
        assert_eq!(c.record_read(1, 4), None);
        // Multiple readers then a write by one of them: still a race (the
        // other reader's value is in flight).
        let mut c = ShadowCell::default();
        assert_eq!(c.record_read(2, 0), None);
        assert_eq!(c.record_read(2, 1), None);
        assert_eq!(c.record_write(2, 0), Some((1, false)));
    }
}
