//! Runtime values of the functional simulator.

use gpgpu_ast::ScalarType;
use std::fmt;

/// A scalar runtime value: one lane's view of a variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// 32-bit signed integer (booleans are 0/1).
    I(i64),
    /// 32-bit float.
    F(f32),
    /// CUDA `float2`.
    F2([f32; 2]),
    /// CUDA `float4`.
    F4([f32; 4]),
}

impl Val {
    /// Zero of the given type.
    pub fn zero(ty: ScalarType) -> Val {
        match ty {
            ScalarType::Int => Val::I(0),
            ScalarType::Float => Val::F(0.0),
            ScalarType::Float2 => Val::F2([0.0; 2]),
            ScalarType::Float4 => Val::F4([0.0; 4]),
        }
    }

    /// Integer view (floats truncate).
    pub fn as_i(self) -> Option<i64> {
        match self {
            Val::I(v) => Some(v),
            Val::F(v) => Some(v as i64),
            _ => None,
        }
    }

    /// Float view (ints convert).
    pub fn as_f(self) -> Option<f32> {
        match self {
            Val::I(v) => Some(v as f32),
            Val::F(v) => Some(v),
            _ => None,
        }
    }

    /// Truthiness for predicates.
    pub fn is_true(self) -> bool {
        match self {
            Val::I(v) => v != 0,
            Val::F(v) => v != 0.0,
            _ => false,
        }
    }

    /// Number of 32-bit lanes.
    pub fn lanes(self) -> usize {
        match self {
            Val::I(_) | Val::F(_) => 1,
            Val::F2(_) => 2,
            Val::F4(_) => 4,
        }
    }

    /// Reads component `lane` of a vector value (or the scalar itself).
    pub fn component(self, lane: usize) -> Option<f32> {
        match self {
            Val::F(v) if lane == 0 => Some(v),
            Val::I(v) if lane == 0 => Some(v as f32),
            Val::F2(v) => v.get(lane).copied(),
            Val::F4(v) => v.get(lane).copied(),
            _ => None,
        }
    }

    /// Writes component `lane` of a vector value.
    pub fn set_component(&mut self, lane: usize, x: f32) -> bool {
        match self {
            Val::F(v) if lane == 0 => {
                *v = x;
                true
            }
            Val::F2(v) if lane < 2 => {
                v[lane] = x;
                true
            }
            Val::F4(v) if lane < 4 => {
                v[lane] = x;
                true
            }
            _ => false,
        }
    }
}

/// Absolute and relative error of `got` against `reference`.
///
/// The relative error is normalized by `max(|reference|, |got|)` and is 0
/// when both are 0; NaNs propagate so callers comparing against a
/// tolerance see them as failures. Shared by output verification and the
/// differential fuzzing oracle.
pub fn abs_rel_error(reference: f32, got: f32) -> (f32, f32) {
    let abs = (got - reference).abs();
    let scale = reference.abs().max(got.abs());
    let rel = if abs == 0.0 { 0.0 } else { abs / scale };
    (abs, rel)
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::I(v) => write!(f, "{v}"),
            Val::F(v) => write!(f, "{v}"),
            Val::F2(v) => write!(f, "({}, {})", v[0], v[1]),
            Val::F4(v) => write!(f, "({}, {}, {}, {})", v[0], v[1], v[2], v[3]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Val::I(3).as_f(), Some(3.0));
        assert_eq!(Val::F(2.7).as_i(), Some(2));
        assert_eq!(Val::F2([1.0, 2.0]).as_i(), None);
        assert!(Val::I(1).is_true());
        assert!(!Val::F(0.0).is_true());
    }

    #[test]
    fn components() {
        let mut v = Val::F2([1.0, 2.0]);
        assert_eq!(v.component(1), Some(2.0));
        assert!(v.set_component(0, 5.0));
        assert_eq!(v, Val::F2([5.0, 2.0]));
        assert!(!v.set_component(2, 0.0));
        assert_eq!(Val::F(7.0).component(0), Some(7.0));
        assert_eq!(Val::F(7.0).component(1), None);
    }

    #[test]
    fn abs_rel_error_basics() {
        assert_eq!(abs_rel_error(2.0, 2.0), (0.0, 0.0));
        assert_eq!(abs_rel_error(0.0, 0.0), (0.0, 0.0));
        let (abs, rel) = abs_rel_error(100.0, 101.0);
        assert_eq!(abs, 1.0);
        assert!((rel - 1.0 / 101.0).abs() < 1e-7);
        let (abs, rel) = abs_rel_error(0.0, 0.5);
        assert_eq!(abs, 0.5);
        assert_eq!(rel, 1.0);
        let (abs, rel) = abs_rel_error(1.0, f32::NAN);
        assert!(abs.is_nan() && rel.is_nan());
    }

    #[test]
    fn zeros_and_lanes() {
        assert_eq!(Val::zero(ScalarType::Float2).lanes(), 2);
        assert_eq!(Val::zero(ScalarType::Int), Val::I(0));
        assert_eq!(Val::zero(ScalarType::Float4).lanes(), 4);
    }
}
