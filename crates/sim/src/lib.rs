#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

//! # gpgpu-sim
//!
//! A GPU simulator standing in for the NVIDIA GTX 8800 / GTX 280 testbed of
//! the PLDI 2010 GPGPU-compiler paper. It has three faces:
//!
//! * a **functional SIMT interpreter** ([`exec`]) that runs MiniCUDA
//!   kernels lock-step with divergence masks against real buffers — used to
//!   check that every compiler transformation preserves semantics, and to
//!   validate barrier placement and memory safety; it can stream its
//!   global-memory transactions ([`exec::MemEvent`]) into a pluggable sink
//!   and parallelize the block loop over block clusters;
//! * two **timing models** behind the [`cost::CostModel`] trait: the
//!   analytic MWP/CWP-style combine ([`timing`]) and a trace-driven
//!   memory-hierarchy simulation ([`mem`]) — both driven by phantom-memory
//!   traces from the same interpreter and used by the compiler's empirical
//!   search (paper §4) and by the benchmark harnesses that regenerate the
//!   paper's figures.
//!
//! [`machine`] holds the hardware descriptors and [`device`] the simulated
//! global memory.

pub mod cost;
pub mod device;
pub mod exec;
pub mod machine;
pub mod mem;
pub mod sanitize;
pub mod timing;
pub mod value;

pub use cost::{AnalyticModel, CostModel, CostModelKind, HierarchyModel};
pub use device::{Buffer, Device, DeviceError};
pub use exec::{
    launch, launch_with_sink, ExecError, ExecOptions, ExecStats, MemEvent, MemSink, NullSink,
    VecSink,
};
pub use machine::{MachineDesc, PartitionGeometry};
pub use mem::{HierarchySim, HierarchyStats};
pub use sanitize::{SanitizerError, SanitizerKind};
pub use timing::{estimate, estimate_prepared, PerfEstimate, PerfError, PerfOptions};
pub use value::{abs_rel_error, Val};
