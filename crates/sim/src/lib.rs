#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

//! # gpgpu-sim
//!
//! A GPU simulator standing in for the NVIDIA GTX 8800 / GTX 280 testbed of
//! the PLDI 2010 GPGPU-compiler paper. It has two faces:
//!
//! * a **functional SIMT interpreter** ([`exec`]) that runs MiniCUDA
//!   kernels lock-step with divergence masks against real buffers — used to
//!   check that every compiler transformation preserves semantics, and to
//!   validate barrier placement and memory safety;
//! * an **analytic timing model** ([`timing`]) driven by phantom-memory
//!   traces from the same interpreter — used by the compiler's empirical
//!   search (paper §4) and by the benchmark harnesses that regenerate the
//!   paper's figures.
//!
//! [`machine`] holds the hardware descriptors and [`device`] the simulated
//! global memory.

pub mod device;
pub mod exec;
pub mod machine;
pub mod sanitize;
pub mod timing;
pub mod value;

pub use device::{Buffer, Device, DeviceError};
pub use exec::{launch, ExecError, ExecOptions, ExecStats};
pub use machine::{MachineDesc, PartitionGeometry};
pub use sanitize::{SanitizerError, SanitizerKind};
pub use timing::{estimate, estimate_prepared, PerfEstimate, PerfError, PerfOptions};
pub use value::{abs_rel_error, Val};
