//! Functional SIMT interpreter.
//!
//! Kernels are executed block by block in *lock-step vector* style: each
//! statement is evaluated once, over a vector of lanes (one per thread in
//! the block), with divergence expressed as boolean masks. `__syncthreads()`
//! is then a validity check rather than an operation — if it is reached with
//! a divergent mask the kernel is broken, which the interpreter reports.
//!
//! Kernels using the grid-wide `__gsync()` barrier of naive reduction
//! kernels run in *mega-block* mode: the whole grid is one lane vector.
//!
//! Besides computing results (used to verify that optimized kernels are
//! semantics-preserving), the interpreter traces memory behaviour: global
//! transactions at 32-byte-line granularity, the partition each line lands
//! in, shared-memory bank conflicts, and issued warp instructions. The
//! timing model consumes these traces.

use crate::device::{Buffer, Device, DeviceError};
use crate::sanitize::{SanitizerError, SanitizerKind, ShadowCell};
use crate::value::Val;
use gpgpu_analysis::Bindings;
use gpgpu_ast::{
    AccessSpans, BinOp, Builtin, Expr, Field, Kernel, LValue, LaunchConfig, Stmt, UnOp,
};
use std::collections::HashMap;
use std::fmt;

/// Per-block statement-execution cap (runaway-loop guard).
const STEP_LIMIT: u64 = 500_000_000;

/// Execution options.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Execute only the first `n` blocks (row-major over the grid) — the
    /// timing model samples a handful of consecutive blocks and
    /// extrapolates. `None` executes the whole grid.
    pub sample_blocks: Option<usize>,
    /// Cap top-level loops at this many iterations, recording the
    /// truncation factor in [`ExecStats::loop_truncation`]. Only uniform
    /// counted loops (`+= k` with lane-invariant bounds) are truncated;
    /// correctness runs must leave this `None`.
    pub max_outer_iters: Option<u64>,
    /// Spread the sampled blocks over this many *concurrently resident*
    /// blocks (SMs × blocks/SM) instead of taking consecutive ones — the
    /// partition behaviour of the concurrent population is what matters.
    /// `None` samples consecutive blocks.
    pub sample_spread: Option<u64>,
    /// Per-launch fuel budget: interpreter steps before the run is cut off
    /// with [`ExecError::IterationLimit`]. `None` uses the built-in step
    /// limit. Design-space exploration sets this to contain runaway
    /// candidates.
    pub fuel: Option<u64>,
    /// Wall-clock deadline; execution past it fails with
    /// [`ExecError::DeadlineExceeded`]. Checked every few thousand steps,
    /// so overruns are bounded but not exact.
    pub deadline: Option<std::time::Instant>,
    /// Sanitize mode: track per-cell shadow state and fail with
    /// [`ExecError::Sanitizer`] on out-of-bounds or padding accesses,
    /// uninitialized reads, intra-block shared-memory races, barrier
    /// divergence, and shared-memory overflow. See [`crate::sanitize`].
    pub sanitize: bool,
    /// Source spans of each array's first subscripted access in the
    /// original kernel; sanitizer findings about an array carry its span.
    pub spans: AccessSpans,
    /// Simulate the executed blocks on this many worker threads
    /// ("block clusters", after the SM clusters of hardware simulators).
    /// `0` or `1` runs serially. Blocks are independent up to inter-block
    /// write conflicts (data races in the source program), so the parallel
    /// run is serial-equivalent: per-cluster statistics merge by addition,
    /// the lockstep partition timeline merges element-wise, and each
    /// cluster's buffer writes are folded back in cluster order.
    /// Sanitize and mega-block (`__gsync`) runs ignore this and stay
    /// serial.
    pub block_clusters: usize,
}

/// Counters collected during execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecStats {
    /// Blocks actually executed.
    pub blocks_executed: u64,
    /// Blocks in the launch.
    pub total_blocks: u64,
    /// Warp-instruction issues (lock-step statements × active warps).
    pub warp_insts: u64,
    /// Floating-point operations executed (active lanes).
    pub flops: u64,
    /// Global-memory transactions (distinct 32-byte lines per half-warp
    /// access).
    pub global_transactions: u64,
    /// Bytes moved by those transactions.
    pub global_bytes: u64,
    /// Bytes the lanes actually consumed (coalescing efficiency =
    /// useful / moved).
    pub useful_bytes: u64,
    /// Half-warp global requests issued.
    pub gmem_requests: u64,
    /// Transactions per memory partition (whole-run aggregate).
    pub partition_hits: Vec<u64>,
    /// Lockstep partition timeline: entry `t` histograms the partitions hit
    /// by the `t`-th half-warp request of every sampled block. Blocks run
    /// the same code, so requests with equal in-block issue index are
    /// concurrent on real hardware — camping shows up as single-partition
    /// spikes here even though the aggregate histogram looks even.
    pub partition_timeline: Vec<Vec<u32>>,
    /// Half-warp shared-memory accesses.
    pub shared_accesses: u64,
    /// Extra cycles serialized by shared-memory bank conflicts.
    pub shared_conflict_cycles: u64,
    /// Factor by which top-level loops were truncated (1.0 = full run);
    /// extensive counters must be multiplied by this to extrapolate.
    pub loop_truncation: f64,
    /// Dynamic `__gsync()` crossings: on real hardware each one is a kernel
    /// relaunch, so the timing model charges launch overhead per crossing.
    pub gsync_crossings: u64,
}

impl Default for ExecStats {
    fn default() -> Self {
        ExecStats {
            blocks_executed: 0,
            total_blocks: 0,
            warp_insts: 0,
            flops: 0,
            global_transactions: 0,
            global_bytes: 0,
            useful_bytes: 0,
            gmem_requests: 0,
            partition_hits: Vec::new(),
            partition_timeline: Vec::new(),
            shared_accesses: 0,
            shared_conflict_cycles: 0,
            loop_truncation: 1.0,
            gsync_crossings: 0,
        }
    }
}

impl ExecStats {
    /// Coalescing efficiency in (0, 1]: useful bytes over moved bytes.
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.global_bytes == 0 {
            1.0
        } else {
            self.useful_bytes as f64 / self.global_bytes as f64
        }
    }

    /// Ratio of the hottest partition's *concurrent* load to the average
    /// (1.0 = even), computed over windows of the lockstep timeline and
    /// weighted by traffic.
    ///
    /// The memory system keeps a reorder window of outstanding requests, so
    /// short-period partition rotations (a streaming copy) even out, while
    /// genuine camping — long runs pinned to one partition, as in row walks
    /// whose stride resonates with the partition period — stays visible.
    /// Values approach the partition count under full camping.
    pub fn partition_imbalance(&self) -> f64 {
        /// Requests the memory system can overlap and reorder.
        const WINDOW: usize = 64;
        let nparts = self
            .partition_timeline
            .first()
            .map(|h| h.len())
            .unwrap_or(0);
        if nparts == 0 {
            return 1.0;
        }
        let mut sum_max = 0.0f64;
        let mut sum_avg = 0.0f64;
        for chunk in self.partition_timeline.chunks(WINDOW) {
            let mut hist = vec![0u64; nparts];
            for step in chunk {
                for (p, &v) in step.iter().enumerate() {
                    hist[p] += v as u64;
                }
            }
            let total: u64 = hist.iter().sum();
            if total == 0 {
                continue;
            }
            sum_max += hist.iter().copied().max().unwrap_or(0) as f64;
            sum_avg += total as f64 / nparts as f64;
        }
        if sum_avg == 0.0 {
            1.0
        } else {
            sum_max / sum_avg
        }
    }

    /// Scales the extensive counters by `factor` (extrapolating a sampled
    /// trace to the full launch).
    pub fn scaled(&self, factor: f64) -> ExecStats {
        let s = |v: u64| (v as f64 * factor).round() as u64;
        ExecStats {
            blocks_executed: self.blocks_executed,
            total_blocks: self.total_blocks,
            warp_insts: s(self.warp_insts),
            flops: s(self.flops),
            global_transactions: s(self.global_transactions),
            global_bytes: s(self.global_bytes),
            useful_bytes: s(self.useful_bytes),
            gmem_requests: s(self.gmem_requests),
            partition_hits: self.partition_hits.iter().map(|&v| s(v)).collect(),
            // Intensive measure: scaling the launch does not change the
            // concurrent distribution.
            partition_timeline: self.partition_timeline.clone(),
            shared_accesses: s(self.shared_accesses),
            shared_conflict_cycles: s(self.shared_conflict_cycles),
            loop_truncation: self.loop_truncation,
            // Crossings grow with log(problem size), not linearly; the
            // caller adjusts them when extrapolating a shrunk trace.
            gsync_crossings: self.gsync_crossings,
        }
    }
}

/// One global-memory transaction observed by the interpreter: a 32-byte
/// line moved on behalf of a half-warp request. The stream of these events
/// is what the trace-driven memory-hierarchy model
/// ([`crate::mem::HierarchySim`]) replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// 32-byte line index (byte address / 32). Addresses come from the
    /// phantom-buffer base-address machinery, so lines are unique across
    /// arrays without any data being stored.
    pub line: i64,
    /// Whether the transaction was a store (assignment) rather than a load.
    pub write: bool,
    /// SM the issuing block is resident on (blocks are laid round-robin
    /// over `MachineDesc::sm_count`).
    pub sm: u32,
    /// In-block issue index of the half-warp request. Blocks run the same
    /// code in lockstep, so events with equal ticks are concurrent on real
    /// hardware; the hierarchy model uses this for MSHR merging windows and
    /// partition-queue depth.
    pub tick: u64,
}

/// Receives the global-memory transaction stream during a launch.
///
/// The interpreter calls [`MemSink::record`] once per 32-byte line of every
/// traced half-warp access, in issue order. Sinks must be cheap: the
/// default [`NullSink`] makes tracing free for correctness runs.
pub trait MemSink {
    /// Records one transaction.
    fn record(&mut self, ev: MemEvent);
}

/// Discards every event — the default sink for correctness and
/// analytic-model runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MemSink for NullSink {
    fn record(&mut self, _ev: MemEvent) {}
}

/// Buffers the transaction stream in memory for later replay into a
/// hierarchy simulator.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The recorded transactions, in issue order.
    pub events: Vec<MemEvent>,
}

impl MemSink for VecSink {
    fn record(&mut self, ev: MemEvent) {
        self.events.push(ev);
    }
}

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A device-memory fault.
    Device(DeviceError),
    /// A scalar parameter had no binding.
    UnboundScalar(String),
    /// A variable was read before being declared.
    UndefinedVar(String),
    /// `__syncthreads()` reached with a divergent mask.
    DivergentSync,
    /// `__gsync()` outside mega-block mode, or shared memory inside it.
    BarrierMisuse(String),
    /// Expression or statement outside the supported fragment.
    Unsupported(String),
    /// The step limit was exceeded (runaway loop).
    IterationLimit,
    /// The wall-clock deadline passed (see [`ExecOptions::deadline`]).
    DeadlineExceeded,
    /// A sanitizer check failed (only with [`ExecOptions::sanitize`]).
    Sanitizer(SanitizerError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Device(e) => write!(f, "{e}"),
            ExecError::UnboundScalar(s) => write!(f, "unbound scalar parameter `{s}`"),
            ExecError::UndefinedVar(s) => write!(f, "undefined variable `{s}`"),
            ExecError::DivergentSync => f.write_str("__syncthreads() under divergent mask"),
            ExecError::BarrierMisuse(s) => write!(f, "barrier misuse: {s}"),
            ExecError::Unsupported(s) => write!(f, "unsupported construct: {s}"),
            ExecError::IterationLimit => f.write_str("statement step limit exceeded"),
            ExecError::DeadlineExceeded => f.write_str("wall-clock deadline exceeded"),
            ExecError::Sanitizer(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<DeviceError> for ExecError {
    fn from(e: DeviceError) -> Self {
        ExecError::Device(e)
    }
}

impl From<SanitizerError> for ExecError {
    fn from(e: SanitizerError) -> Self {
        ExecError::Sanitizer(e)
    }
}

/// Executes a kernel launch on the device.
///
/// Scalar parameters are bound from `bindings`; array parameters must have
/// matching allocations in `device`.
///
/// # Errors
///
/// Returns an [`ExecError`] on memory faults, divergence violations, or
/// unsupported constructs — all of which indicate a compiler bug when they
/// occur on generated code.
pub fn launch(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    bindings: &Bindings,
    device: &mut Device,
    opts: &ExecOptions,
) -> Result<ExecStats, ExecError> {
    launch_with_sink(kernel, cfg, bindings, device, opts, &mut NullSink)
}

/// [`launch`], but streaming every global-memory transaction into `sink`.
///
/// The transaction stream drives the trace-based memory-hierarchy timing
/// model ([`crate::mem`]); correctness-only callers use [`launch`], which
/// discards the stream. Events arrive in block execution order (cluster
/// order under [`ExecOptions::block_clusters`], which is the same order the
/// serial run would produce).
///
/// # Errors
///
/// Same contract as [`launch`].
pub fn launch_with_sink(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    bindings: &Bindings,
    device: &mut Device,
    opts: &ExecOptions,
    sink: &mut dyn MemSink,
) -> Result<ExecStats, ExecError> {
    let mut scalars: HashMap<String, i64> = HashMap::new();
    let pragma_sizes = kernel.pragma_sizes();
    for p in &kernel.params {
        if p.kind() == gpgpu_ast::ParamKind::Scalar {
            let v = bindings
                .get(&p.name)
                .or_else(|| pragma_sizes.get(&p.name))
                .copied()
                .ok_or_else(|| ExecError::UnboundScalar(p.name.clone()))?;
            scalars.insert(p.name.clone(), v);
        }
    }
    let mut stats = ExecStats {
        partition_hits: vec![0; device.machine.partitions.count as usize],
        ..ExecStats::default()
    };

    if kernel.uses_global_sync() {
        if cfg.grid_y != 1 || cfg.block_y != 1 {
            return Err(ExecError::BarrierMisuse(
                "__gsync() kernels must use a 1-D launch".into(),
            ));
        }
        let nt = (cfg.grid_x * cfg.block_x) as usize;
        let mut ctx = BlockCtx {
            device,
            scalars: &scalars,
            stats: &mut stats,
            env: HashMap::new(),
            shared: HashMap::new(),
            nt,
            block: (0, 0),
            cfg: *cfg,
            mega: true,
            steps: 0,
            request_ix: 0,
            depth: 0,
            max_outer_iters: None,
            step_limit: opts.fuel.map_or(STEP_LIMIT, |f| f.min(STEP_LIMIT)),
            deadline: opts.deadline,
            sanitize: opts.sanitize,
            spans: &opts.spans,
            epoch: 0,
            shared_shadow: HashMap::new(),
            shared_bytes: 0,
            sm_id: 0,
            sink,
        };
        let mask = vec![true; nt];
        ctx.exec_body(&kernel.body, &mask)?;
        stats.blocks_executed = cfg.total_blocks();
        stats.total_blocks = cfg.total_blocks();
        return Ok(stats);
    }

    let total = cfg.total_blocks();
    let limit = opts.sample_blocks.map(|n| n as u64).unwrap_or(total);
    // When sampling, stride the chosen blocks across the concurrently
    // resident population so partition statistics reflect what actually
    // runs together on the machine.
    let stride = match (opts.sample_blocks, opts.sample_spread) {
        (Some(k), Some(spread)) if k > 0 => {
            // Odd strides cannot alias with the (even) partition counts,
            // which would make block-id-dependent fixes look useless.
            ((spread.min(total) / k as u64).max(1)) | 1
        }
        _ => 1,
    };
    let mut blocks: Vec<u64> = Vec::new();
    let mut linear = 0u64;
    while (blocks.len() as u64) < limit && linear < total {
        blocks.push(linear);
        linear += stride;
    }

    // Sanitize runs stay serial: the shadow-state machinery assumes the
    // serial block order when attributing first-fault blame.
    let clusters = if opts.sanitize {
        1
    } else {
        opts.block_clusters.clamp(1, blocks.len().max(1))
    };

    if clusters <= 1 {
        for &lin in &blocks {
            run_block(kernel, cfg, &scalars, device, opts, lin, &mut stats, sink)?;
        }
        stats.blocks_executed = blocks.len() as u64;
        stats.total_blocks = total;
        return Ok(stats);
    }

    // Parallel path: split the block list contiguously into clusters, run
    // each on its own thread against a private clone of the device, then
    // merge in cluster order. Blocks are independent up to inter-block
    // write conflicts (already data races in the source program), so the
    // merge is serial-equivalent: each cluster's writes are detected by
    // comparing against the pre-fork snapshot and folded back in order.
    let chunk = blocks.len().div_ceil(clusters);
    let snapshot: Device = device.clone();
    type ClusterRun = Result<(Device, ExecStats, Vec<MemEvent>), ExecError>;
    let results: Vec<ClusterRun> =
        std::thread::scope(|scope| {
            let snapshot_ref = &snapshot;
            let scalars_ref = &scalars;
            let handles: Vec<_> = blocks
                .chunks(chunk)
                .map(|span| {
                    scope.spawn(move || {
                        let mut dev = snapshot_ref.clone();
                        let mut local = ExecStats {
                            partition_hits: vec![
                                0;
                                dev.machine.partitions.count as usize
                            ],
                            ..ExecStats::default()
                        };
                        let mut vec_sink = VecSink::default();
                        for &lin in span {
                            run_block(
                                kernel,
                                cfg,
                                scalars_ref,
                                &mut dev,
                                opts,
                                lin,
                                &mut local,
                                &mut vec_sink,
                            )?;
                        }
                        Ok((dev, local, vec_sink.events))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });

    for result in results {
        let (dev, local, events) = result?;
        device.merge_writes(&snapshot, &dev);
        merge_stats(&mut stats, local);
        for ev in events {
            sink.record(ev);
        }
    }
    stats.blocks_executed = blocks.len() as u64;
    stats.total_blocks = total;
    Ok(stats)
}

/// Executes one thread block (by linear grid index) against `device`,
/// accumulating into `stats` and `sink`.
#[allow(clippy::too_many_arguments)]
fn run_block(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    scalars: &HashMap<String, i64>,
    device: &mut Device,
    opts: &ExecOptions,
    linear: u64,
    stats: &mut ExecStats,
    sink: &mut dyn MemSink,
) -> Result<(), ExecError> {
    let bx = (linear % cfg.grid_x as u64) as u32;
    let by = (linear / cfg.grid_x as u64) as u32;
    let sm_id = (linear % device.machine.sm_count.max(1) as u64) as u32;
    let nt = cfg.threads_per_block() as usize;
    let mut ctx = BlockCtx {
        device,
        scalars,
        stats,
        env: HashMap::new(),
        shared: HashMap::new(),
        nt,
        block: (bx, by),
        cfg: *cfg,
        mega: false,
        steps: 0,
        request_ix: 0,
        depth: 0,
        max_outer_iters: opts.max_outer_iters,
        step_limit: opts.fuel.map_or(STEP_LIMIT, |f| f.min(STEP_LIMIT)),
        deadline: opts.deadline,
        sanitize: opts.sanitize,
        spans: &opts.spans,
        epoch: 0,
        shared_shadow: HashMap::new(),
        shared_bytes: 0,
        sm_id,
        sink,
    };
    let mask = vec![true; nt];
    ctx.exec_body(&kernel.body, &mask)
}

/// Folds one cluster's statistics into the launch totals. Extensive
/// counters add; the lockstep partition timeline adds element-wise (every
/// block restarts its request index at zero, so equal ticks are concurrent
/// regardless of which cluster ran the block); `loop_truncation` is a
/// per-block factor and identical across clusters, so `max` keeps it.
fn merge_stats(into: &mut ExecStats, from: ExecStats) {
    into.warp_insts += from.warp_insts;
    into.flops += from.flops;
    into.global_transactions += from.global_transactions;
    into.global_bytes += from.global_bytes;
    into.useful_bytes += from.useful_bytes;
    into.gmem_requests += from.gmem_requests;
    for (a, b) in into.partition_hits.iter_mut().zip(&from.partition_hits) {
        *a += b;
    }
    if into.partition_timeline.len() < from.partition_timeline.len() {
        let nparts = from
            .partition_timeline
            .first()
            .map(|h| h.len())
            .unwrap_or(0);
        into.partition_timeline
            .resize(from.partition_timeline.len(), vec![0; nparts]);
    }
    for (ts, step) in from.partition_timeline.iter().enumerate() {
        for (p, v) in step.iter().enumerate() {
            if let Some(slot) = into
                .partition_timeline
                .get_mut(ts)
                .and_then(|h| h.get_mut(p))
            {
                *slot += v;
            }
        }
    }
    into.shared_accesses += from.shared_accesses;
    into.shared_conflict_cycles += from.shared_conflict_cycles;
    into.loop_truncation = into.loop_truncation.max(from.loop_truncation);
    into.gsync_crossings += from.gsync_crossings;
}

/// A block-private shared-memory array.
#[derive(Debug, Clone)]
struct SharedBuf {
    dims: Vec<i64>,
    data: Vec<f32>,
}

impl SharedBuf {
    fn offset(&self, indices: &[i64]) -> Result<usize, ExecError> {
        if indices.len() != self.dims.len() {
            return Err(ExecError::Unsupported(format!(
                "shared array rank mismatch: {} vs {}",
                indices.len(),
                self.dims.len()
            )));
        }
        let mut off: i64 = 0;
        for (&ix, &extent) in indices.iter().zip(&self.dims) {
            if ix < 0 || ix >= extent {
                return Err(ExecError::Unsupported(format!(
                    "shared access out of bounds: {indices:?} in {:?}",
                    self.dims
                )));
            }
            off = off * extent + ix;
        }
        Ok(off as usize)
    }
}

/// Length cap for the lockstep partition timeline (long loops wrap; the
/// access pattern is periodic so aliasing is harmless).
const TIMELINE_CAP: usize = 16384;

struct BlockCtx<'a> {
    device: &'a mut Device,
    scalars: &'a HashMap<String, i64>,
    stats: &'a mut ExecStats,
    env: HashMap<String, Vec<Val>>,
    shared: HashMap<String, SharedBuf>,
    nt: usize,
    block: (u32, u32),
    cfg: LaunchConfig,
    mega: bool,
    steps: u64,
    request_ix: usize,
    depth: u32,
    max_outer_iters: Option<u64>,
    /// Effective fuel budget: `min(STEP_LIMIT, ExecOptions::fuel)`.
    step_limit: u64,
    deadline: Option<std::time::Instant>,
    /// Sanitize mode (see [`ExecOptions::sanitize`]).
    sanitize: bool,
    /// Array access spans for sanitizer findings.
    spans: &'a AccessSpans,
    /// Barrier epoch: incremented at every uniform barrier; shared-memory
    /// accesses in the same epoch by different lanes race when one writes.
    epoch: u32,
    /// Per-cell shadow state of each `__shared__` array (sanitize only).
    shared_shadow: HashMap<String, Vec<ShadowCell>>,
    /// Cumulative `__shared__` bytes declared by this block.
    shared_bytes: u64,
    /// SM this block is resident on (stamped into [`MemEvent`]s).
    sm_id: u32,
    /// Receives the global-memory transaction stream.
    sink: &'a mut dyn MemSink,
}

/// How often (in steps) the deadline is polled — a wall-clock read per
/// step would dominate the interpreter.
const DEADLINE_POLL_MASK: u64 = 4095;

/// Wraps a sanitizer finding, attaching the source span of the array it
/// refers to when the caller supplied one. Free-standing so it can run
/// while a shadow table is mutably borrowed.
fn sanitizer_err(spans: &AccessSpans, kind: SanitizerKind) -> ExecError {
    let span = kind.array().and_then(|a| spans.get(a)).copied();
    ExecError::Sanitizer(SanitizerError { kind, span })
}

impl BlockCtx<'_> {
    fn step(&mut self) -> Result<(), ExecError> {
        self.steps += 1;
        if self.steps > self.step_limit {
            return Err(ExecError::IterationLimit);
        }
        if self.steps & DEADLINE_POLL_MASK == 0 {
            if let Some(deadline) = self.deadline {
                if std::time::Instant::now() >= deadline {
                    return Err(ExecError::DeadlineExceeded);
                }
            }
        }
        Ok(())
    }

    fn warps(&self, mask: &[bool]) -> u64 {
        mask.chunks(32).filter(|c| c.iter().any(|&b| b)).count() as u64
    }

    fn builtin(&self, b: Builtin, lane: usize) -> i64 {
        let bx = self.cfg.block_x as i64;
        let by = self.cfg.block_y as i64;
        if self.mega {
            // 1-D mega-block: lane IS the absolute thread id.
            let lane = lane as i64;
            return match b {
                Builtin::IdX => lane,
                Builtin::TidX => lane % bx,
                Builtin::BidX => lane / bx,
                Builtin::IdY | Builtin::TidY | Builtin::BidY => 0,
                Builtin::BlockDimX => bx,
                Builtin::BlockDimY => 1,
                Builtin::GridDimX => self.cfg.grid_x as i64,
                Builtin::GridDimY => 1,
            };
        }
        let tidx = lane as i64 % bx;
        let tidy = lane as i64 / bx;
        let (bidx, bidy) = (self.block.0 as i64, self.block.1 as i64);
        match b {
            Builtin::IdX => bidx * bx + tidx,
            Builtin::IdY => bidy * by + tidy,
            Builtin::TidX => tidx,
            Builtin::TidY => tidy,
            Builtin::BidX => bidx,
            Builtin::BidY => bidy,
            Builtin::BlockDimX => bx,
            Builtin::BlockDimY => by,
            Builtin::GridDimX => self.cfg.grid_x as i64,
            Builtin::GridDimY => self.cfg.grid_y as i64,
        }
    }

    /// Decides whether a loop may be truncated for a timing trace:
    /// returns `(cap, full_trip_count, init, step)` for uniform counted
    /// top-level loops whose trip count exceeds the cap.
    fn truncation_cap(
        &mut self,
        l: &gpgpu_ast::ForLoop,
        init: &[Val],
        mask: &[bool],
    ) -> Option<(u64, u64, i64, i64)> {
        let cap = self.max_outer_iters?;
        if self.depth != 0 || self.mega {
            return None;
        }
        let gpgpu_ast::LoopUpdate::AddAssign(step) = l.update else {
            return None;
        };
        if step <= 0 || l.cmp != BinOp::Lt {
            return None;
        }
        // Uniform init across lanes.
        let i0 = init.first()?.as_i()?;
        if !init.iter().all(|v| v.as_i() == Some(i0)) {
            return None;
        }
        let bound = self.eval(&l.bound, mask).ok()?;
        let b0 = bound.first()?.as_i()?;
        if !bound.iter().all(|v| v.as_i() == Some(b0)) {
            return None;
        }
        let trips = ((b0 - i0).max(0) as u64).div_ceil(step as u64);
        (trips > cap).then_some((cap, trips, i0, step))
    }

    fn exec_body(&mut self, body: &[Stmt], mask: &[bool]) -> Result<(), ExecError> {
        for stmt in body {
            self.exec_stmt(stmt, mask)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt, mask: &[bool]) -> Result<(), ExecError> {
        self.step()?;
        match stmt {
            Stmt::DeclScalar { name, ty, init } => {
                let vals = match init {
                    Some(e) => self.eval(e, mask)?,
                    None => vec![Val::zero(*ty); self.nt],
                };
                self.env.insert(name.clone(), vals);
            }
            Stmt::DeclShared { name, ty, dims } => {
                if self.mega {
                    return Err(ExecError::BarrierMisuse(
                        "shared memory in a __gsync() kernel".into(),
                    ));
                }
                if *ty != gpgpu_ast::ScalarType::Float {
                    return Err(ExecError::Unsupported(
                        "only float shared arrays are supported".into(),
                    ));
                }
                let len: i64 = dims.iter().product();
                self.shared.insert(
                    name.clone(),
                    SharedBuf {
                        dims: dims.clone(),
                        data: vec![0.0; len as usize],
                    },
                );
                if self.sanitize {
                    let fresh = self
                        .shared_shadow
                        .insert(name.clone(), vec![ShadowCell::default(); len as usize])
                        .is_none();
                    if fresh {
                        self.shared_bytes += len as u64 * ty.size_bytes() as u64;
                    }
                    if !self.device.machine.fits_shared(self.shared_bytes) {
                        return Err(sanitizer_err(
                            self.spans,
                            SanitizerKind::SharedOverflow {
                                array: name.clone(),
                                bytes: self.shared_bytes,
                                limit: self.device.machine.shared_per_sm as u64,
                            },
                        ));
                    }
                }
            }
            Stmt::Assign { lhs, rhs } => {
                let vals = self.eval(rhs, mask)?;
                self.assign(lhs, &vals, mask)?;
            }
            Stmt::For(l) => {
                let init = self.eval(&l.init, mask)?;
                // Truncation: uniform counted top-level loops may be capped
                // for timing traces; the factor scales the counters later.
                let cap = self.truncation_cap(l, &init, mask);
                self.env.insert(l.var.clone(), init);
                let cond_expr = Expr::Binary(
                    l.cmp,
                    Box::new(Expr::Var(l.var.clone())),
                    Box::new(l.bound.clone()),
                );
                self.depth += 1;
                let result = if let Some((limit, trips, init0, step)) = cap {
                    // Truncated trace: execute `limit` iterations *strided
                    // across the full trip count*, so non-stationary bodies
                    // (triangular guards, rotated walks) are sampled
                    // representatively rather than from the first
                    // iterations only.
                    let mut r = Ok(());
                    'sampled: for j in 0..limit {
                        let trip = j * trips / limit;
                        let value = Val::I(init0 + trip as i64 * step);
                        let vals = match self.env.get_mut(&l.var) {
                            Some(v) => v,
                            None => {
                                r = Err(ExecError::UndefinedVar(l.var.clone()));
                                break 'sampled;
                            }
                        };
                        for v in vals.iter_mut() {
                            *v = value;
                        }
                        if let Err(e) = self.step() {
                            r = Err(e);
                            break 'sampled;
                        }
                        if let Err(e) = self.exec_body(&l.body, mask) {
                            r = Err(e);
                            break 'sampled;
                        }
                        self.stats.warp_insts += 2 * self.warps(mask);
                    }
                    if r.is_ok() {
                        let factor = trips as f64 / limit as f64;
                        if factor > self.stats.loop_truncation {
                            self.stats.loop_truncation = factor;
                        }
                    }
                    r
                } else {
                    let mut r = Ok(());
                    loop {
                        if let Err(e) = self.step() {
                            r = Err(e);
                            break;
                        }
                        let cond = match self.eval(&cond_expr, mask) {
                            Ok(c) => c,
                            Err(e) => {
                                r = Err(e);
                                break;
                            }
                        };
                        let active: Vec<bool> = mask
                            .iter()
                            .zip(&cond)
                            .map(|(&m, c)| m && c.is_true())
                            .collect();
                        if !active.iter().any(|&b| b) {
                            break;
                        }
                        if let Err(e) = self.exec_body(&l.body, &active) {
                            r = Err(e);
                            break;
                        }
                        let vals = match self.env.get_mut(&l.var) {
                            Some(v) => v,
                            None => {
                                r = Err(ExecError::UndefinedVar(l.var.clone()));
                                break;
                            }
                        };
                        for (lane, v) in vals.iter_mut().enumerate() {
                            if active[lane] {
                                let cur = match v.as_i() {
                                    Some(c) => c,
                                    None => {
                                        return Err(ExecError::Unsupported(
                                            "non-integer loop variable".into(),
                                        ))
                                    }
                                };
                                *v = Val::I(l.update.apply(cur));
                            }
                        }
                        // Loop-control overhead: one compare + one update.
                        self.stats.warp_insts += 2 * self.warps(&active);
                    }
                    r
                };
                self.depth -= 1;
                result?;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond, mask)?;
                let then_mask: Vec<bool> = mask
                    .iter()
                    .zip(&c)
                    .map(|(&m, v)| m && v.is_true())
                    .collect();
                if then_mask.iter().any(|&b| b) {
                    self.exec_body(then_body, &then_mask)?;
                }
                if !else_body.is_empty() {
                    let else_mask: Vec<bool> = mask
                        .iter()
                        .zip(&c)
                        .map(|(&m, v)| m && !v.is_true())
                        .collect();
                    if else_mask.iter().any(|&b| b) {
                        self.exec_body(else_body, &else_mask)?;
                    }
                }
            }
            Stmt::SyncThreads => {
                if self.mega {
                    return Err(ExecError::BarrierMisuse(
                        "__syncthreads() in a __gsync() kernel".into(),
                    ));
                }
                if !mask.iter().all(|&b| b) {
                    return Err(self.divergent_barrier(mask));
                }
                // The barrier closes the race window: accesses before and
                // after it are ordered for every pair of threads.
                self.epoch += 1;
            }
            Stmt::GlobalSync => {
                if !self.mega {
                    return Err(ExecError::BarrierMisuse(
                        "__gsync() requires mega-block execution".into(),
                    ));
                }
                // Lock-step execution makes the barrier a no-op; it must
                // still be mask-uniform.
                if !mask.iter().all(|&b| b) {
                    return Err(self.divergent_barrier(mask));
                }
                self.epoch += 1;
                self.stats.gsync_crossings += 1;
            }
            Stmt::CallStmt(name, _) => {
                return Err(ExecError::Unsupported(format!(
                    "statement-level call `{name}`"
                )));
            }
        }
        Ok(())
    }

    /// Divergent-barrier error: a spanless sanitizer finding in sanitize
    /// mode, the classic [`ExecError::DivergentSync`] otherwise.
    fn divergent_barrier(&self, mask: &[bool]) -> ExecError {
        if self.sanitize {
            ExecError::Sanitizer(SanitizerError {
                kind: SanitizerKind::BarrierDivergence {
                    active: mask.iter().filter(|&&b| b).count(),
                    total: self.nt,
                },
                span: None,
            })
        } else {
            ExecError::DivergentSync
        }
    }

    fn assign(&mut self, lhs: &LValue, vals: &[Val], mask: &[bool]) -> Result<(), ExecError> {
        match lhs {
            LValue::Var(name) => {
                let slot = self
                    .env
                    .get_mut(name)
                    .ok_or_else(|| ExecError::UndefinedVar(name.clone()))?;
                for lane in 0..self.nt {
                    if mask[lane] {
                        slot[lane] = vals[lane];
                    }
                }
            }
            LValue::Field(name, field) => {
                let lane_ix = field.lane();
                let slot = self
                    .env
                    .get_mut(name)
                    .ok_or_else(|| ExecError::UndefinedVar(name.clone()))?;
                for lane in 0..self.nt {
                    if mask[lane] {
                        let x = vals[lane].as_f().ok_or_else(|| {
                            ExecError::Unsupported("non-scalar component write".into())
                        })?;
                        if !slot[lane].set_component(lane_ix, x) {
                            return Err(ExecError::Unsupported(
                                "component write to scalar".into(),
                            ));
                        }
                    }
                }
            }
            LValue::Index { array, indices } => {
                let idx_vals = self.eval_indices(indices, mask)?;
                if self.shared.contains_key(array) {
                    self.sanitize_shared(array, &idx_vals, mask, true)?;
                    self.trace_shared(array, &idx_vals, mask)?;
                    let buf = self
                        .shared
                        .get_mut(array)
                        .ok_or_else(|| ExecError::UndefinedVar(array.clone()))?;
                    for lane in 0..self.nt {
                        if mask[lane] {
                            let off = buf.offset(&idx_vals[lane])?;
                            buf.data[off] = vals[lane].as_f().ok_or_else(|| {
                                ExecError::Unsupported("vector store to shared".into())
                            })?;
                        }
                    }
                } else {
                    self.sanitize_global(array, &idx_vals, mask, true)?;
                    self.trace_global(array, &idx_vals, mask, true)?;
                    let buf = self.device.buffer_mut(array)?;
                    for lane in 0..self.nt {
                        if mask[lane] {
                            buf.write(&idx_vals[lane], vals[lane])?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Sanitize-mode pre-check of one vector global access: true
    /// out-of-bounds, reads of never-written padding, and uninitialized
    /// reads. Runs before the access so the finding, not a generic device
    /// fault, reaches the caller.
    fn sanitize_global(
        &self,
        array: &str,
        idx_vals: &[Vec<i64>],
        mask: &[bool],
        write: bool,
    ) -> Result<(), ExecError> {
        if !self.sanitize {
            return Ok(());
        }
        let buf = self.device.buffer(array)?;
        for lane in 0..self.nt {
            if !mask[lane] {
                continue;
            }
            let idx = &idx_vals[lane];
            match buf.elem_offset(idx) {
                Ok(off) => {
                    if !write && !buf.cell_initialized(off) {
                        let kind = if buf.is_padding(idx) {
                            SanitizerKind::GlobalOutOfBounds {
                                array: array.to_string(),
                                indices: idx.clone(),
                                write: false,
                                padding: true,
                            }
                        } else {
                            SanitizerKind::UninitializedRead {
                                array: array.to_string(),
                                indices: idx.clone(),
                                shared: false,
                            }
                        };
                        return Err(sanitizer_err(self.spans, kind));
                    }
                }
                Err(DeviceError::OutOfBounds { .. }) => {
                    return Err(sanitizer_err(
                        self.spans,
                        SanitizerKind::GlobalOutOfBounds {
                            array: array.to_string(),
                            indices: idx.clone(),
                            write,
                            padding: false,
                        },
                    ));
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Sanitize-mode pre-check of one vector shared access: bounds,
    /// uninitialized reads, and same-epoch races between lanes.
    fn sanitize_shared(
        &mut self,
        array: &str,
        idx_vals: &[Vec<i64>],
        mask: &[bool],
        write: bool,
    ) -> Result<(), ExecError> {
        if !self.sanitize {
            return Ok(());
        }
        let spans = self.spans;
        let epoch = self.epoch;
        let nt = self.nt;
        let dims = match self.shared.get(array) {
            Some(b) => b.dims.clone(),
            None => return Ok(()),
        };
        let Some(cells) = self.shared_shadow.get_mut(array) else {
            return Ok(());
        };
        for lane in 0..nt {
            if !mask[lane] {
                continue;
            }
            let idx = &idx_vals[lane];
            let mut off: i64 = 0;
            let mut oob = idx.len() != dims.len();
            if !oob {
                for (&ix, &extent) in idx.iter().zip(&dims) {
                    if ix < 0 || ix >= extent {
                        oob = true;
                        break;
                    }
                    off = off * extent + ix;
                }
            }
            if oob {
                return Err(sanitizer_err(
                    spans,
                    SanitizerKind::SharedOutOfBounds {
                        array: array.to_string(),
                        indices: idx.clone(),
                        write,
                    },
                ));
            }
            let cell = &mut cells[off as usize];
            if write {
                if let Some((other, write_write)) = cell.record_write(epoch, lane as u32) {
                    return Err(sanitizer_err(
                        spans,
                        SanitizerKind::SharedRace {
                            array: array.to_string(),
                            offset: off as usize,
                            lanes: (lane as u32, other),
                            write_write,
                        },
                    ));
                }
            } else {
                if !cell.written {
                    return Err(sanitizer_err(
                        spans,
                        SanitizerKind::UninitializedRead {
                            array: array.to_string(),
                            indices: idx.clone(),
                            shared: true,
                        },
                    ));
                }
                if let Some(other) = cell.record_read(epoch, lane as u32) {
                    return Err(sanitizer_err(
                        spans,
                        SanitizerKind::SharedRace {
                            array: array.to_string(),
                            offset: off as usize,
                            lanes: (other, lane as u32),
                            write_write: false,
                        },
                    ));
                }
            }
        }
        Ok(())
    }

    /// Evaluates index expressions to concrete per-lane coordinates.
    fn eval_indices(
        &mut self,
        indices: &[Expr],
        mask: &[bool],
    ) -> Result<Vec<Vec<i64>>, ExecError> {
        let mut per_dim: Vec<Vec<Val>> = Vec::with_capacity(indices.len());
        for ix in indices {
            per_dim.push(self.eval(ix, mask)?);
        }
        let mut out = vec![Vec::with_capacity(indices.len()); self.nt];
        for lane in 0..self.nt {
            for dim in &per_dim {
                out[lane].push(dim[lane].as_i().unwrap_or(0));
            }
        }
        Ok(out)
    }

    /// Records global-memory traffic for one vector access, streaming one
    /// [`MemEvent`] per touched 32-byte line into the sink.
    fn trace_global(
        &mut self,
        array: &str,
        idx_vals: &[Vec<i64>],
        mask: &[bool],
        write: bool,
    ) -> Result<(), ExecError> {
        let buffer: &Buffer = self.device.buffer(array)?;
        let elem_bytes = buffer.layout.elem.size_bytes() as i64;
        let geometry = self.device.machine.partitions;
        let strict = self.device.machine.strict_coalescing;
        let nparts = geometry.count as usize;
        let mut lines: Vec<i64> = Vec::with_capacity(32);
        let mut addrs: Vec<i64> = Vec::with_capacity(16);
        for chunk_start in (0..self.nt).step_by(16) {
            lines.clear();
            addrs.clear();
            let mut lane_lines = 0u64;
            let mut active_lanes = 0u64;
            for lane in chunk_start..(chunk_start + 16).min(self.nt) {
                if !mask[lane] {
                    continue;
                }
                active_lanes += 1;
                let off = buffer.elem_offset(&idx_vals[lane])?;
                let addr = buffer.byte_addr(off);
                // Useful bytes are deduplicated: a broadcast serves all
                // lanes from one element.
                if !addrs.contains(&addr) {
                    addrs.push(addr);
                    self.stats.useful_bytes += elem_bytes as u64;
                }
                let mut line = addr / 32;
                let last = (addr + elem_bytes - 1) / 32;
                lane_lines += (last - line + 1) as u64;
                while line <= last {
                    if !lines.contains(&line) {
                        lines.push(line);
                    }
                    line += 1;
                }
            }
            if addrs.is_empty() {
                continue;
            }
            // G80 strict rule (paper §2): unless the half warp forms one
            // aligned sequential segment, every thread issues its own
            // (32-byte-minimum) transaction — no line-level grouping.
            let perfect = {
                let mut sorted = addrs.clone();
                sorted.sort_unstable();
                // No duplicate addresses (broadcasts are not coalesced on
                // G80), aligned base, sequential element spacing.
                sorted.len() as u64 == active_lanes
                    && sorted[0] % (16 * elem_bytes) == 0
                    && sorted
                        .windows(2)
                        .all(|w| w[1] - w[0] == elem_bytes)
            };
            let (transactions, bytes) = if strict && !perfect {
                let n = lane_lines.max(active_lanes);
                (n, n * 32)
            } else {
                (lines.len() as u64, lines.len() as u64 * 32)
            };
            self.stats.gmem_requests += 1;
            self.stats.global_transactions += transactions;
            self.stats.global_bytes += bytes;
            let tick = self.request_ix as u64;
            let ts = self.request_ix % TIMELINE_CAP;
            self.request_ix += 1;
            if self.stats.partition_timeline.len() <= ts {
                self.stats
                    .partition_timeline
                    .resize(ts + 1, vec![0; nparts]);
            }
            for &line in &lines {
                let p = geometry.partition_of(line * 32) as usize;
                self.stats.partition_hits[p] += 1;
                self.stats.partition_timeline[ts][p] += 1;
                self.sink.record(MemEvent {
                    line,
                    write,
                    sm: self.sm_id,
                    tick,
                });
            }
        }
        Ok(())
    }

    /// Records shared-memory traffic and bank conflicts.
    fn trace_shared(
        &mut self,
        array: &str,
        idx_vals: &[Vec<i64>],
        mask: &[bool],
    ) -> Result<(), ExecError> {
        let banks = self.device.machine.shared_banks as i64;
        let buf = &self.shared[array];
        for chunk_start in (0..self.nt).step_by(16) {
            let mut words: Vec<i64> = Vec::with_capacity(16);
            for lane in chunk_start..(chunk_start + 16).min(self.nt) {
                if !mask[lane] {
                    continue;
                }
                words.push(buf.offset(&idx_vals[lane])? as i64);
            }
            if words.is_empty() {
                continue;
            }
            self.stats.shared_accesses += 1;
            // Conflict degree: max distinct words mapping to one bank
            // (same-word broadcast is free).
            let mut degree = 1i64;
            for b in 0..banks {
                let mut distinct: Vec<i64> = Vec::new();
                for &w in &words {
                    if w % banks == b && !distinct.contains(&w) {
                        distinct.push(w);
                    }
                }
                degree = degree.max(distinct.len() as i64);
            }
            self.stats.shared_conflict_cycles += (degree - 1) as u64;
        }
        Ok(())
    }

    fn eval(&mut self, e: &Expr, mask: &[bool]) -> Result<Vec<Val>, ExecError> {
        match e {
            Expr::Int(v) => Ok(vec![Val::I(*v); self.nt]),
            Expr::Float(v) => Ok(vec![Val::F(*v as f32); self.nt]),
            Expr::Builtin(b) => Ok((0..self.nt).map(|l| Val::I(self.builtin(*b, l))).collect()),
            Expr::Var(name) => {
                if let Some(vals) = self.env.get(name) {
                    return Ok(vals.clone());
                }
                if let Some(&v) = self.scalars.get(name) {
                    return Ok(vec![Val::I(v); self.nt]);
                }
                Err(ExecError::UndefinedVar(name.clone()))
            }
            Expr::Index { array, indices } => {
                let idx_vals = self.eval_indices(indices, mask)?;
                if self.shared.contains_key(array) {
                    self.sanitize_shared(array, &idx_vals, mask, false)?;
                    self.trace_shared(array, &idx_vals, mask)?;
                    let buf = &self.shared[array];
                    let mut out = vec![Val::F(0.0); self.nt];
                    for lane in 0..self.nt {
                        if mask[lane] {
                            out[lane] = Val::F(buf.data[buf.offset(&idx_vals[lane])?]);
                        }
                    }
                    Ok(out)
                } else {
                    self.sanitize_global(array, &idx_vals, mask, false)?;
                    self.trace_global(array, &idx_vals, mask, false)?;
                    let buf = self.device.buffer(array)?;
                    let mut out = vec![Val::F(0.0); self.nt];
                    for lane in 0..self.nt {
                        if mask[lane] {
                            out[lane] = buf.read(&idx_vals[lane])?;
                        }
                    }
                    Ok(out)
                }
            }
            Expr::Field(base, field) => {
                let vals = self.eval(base, mask)?;
                let mut out = vec![Val::F(0.0); self.nt];
                for lane in 0..self.nt {
                    if mask[lane] {
                        out[lane] = Val::F(vals[lane].component(field.lane()).ok_or_else(
                            || ExecError::Unsupported(format!(".{} on scalar", field_name(field))),
                        )?);
                    }
                }
                Ok(out)
            }
            Expr::Unary(op, inner) => {
                let vals = self.eval(inner, mask)?;
                self.stats.warp_insts += self.warps(mask);
                vals.into_iter()
                    .map(|v| match op {
                        UnOp::Neg => match v {
                            Val::I(x) => Ok(Val::I(-x)),
                            Val::F(x) => Ok(Val::F(-x)),
                            _ => Err(ExecError::Unsupported("negate vector".into())),
                        },
                        UnOp::Not => Ok(Val::I(i64::from(!v.is_true()))),
                    })
                    .collect()
            }
            Expr::Binary(op, l, r) => {
                let lv = self.eval(l, mask)?;
                let rv = self.eval(r, mask)?;
                self.stats.warp_insts += self.warps(mask);
                let mut out = Vec::with_capacity(self.nt);
                let mut flops = 0u64;
                for (lane, (a, b)) in lv.into_iter().zip(rv).enumerate() {
                    let v = binop(*op, a, b)?;
                    if mask[lane]
                        && !op.is_predicate()
                        && (matches!(a_ty(a), 1) || matches!(a_ty(b), 1))
                    {
                        flops += 1;
                    }
                    out.push(v);
                }
                self.stats.flops += flops;
                Ok(out)
            }
            Expr::Call(name, args) => {
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval(a, mask)?);
                }
                self.stats.warp_insts += self.warps(mask);
                self.stats.flops += mask.iter().filter(|&&b| b).count() as u64;
                let mut out = Vec::with_capacity(self.nt);
                for lane in 0..self.nt {
                    let args: Vec<Val> = arg_vals.iter().map(|v| v[lane]).collect();
                    out.push(intrinsic(name, &args)?);
                }
                Ok(out)
            }
            Expr::Select(c, t, f) => {
                // Branches evaluate under refined masks so an inactive
                // lane's side never touches memory.
                let cv = self.eval(c, mask)?;
                let t_mask: Vec<bool> = mask
                    .iter()
                    .zip(&cv)
                    .map(|(&m, v)| m && v.is_true())
                    .collect();
                let f_mask: Vec<bool> = mask
                    .iter()
                    .zip(&cv)
                    .map(|(&m, v)| m && !v.is_true())
                    .collect();
                let tv = self.eval(t, &t_mask)?;
                let fv = self.eval(f, &f_mask)?;
                self.stats.warp_insts += self.warps(mask);
                Ok((0..self.nt)
                    .map(|l| if cv[l].is_true() { tv[l] } else { fv[l] })
                    .collect())
            }
            Expr::Cast(ty, inner) => {
                let vals = self.eval(inner, mask)?;
                vals.into_iter()
                    .map(|v| match ty {
                        gpgpu_ast::ScalarType::Int => {
                            v.as_i().map(Val::I).ok_or_else(|| {
                                ExecError::Unsupported("cast vector to int".into())
                            })
                        }
                        gpgpu_ast::ScalarType::Float => {
                            v.as_f().map(Val::F).ok_or_else(|| {
                                ExecError::Unsupported("cast vector to float".into())
                            })
                        }
                        _ => Err(ExecError::Unsupported("cast to vector type".into())),
                    })
                    .collect()
            }
        }
    }
}

fn field_name(f: &Field) -> &'static str {
    f.name()
}

/// 1 for float operands, 0 otherwise (flop accounting).
fn a_ty(v: Val) -> u8 {
    match v {
        Val::F(_) => 1,
        _ => 0,
    }
}

fn binop(op: BinOp, a: Val, b: Val) -> Result<Val, ExecError> {
    use BinOp::*;
    // Integer × integer stays integral; anything touching a float promotes.
    if let (Val::I(x), Val::I(y)) = (a, b) {
        let v = match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(ExecError::Unsupported("integer division by zero".into()));
                }
                x / y
            }
            Rem => {
                if y == 0 {
                    return Err(ExecError::Unsupported("integer modulo by zero".into()));
                }
                x.rem_euclid(y)
            }
            Shl => x << (y & 63),
            Shr => x >> (y & 63),
            Lt => i64::from(x < y),
            Le => i64::from(x <= y),
            Gt => i64::from(x > y),
            Ge => i64::from(x >= y),
            Eq => i64::from(x == y),
            Ne => i64::from(x != y),
            And => i64::from(x != 0 && y != 0),
            Or => i64::from(x != 0 || y != 0),
        };
        return Ok(Val::I(v));
    }
    let (x, y) = match (a.as_f(), b.as_f()) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            return Err(ExecError::Unsupported(
                "arithmetic on vector values".into(),
            ))
        }
    };
    let v = match op {
        Add => Val::F(x + y),
        Sub => Val::F(x - y),
        Mul => Val::F(x * y),
        Div => Val::F(x / y),
        Rem => Val::F(x % y),
        Shl | Shr => return Err(ExecError::Unsupported("shift on floats".into())),
        Lt => Val::I(i64::from(x < y)),
        Le => Val::I(i64::from(x <= y)),
        Gt => Val::I(i64::from(x > y)),
        Ge => Val::I(i64::from(x >= y)),
        Eq => Val::I(i64::from(x == y)),
        Ne => Val::I(i64::from(x != y)),
        And => Val::I(i64::from(x != 0.0 && y != 0.0)),
        Or => Val::I(i64::from(x != 0.0 || y != 0.0)),
    };
    Ok(v)
}

fn intrinsic(name: &str, args: &[Val]) -> Result<Val, ExecError> {
    let f = |i: usize| -> Result<f32, ExecError> {
        args.get(i)
            .and_then(|v| v.as_f())
            .ok_or_else(|| ExecError::Unsupported(format!("bad argument {i} to {name}")))
    };
    Ok(match (name, args.len()) {
        ("sqrtf" | "sqrt", 1) => Val::F(f(0)?.sqrt()),
        ("fabsf" | "fabs" | "absf", 1) => Val::F(f(0)?.abs()),
        ("expf", 1) => Val::F(f(0)?.exp()),
        ("logf", 1) => Val::F(f(0)?.ln()),
        ("sinf", 1) => Val::F(f(0)?.sin()),
        ("cosf", 1) => Val::F(f(0)?.cos()),
        ("floorf", 1) => Val::F(f(0)?.floor()),
        ("fmaxf" | "maxf", 2) => Val::F(f(0)?.max(f(1)?)),
        ("fminf" | "minf", 2) => Val::F(f(0)?.min(f(1)?)),
        ("min", 2) => match (args[0], args[1]) {
            (Val::I(a), Val::I(b)) => Val::I(a.min(b)),
            _ => Val::F(f(0)?.min(f(1)?)),
        },
        ("max", 2) => match (args[0], args[1]) {
            (Val::I(a), Val::I(b)) => Val::I(a.max(b)),
            _ => Val::F(f(0)?.max(f(1)?)),
        },
        _ => {
            return Err(ExecError::Unsupported(format!(
                "intrinsic `{name}` with {} argument(s)",
                args.len()
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineDesc;
    use gpgpu_analysis::{resolve_layouts_padded, Bindings};
    use gpgpu_ast::parse_kernel;

    /// Builds a device with padded buffers for every kernel array.
    fn device_for(kernel: &Kernel, bindings: &Bindings, machine: MachineDesc) -> Device {
        let layouts = resolve_layouts_padded(kernel, bindings).unwrap();
        let mut dev = Device::new(machine);
        for p in kernel.array_params() {
            dev.alloc(layouts[&p.name].clone());
        }
        dev
    }

    fn binds(pairs: &[(&str, i64)]) -> Bindings {
        pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn scale_kernel_executes() {
        let k = parse_kernel(
            "__global__ void scale(float a[n], float c[n], int n) { c[idx] = a[idx] * 2.0f; }",
        )
        .unwrap();
        let b = binds(&[("n", 64)]);
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        let src: Vec<f32> = (0..64).map(|v| v as f32).collect();
        dev.buffer_mut("a").unwrap().upload(&src);
        let cfg = LaunchConfig::one_d(4, 16);
        let stats = launch(&k, &cfg, &b, &mut dev, &ExecOptions::default()).unwrap();
        let out = dev.buffer("c").unwrap().download();
        assert_eq!(out[10], 20.0);
        assert_eq!(out[63], 126.0);
        assert_eq!(stats.blocks_executed, 4);
        // Coalesced loads: 64 lanes × 4 B useful; lines = 64B/segment.
        assert_eq!(stats.coalescing_efficiency(), 1.0);
    }

    #[test]
    fn naive_mm_computes_reference_product() {
        let k = parse_kernel(
            r#"__global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
                float sum = 0.0f;
                for (int i = 0; i < w; i = i + 1) { sum += a[idy][i] * b[i][idx]; }
                c[idy][idx] = sum;
            }"#,
        )
        .unwrap();
        let n = 8i64;
        let bind = binds(&[("n", n), ("w", n)]);
        let mut dev = device_for(&k, &bind, MachineDesc::gtx280());
        let av: Vec<f32> = (0..n * n).map(|v| (v % 7) as f32).collect();
        let bv: Vec<f32> = (0..n * n).map(|v| (v % 5) as f32 - 2.0).collect();
        dev.buffer_mut("a").unwrap().upload(&av);
        dev.buffer_mut("b").unwrap().upload(&bv);
        let cfg = LaunchConfig {
            grid_x: 2,
            grid_y: 8,
            block_x: 4,
            block_y: 1,
        };
        launch(&k, &cfg, &bind, &mut dev, &ExecOptions::default()).unwrap();
        let c = dev.buffer("c").unwrap().download();
        for y in 0..n {
            for x in 0..n {
                let mut expect = 0.0f32;
                for i in 0..n {
                    expect += av[(y * n + i) as usize] * bv[(i * n + x) as usize];
                }
                assert_eq!(c[(y * n + x) as usize], expect, "at ({x},{y})");
            }
        }
    }

    #[test]
    fn block_clusters_match_serial_execution() {
        let k = parse_kernel(
            r#"__global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
                float sum = 0.0f;
                for (int i = 0; i < w; i = i + 1) { sum += a[idy][i] * b[i][idx]; }
                c[idy][idx] = sum;
            }"#,
        )
        .unwrap();
        let n = 16i64;
        let bind = binds(&[("n", n), ("w", n)]);
        let av: Vec<f32> = (0..n * n).map(|v| (v % 7) as f32).collect();
        let bv: Vec<f32> = (0..n * n).map(|v| (v % 5) as f32 - 2.0).collect();
        let cfg = LaunchConfig {
            grid_x: 4,
            grid_y: 16,
            block_x: 4,
            block_y: 1,
        };
        let run = |clusters: usize| {
            let mut dev = device_for(&k, &bind, MachineDesc::gtx280());
            dev.buffer_mut("a").unwrap().upload(&av);
            dev.buffer_mut("b").unwrap().upload(&bv);
            let mut sink = VecSink::default();
            let stats = launch_with_sink(
                &k,
                &cfg,
                &bind,
                &mut dev,
                &ExecOptions {
                    block_clusters: clusters,
                    ..ExecOptions::default()
                },
                &mut sink,
            )
            .unwrap();
            (dev.buffer("c").unwrap().download(), stats, sink.events)
        };
        let (serial_c, serial_stats, serial_events) = run(1);
        let (par_c, par_stats, par_events) = run(4);
        assert_eq!(serial_c, par_c);
        assert_eq!(serial_stats, par_stats);
        // Clusters are contiguous spans replayed in order, so the event
        // stream is bit-identical to the serial one.
        assert_eq!(serial_events, par_events);
        assert!(!serial_events.is_empty());
    }

    #[test]
    fn block_clusters_respect_sampling() {
        let k = parse_kernel("__global__ void f(float a[n], int n) { a[idx] = 1.0f; }").unwrap();
        let b = binds(&[("n", 4096)]);
        let run = |clusters: usize| {
            let mut dev = device_for(&k, &b, MachineDesc::gtx280());
            let stats = launch(
                &k,
                &LaunchConfig::one_d(256, 16),
                &b,
                &mut dev,
                &ExecOptions {
                    sample_blocks: Some(6),
                    sample_spread: Some(120),
                    block_clusters: clusters,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            (stats, dev.buffer("a").unwrap().download())
        };
        let (serial, serial_a) = run(1);
        let (par, par_a) = run(3);
        assert_eq!(serial.blocks_executed, 6);
        assert_eq!(serial, par);
        assert_eq!(serial_a, par_a);
    }

    #[test]
    fn divergent_sync_detected() {
        let k = parse_kernel(
            "__global__ void f(float a[n], int n) {
                if (tidx < 8) { __syncthreads(); }
                a[idx] = 0.0f;
            }",
        )
        .unwrap();
        let b = binds(&[("n", 32)]);
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        let err = launch(
            &k,
            &LaunchConfig::one_d(2, 16),
            &b,
            &mut dev,
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::DivergentSync);
    }

    #[test]
    fn out_of_bounds_reported_with_indices() {
        let k = parse_kernel(
            "__global__ void f(float a[n], int n) { a[idx + 1] = 0.0f; }",
        )
        .unwrap();
        let b = binds(&[("n", 16)]);
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        let err = launch(
            &k,
            &LaunchConfig::one_d(1, 16),
            &b,
            &mut dev,
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Device(DeviceError::OutOfBounds { .. })));
    }

    #[test]
    fn gsync_reduction_runs_in_mega_mode() {
        let k = parse_kernel(
            r#"#pragma gpgpu output c
            __global__ void rd(float a[len], float c[1], int len) {
                for (int s = 128; s > 0; s = s >> 1) {
                    if (idx < s) { a[idx] = a[idx] + a[idx + s]; }
                    __gsync();
                }
                if (idx == 0) { c[0] = a[0]; }
            }"#,
        )
        .unwrap();
        let b = binds(&[("len", 256)]);
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        let src: Vec<f32> = (0..256).map(|v| v as f32).collect();
        dev.buffer_mut("a").unwrap().upload(&src);
        launch(
            &k,
            &LaunchConfig::one_d(16, 16),
            &b,
            &mut dev,
            &ExecOptions::default(),
        )
        .unwrap();
        let c = dev.buffer("c").unwrap().download();
        assert_eq!(c[0], (0..256).sum::<i32>() as f32);
    }

    #[test]
    fn shared_memory_staging_works() {
        let k = parse_kernel(
            "__global__ void f(float a[n], float c[n], int n) {
                __shared__ float s0[16];
                s0[tidx] = a[idx];
                __syncthreads();
                c[idx] = s0[15 - tidx];
            }",
        )
        .unwrap();
        let b = binds(&[("n", 16)]);
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        dev.buffer_mut("a")
            .unwrap()
            .upload(&(0..16).map(|v| v as f32).collect::<Vec<_>>());
        launch(
            &k,
            &LaunchConfig::one_d(1, 16),
            &b,
            &mut dev,
            &ExecOptions::default(),
        )
        .unwrap();
        let c = dev.buffer("c").unwrap().download();
        assert_eq!(c[0], 15.0);
        assert_eq!(c[15], 0.0);
    }

    #[test]
    fn coalescing_efficiency_distinguishes_access_patterns() {
        // Column walk: each lane touches its own 32-byte line.
        let col = parse_kernel(
            "__global__ void f(float a[n][n], float c[n][n], int n) {
                c[idy][idx] = a[idx][idy];
            }",
        )
        .unwrap();
        let b = binds(&[("n", 64)]);
        let mut dev = device_for(&col, &b, MachineDesc::gtx280());
        let cfg = LaunchConfig {
            grid_x: 4,
            grid_y: 64,
            block_x: 16,
            block_y: 1,
        };
        let stats = launch(&col, &cfg, &b, &mut dev, &ExecOptions::default()).unwrap();
        // Reads waste 7/8 of each line; writes are perfect. Efficiency ~2/9… below 1.
        assert!(stats.coalescing_efficiency() < 0.5, "{stats:?}");

        let row = parse_kernel(
            "__global__ void f(float a[n][n], float c[n][n], int n) {
                c[idy][idx] = a[idy][idx];
            }",
        )
        .unwrap();
        let mut dev = device_for(&row, &b, MachineDesc::gtx280());
        let stats = launch(&row, &cfg, &b, &mut dev, &ExecOptions::default()).unwrap();
        assert_eq!(stats.coalescing_efficiency(), 1.0);
    }

    #[test]
    fn bank_conflicts_counted_and_padding_fixes_them() {
        // Stride-16 shared walk: every lane hits bank 0.
        let conflicted = parse_kernel(
            "__global__ void f(float c[n], int n) {
                __shared__ float s0[16][16];
                s0[tidx][0] = 1.0f;
                __syncthreads();
                c[idx] = s0[tidx][0];
            }",
        )
        .unwrap();
        let b = binds(&[("n", 16)]);
        let mut dev = device_for(&conflicted, &b, MachineDesc::gtx280());
        let stats = launch(
            &conflicted,
            &LaunchConfig::one_d(1, 16),
            &b,
            &mut dev,
            &ExecOptions::default(),
        )
        .unwrap();
        assert!(stats.shared_conflict_cycles >= 30, "{stats:?}");

        let padded = parse_kernel(
            "__global__ void f(float c[n], int n) {
                __shared__ float s0[16][17];
                s0[tidx][0] = 1.0f;
                __syncthreads();
                c[idx] = s0[tidx][0];
            }",
        )
        .unwrap();
        let mut dev = device_for(&padded, &b, MachineDesc::gtx280());
        let stats = launch(
            &padded,
            &LaunchConfig::one_d(1, 16),
            &b,
            &mut dev,
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(stats.shared_conflict_cycles, 0, "{stats:?}");
    }

    #[test]
    fn partition_histogram_shows_camping() {
        // mv-style row walk at 4k: every block start lands in partition 0.
        let k = parse_kernel(
            "__global__ void mv(float a[n][w], float c[n], int n, int w) {
                float s = 0.0f;
                for (int i = 0; i < 64; i = i + 1) { s += a[idx][i]; }
                c[idx] = s;
            }",
        )
        .unwrap();
        let b = binds(&[("n", 64), ("w", 4096)]);
        let layouts = resolve_layouts_padded(&k, &b).unwrap();
        let mut dev = Device::new(MachineDesc::gtx280());
        for p in k.array_params() {
            dev.alloc_phantom(layouts[&p.name].clone());
        }
        let cfg = LaunchConfig::one_d(4, 16);
        let stats = launch(&k, &cfg, &b, &mut dev, &ExecOptions::default()).unwrap();
        assert!(stats.partition_imbalance() > 2.0, "{stats:?}");
    }

    #[test]
    fn sampling_executes_subset_of_blocks() {
        let k = parse_kernel(
            "__global__ void f(float c[n], int n) { c[idx] = 1.0f; }",
        )
        .unwrap();
        let b = binds(&[("n", 256)]);
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        let cfg = LaunchConfig::one_d(16, 16);
        let stats = launch(
            &k,
            &cfg,
            &b,
            &mut dev,
            &ExecOptions {
                sample_blocks: Some(4),
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(stats.blocks_executed, 4);
        assert_eq!(stats.total_blocks, 16);
        let scaled = stats.scaled(4.0);
        assert_eq!(scaled.gmem_requests, stats.gmem_requests * 4);
    }

    #[test]
    fn float2_kernel_reads_pairs() {
        let k = parse_kernel(
            "__global__ void f(float2 a[n], float c[n], int n) {
                float2 v = a[idx];
                c[idx] = v.x + v.y;
            }",
        )
        .unwrap();
        let b = binds(&[("n", 16)]);
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        dev.buffer_mut("a")
            .unwrap()
            .upload(&(0..32).map(|v| v as f32).collect::<Vec<_>>());
        launch(
            &k,
            &LaunchConfig::one_d(1, 16),
            &b,
            &mut dev,
            &ExecOptions::default(),
        )
        .unwrap();
        let c = dev.buffer("c").unwrap().download();
        assert_eq!(c[0], 1.0);
        assert_eq!(c[15], 30.0 + 31.0);
    }

    #[test]
    fn strict_coalescing_punishes_non_segment_accesses() {
        // A broadcast read: relaxed (GT200) moves one 32-byte line per half
        // warp; strict (G80) serializes one transaction per thread.
        let k = parse_kernel(
            "__global__ void f(float a[n][w], float c[n], int n, int w) {
                c[idx] = a[idy][0];
            }",
        )
        .unwrap();
        let b = binds(&[("n", 64), ("w", 64)]);
        let run = |machine: MachineDesc| {
            let mut dev = device_for(&k, &b, machine);
            launch(
                &k,
                &LaunchConfig::one_d(4, 16),
                &b,
                &mut dev,
                &ExecOptions::default(),
            )
            .unwrap()
        };
        let relaxed = run(MachineDesc::gtx280());
        let strict = run(MachineDesc::gtx8800());
        // Stores identical; the broadcast load differs: 1 line vs 16.
        assert!(
            strict.global_transactions > relaxed.global_transactions * 4,
            "strict {} vs relaxed {}",
            strict.global_transactions,
            relaxed.global_transactions
        );
        // Perfectly coalesced kernels are unaffected by strictness.
        let k2 = parse_kernel(
            "__global__ void g(float a[n], float c[n], int n) { c[idx] = a[idx]; }",
        )
        .unwrap();
        let b2 = binds(&[("n", 64)]);
        let run2 = |machine: MachineDesc| {
            let mut dev = device_for(&k2, &b2, machine);
            launch(
                &k2,
                &LaunchConfig::one_d(4, 16),
                &b2,
                &mut dev,
                &ExecOptions::default(),
            )
            .unwrap()
        };
        assert_eq!(
            run2(MachineDesc::gtx8800()).global_transactions,
            run2(MachineDesc::gtx280()).global_transactions
        );
    }

    #[test]
    fn gsync_crossings_counted() {
        let k = parse_kernel(
            "#pragma gpgpu output c
            __global__ void rd(float a[len], float c[1], int len) {
                for (int s = len / 2; s > 0; s = s >> 1) {
                    if (idx < s) { a[idx] = a[idx] + a[idx + s]; }
                    __gsync();
                }
                if (idx == 0) { c[0] = a[0]; }
            }",
        )
        .unwrap();
        let b = binds(&[("len", 256)]);
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        let stats = launch(
            &k,
            &LaunchConfig::one_d(16, 16),
            &b,
            &mut dev,
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(stats.gsync_crossings, 8); // log2(256)
    }

    #[test]
    fn truncated_loops_sample_strided_iterations() {
        // A triangular guard: first-iterations-only sampling would see
        // almost no guarded work; strided sampling sees ~half.
        let k = parse_kernel(
            "__global__ void f(float a[n][n], float c[n], int n) {
                float s = 0.0f;
                for (int r = 0; r < n; r = r + 1) {
                    if (r < 512) { s += a[r][idx]; }
                }
                c[idx] = s;
            }",
        )
        .unwrap();
        let b = binds(&[("n", 1024)]);
        let layouts = resolve_layouts_padded(&k, &b).unwrap();
        let mut dev = Device::new(MachineDesc::gtx280());
        for p in k.array_params() {
            dev.alloc_phantom(layouts[&p.name].clone());
        }
        let stats = launch(
            &k,
            &LaunchConfig::one_d(4, 16),
            &b,
            &mut dev,
            &ExecOptions {
                sample_blocks: Some(2),
                max_outer_iters: Some(16),
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert!((stats.loop_truncation - 64.0).abs() < 1e-9);
        // ~half the sampled iterations take the guarded branch: the a-loads
        // scale to roughly half of the c-store-normalized full count.
        let scaled = stats.scaled(stats.loop_truncation);
        let full_guarded_requests = 2 * 512; // 2 sampled blocks x 512 rows
        let ratio = scaled.gmem_requests as f64 / full_guarded_requests as f64;
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
    }

    fn san() -> ExecOptions {
        ExecOptions {
            sanitize: true,
            ..ExecOptions::default()
        }
    }

    fn kind_of(err: &ExecError) -> &'static str {
        match err {
            ExecError::Sanitizer(e) => e.name(),
            other => panic!("expected sanitizer error, got {other:?}"),
        }
    }

    #[test]
    fn sanitizer_catches_shared_race_without_barrier() {
        // The staging kernel from `shared_memory_staging_works`, with the
        // __syncthreads() dropped: lane 0 reads cell 15 written by lane 15
        // in the same epoch.
        let k = parse_kernel(
            "__global__ void f(float a[n], float c[n], int n) {
                __shared__ float s0[16];
                s0[tidx] = a[idx];
                c[idx] = s0[15 - tidx];
            }",
        )
        .unwrap();
        let b = binds(&[("n", 16)]);
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        dev.buffer_mut("a")
            .unwrap()
            .upload(&(0..16).map(|v| v as f32).collect::<Vec<_>>());
        let err = launch(&k, &LaunchConfig::one_d(1, 16), &b, &mut dev, &san()).unwrap_err();
        assert_eq!(kind_of(&err), "shared-race");
        // With the barrier restored the same kernel is clean.
        let k = parse_kernel(
            "__global__ void f(float a[n], float c[n], int n) {
                __shared__ float s0[16];
                s0[tidx] = a[idx];
                __syncthreads();
                c[idx] = s0[15 - tidx];
            }",
        )
        .unwrap();
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        dev.buffer_mut("a")
            .unwrap()
            .upload(&(0..16).map(|v| v as f32).collect::<Vec<_>>());
        launch(&k, &LaunchConfig::one_d(1, 16), &b, &mut dev, &san()).unwrap();
    }

    #[test]
    fn sanitizer_catches_global_oob_write() {
        let k = parse_kernel(
            "__global__ void f(float a[n], int n) { a[idx + 1] = 0.0f; }",
        )
        .unwrap();
        let b = binds(&[("n", 16)]);
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        let err = launch(&k, &LaunchConfig::one_d(1, 16), &b, &mut dev, &san()).unwrap_err();
        assert_eq!(kind_of(&err), "global-oob");
    }

    #[test]
    fn sanitizer_distinguishes_padding_reads() {
        // n = 20 pads the row pitch to 32; lanes past index 19 read cells
        // that exist in the allocation but not in the logical array.
        let k = parse_kernel(
            "__global__ void f(float a[n], float c[m], int n, int m) {
                c[idx] = a[idx + 16];
            }",
        )
        .unwrap();
        let b = binds(&[("n", 20), ("m", 16)]);
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        dev.buffer_mut("a")
            .unwrap()
            .upload(&(0..20).map(|v| v as f32).collect::<Vec<_>>());
        let err = launch(&k, &LaunchConfig::one_d(1, 16), &b, &mut dev, &san()).unwrap_err();
        assert_eq!(kind_of(&err), "padding-read");
        // Without the sanitizer the same run silently reads zeros.
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        dev.buffer_mut("a")
            .unwrap()
            .upload(&(0..20).map(|v| v as f32).collect::<Vec<_>>());
        launch(
            &k,
            &LaunchConfig::one_d(1, 16),
            &b,
            &mut dev,
            &ExecOptions::default(),
        )
        .unwrap();
    }

    #[test]
    fn sanitizer_catches_uninitialized_reads() {
        let k = parse_kernel(
            "__global__ void f(float a[n], float c[n], int n) { c[idx] = a[idx]; }",
        )
        .unwrap();
        let b = binds(&[("n", 16)]);
        // `a` never uploaded: its cells are zero but undefined.
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        let err = launch(&k, &LaunchConfig::one_d(1, 16), &b, &mut dev, &san()).unwrap_err();
        assert_eq!(kind_of(&err), "uninit-read");

        let shared = parse_kernel(
            "__global__ void f(float c[n], int n) {
                __shared__ float s0[16];
                c[idx] = s0[tidx];
            }",
        )
        .unwrap();
        let mut dev = device_for(&shared, &b, MachineDesc::gtx280());
        let err =
            launch(&shared, &LaunchConfig::one_d(1, 16), &b, &mut dev, &san()).unwrap_err();
        assert_eq!(kind_of(&err), "uninit-read");
        assert!(matches!(
            err,
            ExecError::Sanitizer(SanitizerError {
                kind: SanitizerKind::UninitializedRead { shared: true, .. },
                ..
            })
        ));
    }

    #[test]
    fn sanitizer_reports_barrier_divergence() {
        let k = parse_kernel(
            "__global__ void f(float a[n], int n) {
                if (tidx < 8) { __syncthreads(); }
                a[idx] = 0.0f;
            }",
        )
        .unwrap();
        let b = binds(&[("n", 32)]);
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        let err = launch(&k, &LaunchConfig::one_d(2, 16), &b, &mut dev, &san()).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Sanitizer(SanitizerError {
                kind: SanitizerKind::BarrierDivergence {
                    active: 8,
                    total: 16
                },
                ..
            })
        ));
    }

    #[test]
    fn sanitizer_flags_shared_overflow() {
        // 5000 floats = 20 000 B > the 16 KB per-SM shared memory.
        let k = parse_kernel(
            "__global__ void f(float c[n], int n) {
                __shared__ float s0[5000];
                s0[tidx] = 1.0f;
                __syncthreads();
                c[idx] = s0[tidx];
            }",
        )
        .unwrap();
        let b = binds(&[("n", 16)]);
        let mut dev = device_for(&k, &b, MachineDesc::gtx280());
        let err = launch(&k, &LaunchConfig::one_d(1, 16), &b, &mut dev, &san()).unwrap_err();
        assert_eq!(kind_of(&err), "shared-overflow");
    }

    #[test]
    fn sanitizer_clean_on_reference_mm() {
        let k = parse_kernel(
            r#"__global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
                float sum = 0.0f;
                for (int i = 0; i < w; i = i + 1) { sum += a[idy][i] * b[i][idx]; }
                c[idy][idx] = sum;
            }"#,
        )
        .unwrap();
        let n = 8i64;
        let bind = binds(&[("n", n), ("w", n)]);
        let mut dev = device_for(&k, &bind, MachineDesc::gtx280());
        let av: Vec<f32> = (0..n * n).map(|v| (v % 7) as f32).collect();
        dev.buffer_mut("a").unwrap().upload(&av);
        dev.buffer_mut("b").unwrap().upload(&av);
        let cfg = LaunchConfig {
            grid_x: 2,
            grid_y: 8,
            block_x: 4,
            block_y: 1,
        };
        launch(&k, &cfg, &bind, &mut dev, &san()).unwrap();
    }

    #[test]
    fn unbound_scalar_is_an_error() {
        let k = parse_kernel("__global__ void f(float a[n], int n) { a[idx] = 0.0f; }").unwrap();
        let mut dev = Device::new(MachineDesc::gtx280());
        dev.alloc(gpgpu_analysis::ArrayLayout::new(
            "a",
            gpgpu_ast::ScalarType::Float,
            vec![16],
        ));
        let err = launch(
            &k,
            &LaunchConfig::one_d(1, 16),
            &Bindings::new(),
            &mut dev,
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::UnboundScalar("n".into()));
    }
}
