//! GPU machine descriptors.
//!
//! The compiler tunes for concrete hardware (paper §4.2): register-file and
//! shared-memory sizes bound the merge degrees, the partition organization
//! drives camping elimination, and bandwidth/latency parameters feed the
//! timing model. Descriptors for the paper's two evaluation GPUs (NVIDIA
//! GTX 8800 and GTX 280) and the AMD/ATI HD 5870 referenced in §2 are
//! provided.

pub use gpgpu_analysis::PartitionGeometry;

/// A GPU hardware description.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineDesc {
    /// Marketing name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Streaming processors (scalar ALUs) per SM.
    pub sp_per_sm: u32,
    /// Shader clock in GHz.
    pub clock_ghz: f64,
    /// Register file per SM, in 32-bit registers.
    pub regs_per_sm: u32,
    /// Shared memory per SM, in bytes.
    pub shared_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Warp width.
    pub warp_size: u32,
    /// Off-chip memory partition organization.
    pub partitions: PartitionGeometry,
    /// Peak off-chip bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Average global-memory latency in shader cycles.
    pub mem_latency_cycles: f64,
    /// Sustained-bandwidth efficiency for 4-, 8- and 16-byte elements
    /// (§2's float/float2/float4 measurements, normalized to peak).
    pub width_efficiency: [f64; 3],
    /// Shared-memory banks.
    pub shared_banks: u32,
    /// Registers the compiler may spend per thread before spilling.
    pub max_regs_per_thread: u32,
    /// G80-style strict coalescing: a half-warp access that is not a
    /// perfectly aligned sequential segment issues one transaction *per
    /// thread* (paper §2). GT200 relaxed this to line-level grouping.
    pub strict_coalescing: bool,
}

impl MachineDesc {
    /// The marketing names of every known machine, in descriptor order —
    /// what [`MachineDesc::by_name`] accepts (case-insensitively) and what
    /// unknown-machine errors should list.
    pub const KNOWN_NAMES: [&'static str; 3] = ["GTX8800", "GTX280", "HD5870"];

    /// Resolves a machine by name, case-insensitively (`gtx280` and
    /// `GTX280` both work) — the single resolver shared by the `gpgpuc`
    /// `--machine` flag, the fuzz corpus format, and the batch service's
    /// request `machine` field.
    pub fn by_name(name: &str) -> Option<MachineDesc> {
        if name.eq_ignore_ascii_case("GTX8800") {
            Some(MachineDesc::gtx8800())
        } else if name.eq_ignore_ascii_case("GTX280") {
            Some(MachineDesc::gtx280())
        } else if name.eq_ignore_ascii_case("HD5870") {
            Some(MachineDesc::hd5870())
        } else {
            None
        }
    }

    /// NVIDIA GeForce GTX 8800 (G80): 16 SMs, 32 KB registers/SM, 6
    /// partitions.
    pub fn gtx8800() -> MachineDesc {
        MachineDesc {
            name: "GTX8800",
            sm_count: 16,
            sp_per_sm: 8,
            clock_ghz: 1.35,
            regs_per_sm: 8 * 1024,
            shared_per_sm: 16 * 1024,
            max_threads_per_sm: 768,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            warp_size: 32,
            partitions: PartitionGeometry::gtx8800(),
            mem_bandwidth_gbps: 86.4,
            mem_latency_cycles: 500.0,
            // float ≈ 0.80 of peak, float2 ≈ 0.82, float4 ≈ 0.64.
            width_efficiency: [0.80, 0.82, 0.64],
            shared_banks: 16,
            max_regs_per_thread: 40,
            strict_coalescing: true,
        }
    }

    /// NVIDIA GeForce GTX 280 (GT200): 30 SMs, 64 KB registers/SM, 8
    /// partitions.
    pub fn gtx280() -> MachineDesc {
        MachineDesc {
            name: "GTX280",
            sm_count: 30,
            sp_per_sm: 8,
            clock_ghz: 1.296,
            regs_per_sm: 16 * 1024,
            shared_per_sm: 16 * 1024,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            warp_size: 32,
            partitions: PartitionGeometry::gtx280(),
            mem_bandwidth_gbps: 141.7,
            // §2: 98 / 101 / 79 GB/s sustained for float/float2/float4.
            width_efficiency: [98.0 / 141.7, 101.0 / 141.7, 79.0 / 141.7],
            mem_latency_cycles: 550.0,
            shared_banks: 16,
            max_regs_per_thread: 64,
            strict_coalescing: false,
        }
    }

    /// AMD/ATI Radeon HD 5870 — only its §2 bandwidth behaviour matters
    /// here (vectorization pays off much more than on NVIDIA parts).
    pub fn hd5870() -> MachineDesc {
        MachineDesc {
            name: "HD5870",
            sm_count: 20,
            sp_per_sm: 16,
            clock_ghz: 0.85,
            // Evergreen SIMDs carry a 256 KB register file.
            regs_per_sm: 64 * 1024,
            shared_per_sm: 32 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 8,
            max_threads_per_block: 256,
            warp_size: 64,
            partitions: PartitionGeometry {
                count: 8,
                width_bytes: 256,
            },
            mem_bandwidth_gbps: 153.6,
            // §2: 71 / 98 / 101 GB/s for float/float2/float4.
            width_efficiency: [71.0 / 153.6, 98.0 / 153.6, 101.0 / 153.6],
            mem_latency_cycles: 500.0,
            shared_banks: 32,
            max_regs_per_thread: 64,
            strict_coalescing: false,
        }
    }

    /// True when the part gains substantially from wide vector accesses
    /// (paper §3.1: the compiler vectorizes aggressively only for AMD/ATI,
    /// where float4 streams beat float by ~40%).
    pub fn prefers_wide_vectors(&self) -> bool {
        self.width_efficiency[2] > self.width_efficiency[0] * 1.1
    }

    /// Sustained bandwidth in bytes/cycle for an element width (4/8/16 B).
    pub fn bytes_per_cycle(&self, elem_bytes: u32) -> f64 {
        let eff = match elem_bytes {
            4 => self.width_efficiency[0],
            8 => self.width_efficiency[1],
            _ => self.width_efficiency[2],
        };
        self.mem_bandwidth_gbps * eff / self.clock_ghz
    }

    /// Peak single-precision GFLOPS (MAD counted as two flops).
    pub fn peak_gflops(&self) -> f64 {
        self.sm_count as f64 * self.sp_per_sm as f64 * self.clock_ghz * 2.0
    }

    /// Whether a block's shared-memory footprint fits on one SM at all.
    /// The sanitizer uses this to flag `__shared__` declarations that can
    /// never launch on the target part.
    pub fn fits_shared(&self, bytes: u64) -> bool {
        bytes <= self.shared_per_sm as u64
    }

    /// How many blocks of the given footprint fit on one SM.
    pub fn blocks_per_sm(&self, threads_per_block: u32, regs_per_thread: u32, shared_bytes: u64) -> u32 {
        if threads_per_block == 0 || threads_per_block > self.max_threads_per_block {
            return 0;
        }
        let by_threads = self.max_threads_per_sm / threads_per_block;
        let by_regs = if regs_per_thread == 0 {
            self.max_blocks_per_sm
        } else {
            self.regs_per_sm / (regs_per_thread * threads_per_block).max(1)
        };
        let by_shared = match (self.shared_per_sm as u64).checked_div(shared_bytes) {
            None => self.max_blocks_per_sm,
            Some(n) => n as u32,
        };
        by_threads
            .min(by_regs)
            .min(by_shared)
            .min(self.max_blocks_per_sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_match_paper_figures() {
        let g80 = MachineDesc::gtx8800();
        assert_eq!(g80.sm_count, 16);
        assert_eq!(g80.partitions.count, 6);
        let gt200 = MachineDesc::gtx280();
        assert_eq!(gt200.sm_count, 30);
        assert_eq!(gt200.partitions.count, 8);
        assert_eq!(gt200.regs_per_sm, 2 * g80.regs_per_sm);
    }

    #[test]
    fn gtx280_width_efficiencies_match_section2() {
        let m = MachineDesc::gtx280();
        let f1 = m.mem_bandwidth_gbps * m.width_efficiency[0];
        let f2 = m.mem_bandwidth_gbps * m.width_efficiency[1];
        let f4 = m.mem_bandwidth_gbps * m.width_efficiency[2];
        assert!((f1 - 98.0).abs() < 0.5);
        assert!((f2 - 101.0).abs() < 0.5);
        assert!((f4 - 79.0).abs() < 0.5);
        // NVIDIA: float2 barely better than float; float4 worse.
        assert!(f2 > f1 && f4 < f1);
    }

    #[test]
    fn hd5870_prefers_wider_vectors() {
        let m = MachineDesc::hd5870();
        let bw: Vec<f64> = [4u32, 8, 16]
            .iter()
            .map(|&w| m.bytes_per_cycle(w))
            .collect();
        assert!(bw[1] > bw[0]);
        assert!(bw[2] > bw[1]);
    }

    #[test]
    fn occupancy_limited_by_each_resource() {
        let m = MachineDesc::gtx280();
        // Thread-limited: 256-thread blocks, tiny footprint.
        assert_eq!(m.blocks_per_sm(256, 10, 1024), 4);
        // Register-limited: 64 regs/thread × 256 threads = 16384 regs → 1.
        assert_eq!(m.blocks_per_sm(256, 64, 1024), 1);
        // Shared-limited: 9 KB/block → 1 block.
        assert_eq!(m.blocks_per_sm(128, 10, 9 * 1024), 1);
        // Block-count cap.
        assert_eq!(m.blocks_per_sm(32, 4, 0), 8);
        // Oversized block.
        assert_eq!(m.blocks_per_sm(1024, 10, 0), 0);
    }

    #[test]
    fn by_name_resolves_every_known_machine_case_insensitively() {
        for name in MachineDesc::KNOWN_NAMES {
            let m = MachineDesc::by_name(name).unwrap();
            assert_eq!(m.name, name);
            let lower = MachineDesc::by_name(&name.to_lowercase()).unwrap();
            assert_eq!(lower.name, name);
        }
        assert!(MachineDesc::by_name("rtx5090").is_none());
        assert!(MachineDesc::by_name("").is_none());
    }

    #[test]
    fn peak_gflops_sanity() {
        // GTX 280 ≈ 622 GFLOPS MAD.
        assert!((MachineDesc::gtx280().peak_gflops() - 622.0).abs() < 2.0);
    }
}
