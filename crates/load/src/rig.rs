//! The rig itself: drive a generated traffic schedule at an in-process
//! [`ShardedEngine`] or at the real `gpgpuc serve` binary, and fold every
//! response into a [`LoadReport`].

use crate::traffic::{generate, Mix, TrafficClass, POISON_SITE};
use gpgpu_core::trace::parse_json;
use gpgpu_core::{Histogram, Json};
use gpgpu_service::{
    CompileRequest, CompileResponse, Engine, ErrorClass, ServiceConfig, ShardConfig,
    ShardedEngine, Submitted,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Everything one rig run needs: the traffic schedule and the server
/// shape it is aimed at.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Traffic seed — same seed, same schedule, byte for byte.
    pub seed: u64,
    /// How many requests to generate.
    pub requests: usize,
    /// Open-loop interarrival gap in microseconds; 0 = submit flat out
    /// (the saturation regime).
    pub interarrival_us: u64,
    /// Deadline carried by the deadline-tight class, in milliseconds.
    pub tight_deadline_ms: u64,
    /// Relative class weights.
    pub mix: Mix,
    /// Engine shape (workers feed per-shard queues of this capacity).
    pub service: ServiceConfig,
    /// Shard router shape.
    pub shards: ShardConfig,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            seed: 0x6c6f_6164, // "load"
            requests: 256,
            interarrival_us: 0,
            tight_deadline_ms: 1,
            mix: Mix::default(),
            service: ServiceConfig {
                jobs: 2,
                queue_capacity: 8,
                ..ServiceConfig::default()
            },
            shards: ShardConfig::default(),
        }
    }
}

/// Outcome counts and the latency histogram for one traffic class.
/// Latency is the server-reported `micros` (enqueue to response), so the
/// number means the same thing for both rig targets.
#[derive(Debug, Clone, Default)]
pub struct ClassStats {
    /// Requests submitted.
    pub sent: u64,
    /// Successful compiles (including cache hits).
    pub ok: u64,
    /// Shed by admission control (`overloaded`).
    pub shed: u64,
    /// Failed with the `deadline` class.
    pub deadline: u64,
    /// Structured `bad-request`/`parse` responses.
    pub bad_request: u64,
    /// Contained `internal` faults (expected only for the poisoned class).
    pub contained: u64,
    /// `compile`-class failures.
    pub compile_errors: u64,
    /// Latency histogram over every answered request, in microseconds.
    pub latency: Histogram,
}

impl ClassStats {
    /// Responses received (every outcome bucket).
    pub fn answered(&self) -> u64 {
        self.ok + self.shed + self.deadline + self.bad_request + self.contained
            + self.compile_errors
    }

    fn record(&mut self, class: Option<ErrorClass>, micros: u64) {
        match class {
            None => self.ok += 1,
            Some(ErrorClass::Overloaded) => self.shed += 1,
            Some(ErrorClass::Deadline) => self.deadline += 1,
            Some(ErrorClass::BadRequest) | Some(ErrorClass::Parse) => self.bad_request += 1,
            Some(ErrorClass::Internal) => self.contained += 1,
            Some(ErrorClass::Compile) => self.compile_errors += 1,
        }
        self.latency.record(micros);
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("sent", Json::count(self.sent)),
            ("ok", Json::count(self.ok)),
            ("shed", Json::count(self.shed)),
            ("deadline", Json::count(self.deadline)),
            ("bad_request", Json::count(self.bad_request)),
            ("contained", Json::count(self.contained)),
            ("compile_errors", Json::count(self.compile_errors)),
            ("latency", self.latency.to_json()),
        ])
    }
}

/// What one rig run observed, per class and in aggregate — the document
/// CI's `load-smoke` job gates on.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// `"in-process"` or `"serve-binary"`.
    pub mode: &'static str,
    /// The traffic seed the run used.
    pub seed: u64,
    /// Wall-clock for the whole run.
    pub duration: Duration,
    /// Per-class outcome counts, in [`TrafficClass::ALL`] order.
    pub classes: Vec<(TrafficClass, ClassStats)>,
    /// `internal` faults observed on a class other than
    /// [`TrafficClass::Poisoned`] — a poisoned request corrupted a
    /// neighbor. Must be zero.
    pub cross_request_faults: u64,
    /// `overloaded` responses that did not carry `retry_after_ms`.
    pub sheds_missing_hint: u64,
    /// Requests that never got a response.
    pub missing: u64,
    /// Ids answered more than once.
    pub duplicates: u64,
    /// Responses whose id was never submitted (or did not match the id
    /// the submission carried).
    pub unexpected: u64,
    /// The child's exit code, for the serve-binary target (`None`
    /// in-process, or when the child was killed by a signal).
    pub exit_code: Option<i32>,
    /// The engine's live telemetry snapshot (in-process target only).
    pub stats: Option<Json>,
}

impl LoadReport {
    /// Counts for one class.
    pub fn class(&self, class: TrafficClass) -> &ClassStats {
        // `classes` always holds every variant, in ALL order.
        &self.classes[TrafficClass::ALL
            .iter()
            .position(|c| *c == class)
            .unwrap_or(0)]
        .1
    }

    /// Total requests submitted.
    pub fn sent(&self) -> u64 {
        self.classes.iter().map(|(_, s)| s.sent).sum()
    }

    /// Total responses shed as `overloaded`.
    pub fn sheds(&self) -> u64 {
        self.classes.iter().map(|(_, s)| s.shed).sum()
    }

    /// True when the run kept every robustness invariant: nothing lost,
    /// nothing duplicated, every shed carried its hint, and no fault
    /// crossed a request boundary.
    pub fn clean(&self) -> bool {
        self.cross_request_faults == 0
            && self.missing == 0
            && self.duplicates == 0
            && self.unexpected == 0
            && self.sheds_missing_hint == 0
            && self.exit_code.unwrap_or(0) == 0
    }

    /// The report as a JSON object (the per-run entry in
    /// `BENCH_serve.json`).
    pub fn to_json(&self) -> Json {
        let sent = self.sent();
        let sheds = self.sheds();
        let mut fields = vec![
            ("mode", Json::str(self.mode)),
            ("seed", Json::count(self.seed)),
            ("duration_ms", Json::num(self.duration.as_secs_f64() * 1e3)),
            (
                "totals",
                Json::obj(vec![
                    ("sent", Json::count(sent)),
                    (
                        "answered",
                        Json::count(self.classes.iter().map(|(_, s)| s.answered()).sum()),
                    ),
                    (
                        "ok",
                        Json::count(self.classes.iter().map(|(_, s)| s.ok).sum()),
                    ),
                    ("shed", Json::count(sheds)),
                    (
                        "shed_rate",
                        Json::num(if sent == 0 {
                            0.0
                        } else {
                            sheds as f64 / sent as f64
                        }),
                    ),
                    ("sheds_missing_hint", Json::count(self.sheds_missing_hint)),
                    (
                        "cross_request_faults",
                        Json::count(self.cross_request_faults),
                    ),
                    ("missing", Json::count(self.missing)),
                    ("duplicates", Json::count(self.duplicates)),
                    ("unexpected", Json::count(self.unexpected)),
                ]),
            ),
            (
                "classes",
                Json::obj(
                    self.classes
                        .iter()
                        .map(|(c, s)| (c.as_str(), s.to_json()))
                        .collect::<Vec<_>>(),
                ),
            ),
        ];
        if let Some(code) = self.exit_code {
            fields.push(("exit_code", Json::num(code as f64)));
        }
        if let Some(stats) = &self.stats {
            fields.push(("stats", stats.clone()));
        }
        Json::obj(fields)
    }
}

/// Folds responses into per-class stats and the cross-cutting invariant
/// counters.
struct Collector {
    classes: Vec<(TrafficClass, ClassStats)>,
    cross_request_faults: u64,
    sheds_missing_hint: u64,
    missing: u64,
    duplicates: u64,
    unexpected: u64,
}

impl Collector {
    fn new() -> Collector {
        Collector {
            classes: TrafficClass::ALL
                .iter()
                .map(|c| (*c, ClassStats::default()))
                .collect(),
            cross_request_faults: 0,
            sheds_missing_hint: 0,
            missing: 0,
            duplicates: 0,
            unexpected: 0,
        }
    }

    fn stats_mut(&mut self, class: TrafficClass) -> &mut ClassStats {
        let idx = TrafficClass::ALL
            .iter()
            .position(|c| *c == class)
            .unwrap_or(0);
        &mut self.classes[idx].1
    }

    fn record(&mut self, class: TrafficClass, error: Option<ErrorClass>, hint: Option<u64>, micros: u64) {
        if error == Some(ErrorClass::Internal) && class != TrafficClass::Poisoned {
            self.cross_request_faults += 1;
        }
        if error == Some(ErrorClass::Overloaded) && hint.is_none() {
            self.sheds_missing_hint += 1;
        }
        self.stats_mut(class).record(error, micros);
    }

    fn record_response(&mut self, class: TrafficClass, resp: &CompileResponse) {
        let error = resp.error.as_ref().map(|e| e.class);
        self.record(class, error, resp.retry_after_ms(), resp.micros);
    }

    fn finish(
        self,
        mode: &'static str,
        seed: u64,
        duration: Duration,
        exit_code: Option<i32>,
        stats: Option<Json>,
    ) -> LoadReport {
        LoadReport {
            mode,
            seed,
            duration,
            classes: self.classes,
            cross_request_faults: self.cross_request_faults,
            sheds_missing_hint: self.sheds_missing_hint,
            missing: self.missing,
            duplicates: self.duplicates,
            unexpected: self.unexpected,
            exit_code,
            stats,
        }
    }
}

/// Serializes in-process poison runs: the armed-fault state is
/// process-global, so two concurrent rigs (or a rig and another fault
/// test in the same binary) must not interleave arm/disarm.
static POISON_GATE: Mutex<()> = Mutex::new(());

struct PoisonGuard(Option<MutexGuard<'static, ()>>);

impl Drop for PoisonGuard {
    fn drop(&mut self) {
        if self.0.is_some() {
            gpgpu_core::fault::disarm();
        }
    }
}

fn arm_poison(wanted: bool) -> PoisonGuard {
    if !wanted {
        return PoisonGuard(None);
    }
    let gate = POISON_GATE.lock().unwrap_or_else(|p| p.into_inner());
    gpgpu_core::fault::arm_panic(POISON_SITE);
    PoisonGuard(Some(gate))
}

/// Sleeps until request `i`'s open-loop arrival time. Arrivals are fixed
/// by the clock, never by completions — when the server falls behind, the
/// schedule does not.
fn pace(started: Instant, i: usize, interarrival_us: u64) {
    if interarrival_us == 0 {
        return;
    }
    let due = Duration::from_micros(interarrival_us.saturating_mul(i as u64));
    let elapsed = started.elapsed();
    if elapsed < due {
        std::thread::sleep(due - elapsed);
    }
}

/// Runs the schedule against an in-process [`ShardedEngine`] sharing one
/// engine (and its cache), exactly as `gpgpuc serve` wires it.
///
/// When the mix includes poisoned traffic the rig arms the
/// [`POISON_SITE`] panic for the duration of the run (a no-op unless the
/// `gpgpu-core/fault-inject` feature is compiled in, as it is for
/// workspace test builds).
///
/// # Errors
///
/// Returns the engine construction error (cache directory I/O) as text.
pub fn run_in_process(cfg: &LoadConfig) -> Result<LoadReport, String> {
    let items = generate(cfg.seed, cfg.requests, cfg.mix, cfg.tight_deadline_ms);
    let engine = Arc::new(Engine::new(cfg.service.clone()).map_err(|e| e.to_string())?);
    let server = ShardedEngine::start(Arc::clone(&engine), cfg.shards.clone());
    let _poison = arm_poison(cfg.mix.poisoned > 0);

    let started = Instant::now();
    let mut collector = Collector::new();
    let mut pending = Vec::new();
    for (i, item) in items.iter().enumerate() {
        pace(started, i, cfg.interarrival_us);
        collector.stats_mut(item.class).sent += 1;
        let parsed = CompileRequest::parse(&item.line, i).and_then(|mut req| {
            req.resolve_file()?;
            Ok(req)
        });
        match parsed {
            // Malformed lines take the same path `serve` gives them: the
            // engine answers synchronously with a structured bad-request.
            Err(_) => {
                let resp = engine.handle_line(&item.line, i);
                collector.record_response(item.class, &resp);
            }
            Ok(req) => match server.submit(req, Instant::now()) {
                Submitted::Rejected(resp) => collector.record_response(item.class, &resp),
                Submitted::Queued(rx) => pending.push((item.class, item.id.clone(), rx)),
            },
        }
    }
    for (class, id, rx) in pending {
        match rx.recv() {
            Ok(resp) => {
                if resp.id != id {
                    collector.unexpected += 1;
                }
                collector.record_response(class, &resp);
            }
            Err(_) => collector.missing += 1,
        }
    }
    let stats = server.stats_json();
    server.shutdown(None);
    Ok(collector.finish("in-process", cfg.seed, started.elapsed(), None, Some(stats)))
}

/// Runs the schedule against the real `serve` binary over stdin/stdout
/// (`--unordered`, so responses stream as they land and the reader
/// stitches them back by id). The child gets `GPGPU_FAULT` armed at
/// [`POISON_SITE`]; poison only fires when the binary was built with
/// `--features gpgpu-core/fault-inject`.
///
/// # Errors
///
/// Returns spawn/pipe failures as text. Protocol-level trouble (lost or
/// duplicate responses, nonzero exit) is *data*, reported in the
/// [`LoadReport`], not an error.
pub fn run_serve_binary(cfg: &LoadConfig, binary: &std::path::Path) -> Result<LoadReport, String> {
    let items = generate(cfg.seed, cfg.requests, cfg.mix, cfg.tight_deadline_ms);
    // The wire id each line will come back under: the embedded id when
    // the line parses, the stream position when it does not (`serve`
    // falls back to the position for unparseable lines).
    let mut expected: HashMap<String, TrafficClass> = HashMap::new();
    for (i, item) in items.iter().enumerate() {
        let wire_id = match CompileRequest::parse(&item.line, i) {
            Ok(req) => req.id,
            Err(_) => i.to_string(),
        };
        expected.insert(wire_id, item.class);
    }

    let workers = cfg.shards.shards.max(1) * cfg.shards.workers_per_shard.max(1);
    let mut child = std::process::Command::new(binary)
        .args([
            "serve",
            "--unordered",
            "--shards",
            &cfg.shards.shards.max(1).to_string(),
            "--jobs",
            &workers.to_string(),
            "--queue",
            &cfg.service.queue_capacity.to_string(),
            "--admission-watermark",
            &format!("{}", cfg.shards.admission_watermark),
            "--admission-wait-ms",
            &cfg.shards.admission_wait_ms.to_string(),
        ])
        .env("GPGPU_FAULT", format!("panic:{POISON_SITE}"))
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", binary.display()))?;
    let Some(mut stdin) = child.stdin.take() else {
        return Err("child stdin was not piped".into());
    };
    let Some(stdout) = child.stdout.take() else {
        return Err("child stdout was not piped".into());
    };

    let started = Instant::now();
    let interarrival = cfg.interarrival_us;
    // Writer thread paces the open-loop schedule; the main thread reads
    // responses concurrently so neither pipe ever fills up and stalls.
    let writer = std::thread::spawn(move || {
        let w_started = Instant::now();
        for (i, item) in items.iter().enumerate() {
            pace(w_started, i, interarrival);
            if writeln!(stdin, "{}", item.line).is_err() {
                break; // Child died; the reader will see EOF and report.
            }
        }
        // Dropping stdin is the EOF that triggers graceful drain.
    });

    let mut collector = Collector::new();
    for (_, class) in expected.iter() {
        collector.stats_mut(*class).sent += 1;
    }
    let mut answered: HashMap<String, u32> = HashMap::new();
    for line in BufReader::new(stdout).lines() {
        let line = line.map_err(|e| format!("cannot read child stdout: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let Ok(doc) = parse_json(&line) else {
            collector.unexpected += 1;
            continue;
        };
        let Some(id) = doc.get("id").and_then(Json::as_str).map(str::to_string) else {
            collector.unexpected += 1;
            continue;
        };
        let Some(class) = expected.get(&id).copied() else {
            collector.unexpected += 1;
            continue;
        };
        let seen = answered.entry(id).or_insert(0);
        *seen += 1;
        if *seen > 1 {
            collector.duplicates += 1;
            continue;
        }
        let micros = doc.get("micros").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let error = doc.get("error").and_then(|e| e.get("class")).and_then(Json::as_str);
        let error = error.map(|name| match name {
            "bad-request" => ErrorClass::BadRequest,
            "parse" => ErrorClass::Parse,
            "compile" => ErrorClass::Compile,
            "deadline" => ErrorClass::Deadline,
            "overloaded" => ErrorClass::Overloaded,
            _ => ErrorClass::Internal,
        });
        let hint = doc
            .get("error")
            .and_then(|e| e.get("retry_after_ms"))
            .and_then(Json::as_f64)
            .map(|v| v as u64);
        collector.record(class, error, hint, micros);
    }
    let _ = writer.join();
    let status = child
        .wait()
        .map_err(|e| format!("cannot reap child: {e}"))?;
    collector.missing = expected
        .keys()
        .filter(|id| !answered.contains_key(*id))
        .count() as u64;
    Ok(collector.finish(
        "serve-binary",
        cfg.seed,
        started.elapsed(),
        status.code(),
        None,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> LoadConfig {
        LoadConfig {
            requests: 48,
            ..LoadConfig::default()
        }
    }

    #[test]
    fn every_request_resolves_exactly_once() {
        let report = run_in_process(&quick_config()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.sent(), 48);
        assert_eq!(report.missing, 0, "{report:?}");
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.unexpected, 0);
        assert_eq!(report.sheds_missing_hint, 0);
        let answered: u64 = report.classes.iter().map(|(_, s)| s.answered()).sum();
        assert_eq!(answered, 48);
    }

    #[test]
    fn reports_carry_per_class_percentiles() {
        let report = run_in_process(&quick_config()).unwrap_or_else(|e| panic!("{e}"));
        let doc = report.to_json();
        for class in TrafficClass::ALL {
            let lat = doc
                .get("classes")
                .and_then(|c| c.get(class.as_str()))
                .and_then(|c| c.get("latency"))
                .unwrap_or_else(|| panic!("no latency for {class:?}"));
            for key in ["count", "p50_us", "p99_us"] {
                assert!(lat.get(key).is_some(), "{class:?} latency missing {key}");
            }
        }
        // The JSON round-trips through the in-repo parser.
        assert_eq!(
            parse_json(&doc.compact()).unwrap_or_else(|e| panic!("{e:?}")),
            doc
        );
    }

    #[test]
    fn saturation_sheds_but_never_strands_a_request() {
        let cfg = LoadConfig {
            requests: 96,
            mix: Mix {
                hot: 1,
                cold: 8,
                malformed: 0,
                deadline_tight: 0,
                poisoned: 0,
            },
            service: ServiceConfig {
                jobs: 1,
                queue_capacity: 2,
                ..ServiceConfig::default()
            },
            shards: ShardConfig {
                shards: 1,
                workers_per_shard: 1,
                admission_wait_ms: 2,
                ..ShardConfig::default()
            },
            ..LoadConfig::default()
        };
        let report = run_in_process(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.sheds() > 0, "96 cold compiles into a 2-deep queue never shed");
        assert_eq!(report.missing + report.duplicates + report.unexpected, 0);
        assert_eq!(report.sheds_missing_hint, 0, "a shed lost its retry hint");
        assert_eq!(report.cross_request_faults, 0);
    }
}
