#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

//! # gpgpu-load
//!
//! The load/chaos rig for the batch-compilation service (DESIGN.md §5.12):
//! a *seeded, open-loop* traffic generator that drives sustained mixed
//! traffic — hot (cache-hit), cold (distinct fingerprints), malformed,
//! deadline-tight, and fault-poisoned requests — against either an
//! in-process [`gpgpu_service::ShardedEngine`] or the real `gpgpuc serve`
//! binary over stdin/stdout.
//!
//! "Open loop" means arrivals are paced by the clock, not by completions:
//! the generator does not slow down when the server backs up, which is
//! exactly the regime where admission control must shed instead of letting
//! queues (and client-visible latency) grow without bound.
//!
//! Every run produces a [`LoadReport`]: per-traffic-class outcome counts
//! and latency [`gpgpu_core::Histogram`]s (p50/p99 per class), plus the
//! invariants CI gates on —
//!
//! - **no lost or duplicated responses**: every submitted request resolves
//!   exactly once with its original id ([`LoadReport::missing`],
//!   [`LoadReport::duplicates`], [`LoadReport::unexpected`] all zero);
//! - **fault containment**: an injected panic (`GPGPU_FAULT` or
//!   [`gpgpu_core::fault::arm_panic`] at [`POISON_SITE`]) degrades only the
//!   poisoned request — [`LoadReport::cross_request_faults`] counts
//!   `internal` errors leaking into *other* classes, and must be zero;
//! - **bounded overload**: under saturation the shed count is nonzero (the
//!   server refused work instead of queueing it forever) yet every shed
//!   carries a `retry_after_ms` hint.
//!
//! The `gpgpu-load` binary wraps both rig targets behind a small CLI and
//! writes the `BENCH_serve.json` snapshot the CI `load-smoke` job asserts
//! against.

mod rig;
mod traffic;

pub use rig::{run_in_process, run_serve_binary, ClassStats, LoadConfig, LoadReport};
pub use traffic::{generate, splitmix64, LoadItem, Mix, Rng, TrafficClass, POISON_SITE};
