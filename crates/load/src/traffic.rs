//! The seeded traffic generator: five request classes, one NDJSON line
//! each, reproducible from a single `u64` seed.

/// The fault site the poisoned class trips: the engine probes
/// `service-<kernel>` before every cold compile, and poisoned requests
/// name their kernel `inject`, so arming `panic:service-inject` (env var
/// `GPGPU_FAULT` for a child process, [`gpgpu_core::fault::arm_panic`]
/// in-process) panics exactly that class and nothing else.
pub const POISON_SITE: &str = "service-inject";

/// SplitMix64 — the same tiny deterministic mixer the fuzzer and the
/// batch client's backoff jitter use; good enough to decorrelate class
/// picks and binding sizes from consecutive seeds.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A minimal seeded PRNG over [`splitmix64`].
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A generator whose whole stream is determined by `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(1);
        splitmix64(self.0)
    }

    /// A draw uniform in `0..n` (`n` ≥ 1).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// The five traffic classes the rig mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// The same kernel + bindings every time: after the first compile,
    /// pure cache hits (and stampede-guard coalescing while it is hot).
    Hot,
    /// A fresh fingerprint per request (unique bindings): every one is a
    /// real compile, the load that actually saturates workers.
    Cold,
    /// Broken requests — missing `source`, non-JSON garbage, bad types —
    /// that must come back as structured `bad-request` lines.
    Malformed,
    /// Valid requests with a 1 ms deadline: most expire in the queue or
    /// are preempted pre-compile; none may wedge a worker.
    DeadlineTight,
    /// Kernels named `inject` whose compile panics when the
    /// [`POISON_SITE`] fault is armed; the panic must stay contained to
    /// the poisoned request.
    Poisoned,
}

impl TrafficClass {
    /// Every class, in report order.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::Hot,
        TrafficClass::Cold,
        TrafficClass::Malformed,
        TrafficClass::DeadlineTight,
        TrafficClass::Poisoned,
    ];

    /// The class's wire/report name.
    pub fn as_str(self) -> &'static str {
        match self {
            TrafficClass::Hot => "hot",
            TrafficClass::Cold => "cold",
            TrafficClass::Malformed => "malformed",
            TrafficClass::DeadlineTight => "deadline-tight",
            TrafficClass::Poisoned => "poisoned",
        }
    }
}

/// Relative weights for the class mix (0 removes the class).
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Weight of [`TrafficClass::Hot`].
    pub hot: u32,
    /// Weight of [`TrafficClass::Cold`].
    pub cold: u32,
    /// Weight of [`TrafficClass::Malformed`].
    pub malformed: u32,
    /// Weight of [`TrafficClass::DeadlineTight`].
    pub deadline_tight: u32,
    /// Weight of [`TrafficClass::Poisoned`].
    pub poisoned: u32,
}

impl Default for Mix {
    /// The chaos mix: mostly real work (hot + cold), a steady trickle of
    /// garbage, tight deadlines, and poison.
    fn default() -> Mix {
        Mix {
            hot: 4,
            cold: 4,
            malformed: 1,
            deadline_tight: 1,
            poisoned: 2,
        }
    }
}

impl Mix {
    fn total(&self) -> u64 {
        (self.hot + self.cold + self.malformed + self.deadline_tight + self.poisoned) as u64
    }

    fn pick(&self, rng: &mut Rng) -> TrafficClass {
        let mut roll = rng.below(self.total().max(1));
        for (class, weight) in [
            (TrafficClass::Hot, self.hot),
            (TrafficClass::Cold, self.cold),
            (TrafficClass::Malformed, self.malformed),
            (TrafficClass::DeadlineTight, self.deadline_tight),
            (TrafficClass::Poisoned, self.poisoned),
        ] {
            if roll < weight as u64 {
                return class;
            }
            roll -= weight as u64;
        }
        TrafficClass::Hot
    }
}

/// One generated request: its class, the id embedded in the line (when
/// the line parses — malformed responses echo the stream position
/// instead), and the raw NDJSON line to submit.
#[derive(Debug, Clone)]
pub struct LoadItem {
    /// Which traffic class produced the line.
    pub class: TrafficClass,
    /// The id the generator embedded (`hot-3`, `cold-17`, …).
    pub id: String,
    /// The NDJSON request line.
    pub line: String,
}

fn mv_kernel(name: &str) -> String {
    format!(
        "__global__ void {name}(float a[n][w], float b[w], float c[n], int n, int w) \
         {{ float sum = 0.0f; for (int i = 0; i < w; i = i + 1) \
         {{ sum += a[idx][i] * b[i]; }} c[idx] = sum; }}"
    )
}

fn request_line(id: &str, kernel: &str, n: i64, w: i64, deadline_ms: Option<u64>) -> String {
    let deadline = match deadline_ms {
        Some(ms) => format!(", \"deadline_ms\": {ms}"),
        None => String::new(),
    };
    format!(
        "{{\"id\": \"{id}\", \"source\": \"{}\", \"bindings\": {{\"n\": {n}, \"w\": {w}}}{deadline}}}",
        mv_kernel(kernel)
    )
}

/// Generates `count` request lines from `seed`. Same seed + count + mix →
/// byte-identical traffic, so a failing run replays exactly.
pub fn generate(seed: u64, count: usize, mix: Mix, tight_deadline_ms: u64) -> Vec<LoadItem> {
    let mut rng = Rng::new(seed);
    let mut items = Vec::with_capacity(count);
    for i in 0..count {
        let class = mix.pick(&mut rng);
        let (id, line) = match class {
            // One fingerprint for the whole run: the bindings never vary.
            TrafficClass::Hot => {
                let id = format!("hot-{i}");
                let line = request_line(&id, "hot", 48, 48, None);
                (id, line)
            }
            // A fresh fingerprint per request.
            TrafficClass::Cold => {
                let id = format!("cold-{i}");
                let n = 24 + (rng.below(96) as i64);
                let line = request_line(&id, "cold", n, 32, None);
                (id, line)
            }
            TrafficClass::Malformed => {
                let id = format!("bad-{i}");
                let line = match rng.below(3) {
                    // Parses as JSON but is not a valid request (the id
                    // is lost: `parse` fails before extracting it).
                    0 => format!("{{\"id\": \"{id}\"}}"),
                    // Not JSON at all.
                    1 => format!("!!! load noise {i}"),
                    // Bad field type.
                    _ => format!("{{\"id\": \"{id}\", \"source\": 42}}"),
                };
                (id, line)
            }
            TrafficClass::DeadlineTight => {
                let id = format!("tight-{i}");
                let n = 24 + (rng.below(96) as i64);
                let line = request_line(&id, "tight", n, 32, Some(tight_deadline_ms));
                (id, line)
            }
            TrafficClass::Poisoned => {
                let id = format!("poison-{i}");
                let n = 24 + (rng.below(96) as i64);
                let line = request_line(&id, "inject", n, 32, None);
                (id, line)
            }
        };
        items.push(LoadItem { class, id, line });
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = generate(7, 64, Mix::default(), 1);
        let b = generate(7, 64, Mix::default(), 1);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.line, y.line);
            assert_eq!(x.class, y.class);
        }
        let c = generate(8, 64, Mix::default(), 1);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.line != y.line),
            "different seeds produced identical traffic"
        );
    }

    #[test]
    fn the_mix_reaches_every_class() {
        let items = generate(42, 256, Mix::default(), 1);
        for class in TrafficClass::ALL {
            assert!(
                items.iter().any(|i| i.class == class),
                "256 draws never produced {:?}",
                class
            );
        }
    }

    #[test]
    fn zero_weight_removes_a_class() {
        let mix = Mix {
            poisoned: 0,
            malformed: 0,
            ..Mix::default()
        };
        let items = generate(3, 256, mix, 1);
        assert!(items
            .iter()
            .all(|i| i.class != TrafficClass::Poisoned && i.class != TrafficClass::Malformed));
    }

    #[test]
    fn generated_request_lines_parse_back() {
        use gpgpu_service::CompileRequest;
        for item in generate(11, 128, Mix::default(), 1) {
            let parsed = CompileRequest::parse(&item.line, 0);
            match item.class {
                TrafficClass::Malformed => {
                    assert!(parsed.is_err(), "malformed line parsed: {}", item.line)
                }
                _ => {
                    let req = parsed.unwrap_or_else(|e| panic!("{}: {e}", item.line));
                    assert_eq!(req.id, item.id);
                }
            }
        }
    }
}
