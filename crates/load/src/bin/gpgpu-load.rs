//! `gpgpu-load` — the serve-under-fire CLI.
//!
//! Runs the seeded open-loop chaos mix against the in-process sharded
//! engine and (with `--serve PATH`) the real `gpgpuc serve` binary, prints
//! a per-class outcome table, and writes the `BENCH_serve.json` snapshot
//! the CI `load-smoke` job asserts against.
//!
//! ```text
//! gpgpu-load [--seed N] [--requests N] [--interarrival-us N]
//!            [--shards N] [--workers N] [--queue N] [--watermark F]
//!            [--mix HOT,COLD,MALFORMED,TIGHT,POISONED]
//!            [--tight-deadline-ms N] [--serve PATH] [--skip-in-process]
//!            [--out BENCH_serve.json]
//! ```
//!
//! Exits 1 when any run breaks a robustness invariant (a lost or
//! duplicated response, a shed without its `retry_after_ms` hint, a fault
//! that crossed a request boundary, or a nonzero serve exit).

use gpgpu_core::Json;
use gpgpu_load::{run_in_process, run_serve_binary, LoadConfig, LoadReport, Mix};
use std::process::ExitCode;

struct Args {
    cfg: LoadConfig,
    serve: Option<std::path::PathBuf>,
    skip_in_process: bool,
    out: std::path::PathBuf,
}

fn parse_mix(value: &str) -> Result<Mix, String> {
    let parts: Vec<&str> = value.split(',').collect();
    if parts.len() != 5 {
        return Err(format!(
            "--mix wants five comma-separated weights (hot,cold,malformed,tight,poisoned), got `{value}`"
        ));
    }
    let mut w = [0u32; 5];
    for (slot, part) in w.iter_mut().zip(&parts) {
        *slot = part
            .trim()
            .parse::<u32>()
            .map_err(|_| format!("--mix weight `{part}` is not an integer"))?;
    }
    if w.iter().all(|&x| x == 0) {
        return Err("--mix needs at least one nonzero weight".into());
    }
    Ok(Mix {
        hot: w[0],
        cold: w[1],
        malformed: w[2],
        deadline_tight: w[3],
        poisoned: w[4],
    })
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: LoadConfig::default(),
        serve: None,
        skip_in_process: false,
        out: std::path::PathBuf::from("BENCH_serve.json"),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut workers: Option<usize> = None;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = || -> Result<&str, String> {
            i += 1;
            argv.get(i)
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} wants a value"))
        };
        match flag {
            "--seed" => {
                args.cfg.seed = value()?
                    .parse()
                    .map_err(|_| "--seed wants an integer".to_string())?;
            }
            "--requests" => {
                args.cfg.requests = value()?
                    .parse()
                    .map_err(|_| "--requests wants an integer".to_string())?;
            }
            "--interarrival-us" => {
                args.cfg.interarrival_us = value()?
                    .parse()
                    .map_err(|_| "--interarrival-us wants an integer".to_string())?;
            }
            "--tight-deadline-ms" => {
                args.cfg.tight_deadline_ms = value()?
                    .parse()
                    .map_err(|_| "--tight-deadline-ms wants an integer".to_string())?;
            }
            "--mix" => args.cfg.mix = parse_mix(value()?)?,
            "--shards" => {
                args.cfg.shards.shards = value()?
                    .parse::<usize>()
                    .map_err(|_| "--shards wants an integer".to_string())?
                    .max(1);
            }
            "--workers" => {
                workers = Some(
                    value()?
                        .parse::<usize>()
                        .map_err(|_| "--workers wants an integer".to_string())?
                        .max(1),
                );
            }
            "--queue" => {
                args.cfg.service.queue_capacity = value()?
                    .parse::<usize>()
                    .map_err(|_| "--queue wants an integer".to_string())?
                    .max(1);
            }
            "--watermark" => {
                let v: f64 = value()?
                    .parse()
                    .map_err(|_| "--watermark wants a fraction".to_string())?;
                if !(0.0..=1.0).contains(&v) {
                    return Err("--watermark must be in [0, 1]".into());
                }
                args.cfg.shards.admission_watermark = v;
            }
            "--serve" => args.serve = Some(std::path::PathBuf::from(value()?)),
            "--skip-in-process" => args.skip_in_process = true,
            "--out" => args.out = std::path::PathBuf::from(value()?),
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    if let Some(w) = workers {
        args.cfg.shards.workers_per_shard = w;
    }
    args.cfg.service.jobs = args.cfg.shards.shards * args.cfg.shards.workers_per_shard;
    if args.skip_in_process && args.serve.is_none() {
        return Err("--skip-in-process without --serve leaves nothing to run".into());
    }
    Ok(args)
}

fn print_report(report: &LoadReport) {
    println!(
        "\n[{}] {} requests in {:.1} ms ({} shed, {} cross-request faults)",
        report.mode,
        report.sent(),
        report.duration.as_secs_f64() * 1e3,
        report.sheds(),
        report.cross_request_faults,
    );
    println!(
        "{:<16} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>10} {:>10}",
        "class", "sent", "ok", "shed", "ddl", "bad", "fault", "p50 µs", "p99 µs"
    );
    for (class, s) in &report.classes {
        println!(
            "{:<16} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>10} {:>10}",
            class.as_str(),
            s.sent,
            s.ok,
            s.shed,
            s.deadline,
            s.bad_request,
            s.contained,
            s.latency.percentile(50.0),
            s.latency.percentile(99.0),
        );
    }
    if !report.clean() {
        println!(
            "INVARIANT VIOLATION: missing={} duplicates={} unexpected={} \
             sheds_missing_hint={} cross_request_faults={} exit_code={:?}",
            report.missing,
            report.duplicates,
            report.unexpected,
            report.sheds_missing_hint,
            report.cross_request_faults,
            report.exit_code,
        );
    }
}

fn main() -> ExitCode {
    // Injected faults are *traffic* here — the engine contains each one —
    // so keep their panic messages out of the log. Anything else still
    // reports through the default hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("injected fault") {
            default_hook(info);
        }
    }));
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gpgpu-load: {e}");
            return ExitCode::from(64);
        }
    };
    let mut runs: Vec<LoadReport> = Vec::new();
    if !args.skip_in_process {
        match run_in_process(&args.cfg) {
            Ok(report) => runs.push(report),
            Err(e) => {
                eprintln!("gpgpu-load: in-process run failed: {e}");
                return ExitCode::from(70);
            }
        }
    }
    if let Some(binary) = &args.serve {
        match run_serve_binary(&args.cfg, binary) {
            Ok(report) => runs.push(report),
            Err(e) => {
                eprintln!("gpgpu-load: serve-binary run failed: {e}");
                return ExitCode::from(70);
            }
        }
    }
    for report in &runs {
        print_report(report);
    }

    let mix = args.cfg.mix;
    let doc = Json::obj(vec![
        ("schema", Json::str(gpgpu_core::trace::SCHEMA)),
        ("figure", Json::str("serve-load")),
        (
            "description",
            Json::str(
                "seeded open-loop chaos mix (hot/cold/malformed/deadline-tight/poisoned) \
                 against the sharded compile service",
            ),
        ),
        ("seed", Json::count(args.cfg.seed)),
        ("requests", Json::count(args.cfg.requests as u64)),
        (
            "interarrival_us",
            Json::count(args.cfg.interarrival_us),
        ),
        (
            "config",
            Json::obj(vec![
                ("shards", Json::count(args.cfg.shards.shards as u64)),
                (
                    "workers_per_shard",
                    Json::count(args.cfg.shards.workers_per_shard as u64),
                ),
                (
                    "queue_capacity",
                    Json::count(args.cfg.service.queue_capacity as u64),
                ),
                (
                    "admission_watermark",
                    Json::num(args.cfg.shards.admission_watermark),
                ),
                (
                    "tight_deadline_ms",
                    Json::count(args.cfg.tight_deadline_ms),
                ),
                (
                    "mix",
                    Json::obj(vec![
                        ("hot", Json::count(mix.hot as u64)),
                        ("cold", Json::count(mix.cold as u64)),
                        ("malformed", Json::count(mix.malformed as u64)),
                        ("deadline_tight", Json::count(mix.deadline_tight as u64)),
                        ("poisoned", Json::count(mix.poisoned as u64)),
                    ]),
                ),
            ]),
        ),
        (
            "runs",
            Json::Arr(runs.iter().map(LoadReport::to_json).collect()),
        ),
    ]);
    match std::fs::write(&args.out, doc.pretty()) {
        Ok(()) => println!("\nwrote {}", args.out.display()),
        Err(e) => {
            eprintln!("gpgpu-load: cannot write {}: {e}", args.out.display());
            return ExitCode::from(74);
        }
    }

    if runs.iter().all(LoadReport::clean) {
        ExitCode::SUCCESS
    } else {
        eprintln!("gpgpu-load: robustness invariant violated (see table above)");
        ExitCode::FAILURE
    }
}
