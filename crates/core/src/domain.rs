//! Output-domain inference.
//!
//! A naive kernel computes one output element at position `(idx, idy)`
//! (paper §1), so the launch grid is determined by how the output array is
//! indexed: the dimension indexed with `idx` gives the X extent, the one
//! indexed with `idy` the Y extent.

use gpgpu_analysis::Bindings;
use gpgpu_ast::{visit, Builtin, Expr, Kernel, LValue, Stmt};
use std::fmt;

/// The thread domain a naive kernel covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    /// Extent along X (threads with distinct `idx`).
    pub x: i64,
    /// Extent along Y (1 for 1-D kernels).
    pub y: i64,
}

impl Domain {
    /// True for kernels whose work spreads over two grid dimensions.
    pub fn is_2d(&self) -> bool {
        self.y > 1
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.x, self.y)
    }
}

/// Infers the output domain of a naive kernel.
///
/// Every write to a declared output array is inspected; the extents of the
/// dimensions indexed with `idx`/`idy` must agree across writes.
///
/// Returns `None` when no output write uses the thread ids (not a
/// data-parallel kernel) or when extents conflict.
pub fn infer_domain(kernel: &Kernel, bindings: &Bindings) -> Option<Domain> {
    // An explicit domain pragma wins.
    for p in &kernel.pragmas {
        if let gpgpu_ast::Pragma::Domain(x, y) = p {
            return Some(Domain { x: *x, y: *y });
        }
    }
    let outputs = kernel.output_arrays();
    let mut x: Option<i64> = None;
    let mut y: Option<i64> = None;
    let mut conflict = false;

    let mut visit_store = |array: &str, indices: &[Expr]| {
        if !outputs.iter().any(|o| o == array) {
            return;
        }
        let Some(dims) = kernel.resolve_dims(array, bindings) else {
            return;
        };
        for (d, ix) in indices.iter().enumerate() {
            let extent = dims.get(d).copied().unwrap_or(1);
            if ix.uses_builtin(Builtin::IdX) {
                match x {
                    None => x = Some(extent),
                    Some(prev) if prev != extent => conflict = true,
                    _ => {}
                }
            }
            if ix.uses_builtin(Builtin::IdY) {
                match y {
                    None => y = Some(extent),
                    Some(prev) if prev != extent => conflict = true,
                    _ => {}
                }
            }
        }
    };

    visit::walk_stmts(&kernel.body, &mut |s| {
        if let Stmt::Assign {
            lhs: LValue::Index { array, indices },
            ..
        } = s
        {
            visit_store(array, indices);
        }
    });

    if conflict {
        return None;
    }
    // Reductions write out[0] guarded by `idx == 0`; their domain is the
    // extent of the tree array — the array written at `idx` (outputs only
    // receive the final scalar).
    if x.is_none() && kernel.uses_global_sync() {
        let mut tree_extent: Option<i64> = None;
        visit::walk_stmts(&kernel.body, &mut |s| {
            if let Stmt::Assign {
                lhs: LValue::Index { array, indices },
                ..
            } = s
            {
                if tree_extent.is_none()
                    && indices.len() == 1
                    && indices[0].uses_builtin(Builtin::IdX)
                {
                    if let Some(dims) = kernel.resolve_dims(array, bindings) {
                        tree_extent = Some(dims[0]);
                    }
                }
            }
        });
        return tree_extent.map(|x| Domain { x, y: 1 });
    }
    Some(Domain {
        x: x?,
        y: y.unwrap_or(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_ast::parse_kernel;

    fn binds(pairs: &[(&str, i64)]) -> Bindings {
        pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn mm_domain_is_output_matrix() {
        let k = parse_kernel(
            "__global__ void mm(float a[n][w], float b[w][m], float c[n][m], int n, int m, int w) {
                float s = 0.0f;
                for (int i = 0; i < w; i = i + 1) { s += a[idy][i] * b[i][idx]; }
                c[idy][idx] = s;
            }",
        )
        .unwrap();
        let d = infer_domain(&k, &binds(&[("n", 512), ("m", 256), ("w", 128)])).unwrap();
        assert_eq!(d, Domain { x: 256, y: 512 });
        assert!(d.is_2d());
    }

    #[test]
    fn transpose_domain_follows_idx_dimension() {
        let k = parse_kernel(
            "__global__ void tp(float a[n][m], float c[m][n], int n, int m) {
                c[idx][idy] = a[idy][idx];
            }",
        )
        .unwrap();
        // c is [m][n]: idx indexes dim 0 (extent m), idy dim 1 (extent n).
        let d = infer_domain(&k, &binds(&[("n", 512), ("m", 256)])).unwrap();
        assert_eq!(d, Domain { x: 256, y: 512 });
    }

    #[test]
    fn vector_kernel_is_1d() {
        let k = parse_kernel(
            "__global__ void vv(float a[n], float b[n], float c[n], int n) {
                c[idx] = a[idx] * b[idx];
            }",
        )
        .unwrap();
        let d = infer_domain(&k, &binds(&[("n", 4096)])).unwrap();
        assert_eq!(d, Domain { x: 4096, y: 1 });
        assert!(!d.is_2d());
    }

    #[test]
    fn reduction_domain_spans_input() {
        let k = parse_kernel(
            "#pragma gpgpu output c
            __global__ void rd(float a[len], float c[1], int len) {
                for (int s = 512; s > 0; s = s >> 1) {
                    if (idx < s) { a[idx] = a[idx] + a[idx + s]; }
                    __gsync();
                }
                if (idx == 0) { c[0] = a[0]; }
            }",
        )
        .unwrap();
        let d = infer_domain(&k, &binds(&[("len", 1024)])).unwrap();
        assert_eq!(d, Domain { x: 1024, y: 1 });
    }

    #[test]
    fn conflicting_extents_rejected() {
        let k = parse_kernel(
            "__global__ void f(float c[n], float d[m], int n, int m) {
                c[idx] = 0.0f;
                d[idx] = 0.0f;
            }",
        )
        .unwrap();
        assert!(infer_domain(&k, &binds(&[("n", 128), ("m", 256)])).is_none());
    }

    #[test]
    fn affine_output_index_counts() {
        let k = parse_kernel(
            "#pragma gpgpu output c
            __global__ void f(float c[m], int m) { c[2 * idx] = 0.0f; }",
        )
        .unwrap();
        // Domain reported from the indexed dimension's extent.
        let d = infer_domain(&k, &binds(&[("m", 512)])).unwrap();
        assert_eq!(d.x, 512);
    }
}
