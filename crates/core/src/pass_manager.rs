//! The driver-side pass manager.
//!
//! Sequencing a pass used to mean hand-written glue: check the stage gate,
//! time the call, compute the AST delta, emit the trace event, contain the
//! panic. [`PassManager::run`] owns all of that for any
//! [`gpgpu_transform::Pass`], and additionally keeps the
//! [`AnalysisManager`]'s memoized results honest: after a pass that moved
//! the kernel version, every analysis the pass did not declare preserved is
//! dropped (and the drop is recorded as a trace event), while preserved
//! results are revalidated against the new version without recomputation.

use crate::error::panic_message;
use crate::pipeline::StageSet;
use gpgpu_analysis::AnalysisManager;
use gpgpu_ast::stmt::count_stmts;
use gpgpu_trace::{AstDelta, TraceEvent};
use gpgpu_transform::{
    AmdVectorizePass, CampingPass, CoalescePass, MergeAxis, Pass, PassError, PassOutcome,
    PipelineState, PrefetchPass, ReductionPass, ThreadBlockMergePass, ThreadMergePass,
    VectorizePass,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Owns stage gating, analysis caching, per-pass timing/tracing and fault
/// containment for one pipeline (or one explored candidate).
#[derive(Debug, Clone)]
pub struct PassManager {
    stages: StageSet,
    /// The memoized analyses shared by the passes this manager runs. A
    /// candidate branch clones the parent's manager, inheriting every still
    /// valid result (most importantly the array layouts, which survive all
    /// post-vectorize passes).
    pub am: AnalysisManager,
}

impl PassManager {
    /// A manager with an empty analysis cache.
    pub fn new(stages: StageSet) -> PassManager {
        PassManager {
            stages,
            am: AnalysisManager::new(),
        }
    }

    /// A manager seeded with an existing analysis cache — how candidate
    /// branches inherit the shared snapshot's memoized results.
    pub fn with_manager(stages: StageSet, am: AnalysisManager) -> PassManager {
        PassManager { stages, am }
    }

    /// Runs one pass: gate, sync the analysis cache to the kernel version,
    /// contain panics, sweep stale analyses, and record the
    /// [`TraceEvent::PassCompleted`] delta.
    ///
    /// A pass whose stage is disabled returns `Ok(PassOutcome::Skipped)`
    /// without running (and without a trace event), matching the staged
    /// dissection's semantics of "this stage never happened".
    ///
    /// # Errors
    ///
    /// Propagates the pass's own [`PassError`]; a panic inside the pass is
    /// contained and surfaced as a `PassError` with `fault = true`.
    pub fn run(
        &mut self,
        state: &mut PipelineState,
        pass: &mut dyn Pass,
    ) -> Result<PassOutcome, PassError> {
        if !self.stages.enabled(pass.stage()) {
            return Ok(PassOutcome::Skipped);
        }
        let name = pass.name();
        self.am.sync(state.version());
        let statements_before = count_stmts(&state.kernel.body) as u32;
        let version_before = state.version();
        // The guard closes in Drop, so a panic unwinding out of the pass
        // (contained below, or propagating under fault injection) still
        // leaves the span table balanced.
        let pass_span =
            state
                .profiler
                .span_under(state.profile_span, format!("pass:{name}"), "pass");
        let start = Instant::now();
        let outcome = {
            let am = &mut self.am;
            catch_unwind(AssertUnwindSafe(|| pass.run(state, am)))
                .unwrap_or_else(|payload| Err(PassError::fault(name, panic_message(payload))))
        };
        let micros = start.elapsed().as_micros() as u64;
        // Attribute analysis recomputations (including any a failing pass
        // triggered before erroring) to this pass's span.
        let sweep = |state: &mut PipelineState, am: &mut AnalysisManager| {
            for (analysis, started, finished) in am.drain_computes() {
                state.profiler.record_span_between(
                    Some(pass_span.id()),
                    format!("analysis:{analysis}"),
                    "analysis",
                    started,
                    finished,
                );
            }
        };
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(e) => {
                sweep(state, &mut self.am);
                return Err(e);
            }
        };
        if state.version() != version_before {
            let dropped = self.am.retain_preserved(pass.preserved(), state.version());
            if !dropped.is_empty() {
                state.emit(TraceEvent::AnalysisInvalidated {
                    analyses: dropped,
                    pass: name,
                });
            }
        }
        let res = self.am.resources(&state.kernel);
        for (analysis, version) in self.am.drain_hits() {
            state.emit(TraceEvent::AnalysisCacheHit { analysis, version });
        }
        sweep(state, &mut self.am);
        drop(pass_span);
        state.emit(TraceEvent::PassCompleted {
            pass: name,
            micros,
            delta: AstDelta {
                statements_before,
                statements_after: count_stmts(&state.kernel.body) as u32,
                shared_bytes: res.shared_bytes_per_block,
                registers: res.registers_per_thread,
            },
        });
        Ok(outcome)
    }
}

/// Identity of a registered pass, for `--list-passes` and the golden test
/// keeping the staged-dissection labels in sync with the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassInfo {
    /// Stable pass name (trace events use it).
    pub name: &'static str,
    /// Paper section the pass implements.
    pub paper_section: &'static str,
    /// Stage gate the driver switches the pass on.
    pub stage: &'static str,
}

/// The full pass registry in pipeline order. Exploration instantiates the
/// merge passes per candidate with concrete factors; the entries here are
/// representatives carrying the stable metadata.
///
/// The fusion pass lives in `gpgpu-fusion`, which depends on this crate —
/// its registry entry is therefore a hand-written literal (kept in sync by
/// `gpgpu-fusion`'s `registry_entry_matches_the_pass` test) rather than a
/// `Pass` instance.
pub fn registered_passes() -> Vec<PassInfo> {
    let camping_geometry = gpgpu_analysis::PartitionGeometry::gtx280();
    let fusion = PassInfo {
        name: "fusion",
        paper_section: "related work: Filipovič et al., kernel fusion (BLAS)",
        stage: "fusion",
    };
    let passes: [&dyn Pass; 8] = [
        &VectorizePass,
        &AmdVectorizePass,
        &CoalescePass,
        &ReductionPass {
            elems: None,
            rewrite: None,
        },
        &ThreadBlockMergePass { factor: 2 },
        &ThreadMergePass {
            axis: MergeAxis::Y,
            factor: 2,
        },
        &PrefetchPass { register_budget: 0 },
        &CampingPass {
            geometry: camping_geometry,
            grid_2d: false,
        },
    ];
    std::iter::once(fusion)
        .chain(passes.iter().map(|p| PassInfo {
            name: p.name(),
            paper_section: p.paper_section(),
            stage: p.stage(),
        }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_analysis::Bindings;
    use gpgpu_ast::parse_kernel;

    const MM: &str = r#"
        __global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
            float sum = 0.0f;
            for (int i = 0; i < w; i = i + 1) {
                sum += a[idy][i] * b[i][idx];
            }
            c[idy][idx] = sum;
        }
    "#;

    fn mm_state() -> PipelineState {
        let k = parse_kernel(MM).unwrap();
        let bindings: Bindings = [("n".to_string(), 1024i64), ("w".to_string(), 1024)].into();
        PipelineState::new(k, bindings)
    }

    #[test]
    fn disabled_stage_skips_without_running() {
        let mut st = mm_state();
        let mut pm = PassManager::new(StageSet::none());
        let before = st.kernel.clone();
        let outcome = pm.run(&mut st, &mut CoalescePass).unwrap();
        assert_eq!(outcome, PassOutcome::Skipped);
        assert_eq!(st.kernel, before);
        assert_eq!(st.trace.len(), 0, "gated passes leave no trace");
    }

    #[test]
    fn run_emits_pass_completed_with_delta() {
        let mut st = mm_state();
        let mut pm = PassManager::new(StageSet::all());
        pm.run(&mut st, &mut CoalescePass).unwrap();
        let completed = st.trace.events().iter().any(|e| {
            matches!(e, TraceEvent::PassCompleted { pass: "coalesce", delta, .. }
                if delta.statements_after > delta.statements_before)
        });
        assert!(completed, "{:?}", st.trace.events());
    }

    #[test]
    fn layouts_survive_the_whole_post_vectorize_pipeline() {
        let mut st = mm_state();
        let mut pm = PassManager::new(StageSet::all());
        pm.run(&mut st, &mut CoalescePass).unwrap();
        pm.am.sync(st.version());
        let baseline = pm.am.stats();
        let before = pm
            .am
            .layouts(&st.kernel, &st.bindings)
            .unwrap_or_else(|e| panic!("{e}"));
        pm.run(&mut st, &mut ThreadBlockMergePass { factor: 16 })
            .unwrap();
        pm.run(
            &mut st,
            &mut ThreadMergePass {
                axis: MergeAxis::Y,
                factor: 4,
            },
        )
        .unwrap();
        let after = pm
            .am
            .layouts(&st.kernel, &st.bindings)
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(
            std::sync::Arc::ptr_eq(&before, &after),
            "merges preserve the layout analysis"
        );
        assert!(pm.am.stats().hits > baseline.hits);
    }

    #[test]
    fn a_panicking_pass_is_contained_as_a_fault() {
        struct Bomb;
        impl Pass for Bomb {
            fn name(&self) -> &'static str {
                "bomb"
            }
            fn paper_section(&self) -> &'static str {
                "§0"
            }
            fn stage(&self) -> &'static str {
                "coalesce"
            }
            fn run(
                &mut self,
                _state: &mut PipelineState,
                _am: &mut AnalysisManager,
            ) -> Result<PassOutcome, PassError> {
                panic!("boom");
            }
        }
        let mut st = mm_state();
        let mut pm = PassManager::new(StageSet::all());
        let err = pm.run(&mut st, &mut Bomb).unwrap_err();
        assert!(err.fault);
        assert_eq!(err.pass, "bomb");
        assert!(err.message.contains("boom"), "{}", err.message);
    }

    #[test]
    fn dissection_labels_stay_in_sync_with_the_registry() {
        // The Figure 12 dissection flips one stage gate per label; the
        // registry's passes, deduplicated by stage in pipeline order, must
        // walk exactly the same sequence. Adding a pass with a new stage
        // (or renaming a gate) breaks this until the dissection table and
        // `StageSet::enabled` learn about it.
        let stage_order = ["vectorize", "coalesce", "merge", "prefetch", "partition"];
        let d = StageSet::dissection();
        assert_eq!(d.len(), stage_order.len() + 1, "one label per stage plus naive");
        for (i, stage) in stage_order.iter().enumerate() {
            assert!(
                !d[i].1.enabled(stage),
                "`{}` enables `{stage}` a step early",
                d[i].0
            );
            assert!(
                d[i + 1].1.enabled(stage),
                "`{}` does not enable `{stage}`",
                d[i + 1].0
            );
        }
        let mut registered = Vec::new();
        for p in registered_passes() {
            // Fusion precedes the single-kernel pipeline and is not a
            // dissection step (it needs a multi-kernel group to act on).
            if p.stage == "fusion" {
                continue;
            }
            if registered.last() != Some(&p.stage) {
                registered.push(p.stage);
            }
        }
        assert_eq!(registered, stage_order);
    }

    #[test]
    fn registry_covers_all_stages_in_pipeline_order() {
        let passes = registered_passes();
        assert_eq!(passes.len(), 9);
        let stages: Vec<&str> = passes.iter().map(|p| p.stage).collect();
        assert_eq!(
            stages,
            [
                "fusion",
                "vectorize",
                "vectorize",
                "coalesce",
                "merge",
                "merge",
                "merge",
                "prefetch",
                "partition"
            ]
        );
        let names: Vec<&str> = passes.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "fusion",
                "vectorize",
                "vectorize-amd",
                "coalesce",
                "reduction",
                "block-merge",
                "thread-merge",
                "prefetch",
                "camping"
            ]
        );
    }
}
