//! Design-space exploration (paper §4).
//!
//! Merging thread blocks and threads is the compiler's way of choosing tile
//! sizes and unroll factors; the best degrees depend non-linearly on the
//! hardware and the input size, so the compiler generates multiple versions
//! and searches empirically. The paper test-runs each version on the GPU;
//! here each version is scored by the simulator's trace-driven timing model
//! (the analytical-model alternative the paper discusses).

use crate::domain::Domain;
use crate::error::{panic_message, FaultReason};
use crate::fault;
use crate::pass_manager::PassManager;
use crate::pipeline::{CompileError, CompileOptions};
use gpgpu_analysis::{AnalysisManager, CacheStats};
use gpgpu_ast::LaunchConfig;
use gpgpu_sim::{ExecError, PerfEstimate, PerfError, PerfOptions};
use gpgpu_trace::{CounterSnapshot, MetricsRegistry, SpanId, TraceEvent};
use gpgpu_transform::{
    CampingPass, MergeAxis, PassError, PipelineState, PrefetchPass, ThreadBlockMergePass,
    ThreadMergePass,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// The explored merge degrees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Thread-block merge factors along X (the paper targets 128/256/512
    /// threads per block, i.e. merging 8/16/32 half-warp blocks).
    pub block_merge_x: Vec<i64>,
    /// Thread merge degrees along Y.
    pub thread_merge_y: Vec<i64>,
    /// Thread merge degrees along X, explored for 1-D kernels (a 2-D
    /// kernel prefers the Y direction, which preserves coalescing for
    /// free).
    pub thread_merge_x: Vec<i64>,
    /// Per-candidate fuel budget (interpreter steps); `None` uses the
    /// simulator's built-in step limit. A candidate that runs out is
    /// contained as a fault, not a process abort.
    pub candidate_fuel: Option<u64>,
    /// Per-candidate wall-clock deadline in milliseconds; `None` disables
    /// the deadline.
    pub candidate_deadline_ms: Option<u64>,
    /// Worker threads evaluating candidates; `None` sizes the pool from
    /// the host's available parallelism. `Some(1)` forces the serial
    /// schedule (used by the timing-model bench to measure the speedup of
    /// the parallel sweep).
    pub workers: Option<usize>,
    /// Warm-start plan from the persistent tuning store: when set, the
    /// search evaluates only the seed configurations (plus their grid
    /// neighbors when [`WarmStartPlan::expand`] is set) instead of the
    /// full cross product, falling back to the full grid when no seed
    /// lies inside it.
    pub warm_start: Option<WarmStartPlan>,
}

/// The configurations a warm-started search evaluates instead of the full
/// grid. Produced by the tuning store's lookup (`gpgpu-tuning`), consumed
/// here where the factor vectors live.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarmStartPlan {
    /// Best-known merge-degree triples, best first.
    pub seeds: Vec<(i64, i64, i64)>,
    /// Widen each seed to its adjacent factors along every axis — used
    /// when the seeds come from a *neighboring* size point rather than an
    /// exact hit, where the optimum may sit one grid step away.
    pub expand: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            block_merge_x: vec![8, 16, 32],
            thread_merge_y: vec![4, 8, 16, 32],
            thread_merge_x: vec![2, 4],
            candidate_fuel: None,
            candidate_deadline_ms: Some(10_000),
            workers: None,
            warm_start: None,
        }
    }
}

impl ExploreOptions {
    /// Stable signature of the search grid, hashed into the tuning-store
    /// shape so winners found under one grid never warm-start another.
    pub fn grid_signature(&self) -> String {
        let join = |v: &[i64]| {
            v.iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "bx{};ty{};tx{}",
            join(&self.block_merge_x),
            join(&self.thread_merge_y),
            join(&self.thread_merge_x)
        )
    }
}

/// Why one design-space candidate produced no estimate.
#[derive(Debug, Clone, PartialEq)]
enum CandidateFailure {
    /// An expected rejection: merge precondition, non-tiling domain, or a
    /// configuration that does not fit the machine.
    Rejected(String),
    /// A contained fault (panic, fuel exhaustion, deadline overrun). The
    /// flag records whether the candidate was retried once first.
    Fault(FaultReason, bool),
}

/// One evaluated point of the design space.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Thread blocks merged along X (1 = none).
    pub block_merge_x: i64,
    /// Threads merged along Y (1 = none).
    pub thread_merge_y: i64,
    /// Threads merged along X (1 = none; explored for 1-D kernels).
    pub thread_merge_x: i64,
    /// Elements per thread for reduction kernels (None otherwise).
    pub reduction_elems: Option<i64>,
    /// Estimated time in milliseconds.
    pub time_ms: f64,
}

impl Candidate {
    /// Stable label used by the metrics registry and trace events,
    /// e.g. `bx8_ty4_tx1` or `red256`.
    pub fn label(&self) -> String {
        match self.reduction_elems {
            Some(e) => format!("red{e}"),
            None => format!(
                "bx{}_ty{}_tx{}",
                self.block_merge_x, self.thread_merge_y, self.thread_merge_x
            ),
        }
    }
}

/// The result of exploration: the winning kernel state and its launch.
#[derive(Debug, Clone)]
pub struct Explored {
    /// The winning pipeline state.
    pub state: PipelineState,
    /// Its launch configuration.
    pub launch: LaunchConfig,
    /// Its performance estimate.
    pub estimate: PerfEstimate,
    /// The winning configuration.
    pub chosen: Candidate,
    /// Every evaluated point (for Figure 10-style sweeps).
    pub evaluated: Vec<Candidate>,
    /// Per-candidate counter snapshots; the winner is marked chosen.
    pub metrics: MetricsRegistry,
    /// Search-level trace events (candidate evaluations + selection),
    /// appended after the winning state's own events.
    pub events: Vec<TraceEvent>,
    /// Size of the full design space (before any warm-start narrowing) —
    /// the denominator of the candidate-reduction ratio.
    pub full_space: usize,
    /// True when a warm-start plan actually narrowed the search.
    pub warm_started: bool,
}

/// Builds the launch configuration implied by a pipeline state and domain.
///
/// Returns `None` when the domain does not tile evenly.
pub fn launch_for(state: &PipelineState, domain: &Domain) -> Option<LaunchConfig> {
    let span_x = state.block_x * state.thread_merge_x;
    let span_y = state.block_y * state.thread_merge_y;
    if span_x <= 0 || span_y <= 0 || domain.x % span_x != 0 || domain.y % span_y != 0 {
        return None;
    }
    let grid_x = domain.x / span_x;
    let grid_y = domain.y / span_y;
    if grid_x < 1 || grid_y < 1 {
        return None;
    }
    Some(LaunchConfig {
        grid_x: grid_x as u32,
        grid_y: grid_y as u32,
        block_x: state.block_x as u32,
        block_y: state.block_y as u32,
    })
}

/// Applies the post-merge passes (prefetch, partition-camping elimination)
/// according to the enabled stages, through the candidate's pass manager.
///
/// # Errors
///
/// Propagates a [`PassError`] from the pass manager — in practice only a
/// contained panic, since camping and prefetching degrade by skipping.
pub fn finish_candidate(
    state: &mut PipelineState,
    domain: &Domain,
    opts: &CompileOptions,
    pm: &mut PassManager,
) -> Result<(), PassError> {
    // Camping elimination must precede prefetching: prefetch derives its
    // next-iteration fetch from the (possibly rotated) staging expression,
    // keeping the advance inside the rotation's modulo.
    if opts.stages.partition {
        if let Some(cfg) = launch_for(state, domain) {
            let grid_2d = cfg.grid_y > 1;
            // Diagonal remapping is a permutation only on square grids.
            if !grid_2d || cfg.grid_x == cfg.grid_y {
                pm.run(
                    state,
                    &mut CampingPass {
                        geometry: opts.machine.partitions,
                        grid_2d,
                    },
                )?;
            } else {
                state.emit(TraceEvent::PassSkipped {
                    pass: "camping",
                    reason: format!(
                        "diagonal remapping needs a square grid, got {}x{}",
                        cfg.grid_x, cfg.grid_y
                    ),
                });
            }
        } else {
            state.emit(TraceEvent::PassSkipped {
                pass: "camping",
                reason: format!("domain {domain} does not tile the merged block"),
            });
        }
    }
    pm.run(
        state,
        &mut PrefetchPass {
            register_budget: opts.machine.max_regs_per_thread,
        },
    )?;
    Ok(())
}

/// Explores merge degrees starting from a coalesced kernel state and
/// returns the best-performing version.
///
/// # Errors
///
/// Returns [`CompileError::NoValidConfiguration`] when no candidate fits
/// the machine and tiles the domain.
pub fn explore(
    coalesced: &PipelineState,
    am: &AnalysisManager,
    domain: &Domain,
    opts: &CompileOptions,
) -> Result<Explored, CompileError> {
    let mut x_factors = vec![1i64];
    let mut y_factors = vec![1i64];
    let mut tx_factors = vec![1i64];
    if opts.stages.merge {
        // The 16×16 exchange kernel already has a full block; others grow
        // toward 128–512 threads.
        if coalesced.block_y == 1 {
            x_factors.extend(opts.explore.block_merge_x.iter().copied());
        }
        if domain.is_2d() {
            y_factors.extend(opts.explore.thread_merge_y.iter().copied());
        } else {
            tx_factors.extend(opts.explore.thread_merge_x.iter().copied());
        }
    }

    let mut combos: Vec<(i64, i64, i64)> = Vec::new();
    for &bx in &x_factors {
        for &ty in &y_factors {
            for &tx in &tx_factors {
                combos.push((bx, ty, tx));
            }
        }
    }
    let full_space = combos.len();
    let mut warm_started = false;
    if let Some(plan) = &opts.explore.warm_start {
        let keep = warm_selection(plan, &x_factors, &y_factors, &tx_factors);
        let narrowed: Vec<(i64, i64, i64)> =
            combos.iter().copied().filter(|c| keep.contains(c)).collect();
        // A plan whose seeds all fall outside this grid (a stale or
        // foreign entry) must not empty the search; fall back to the full
        // space so the store can never produce "no candidates".
        if !narrowed.is_empty() {
            combos = narrowed;
            warm_started = true;
        }
    }

    // The explore span covers the whole parallel search; candidate spans on
    // the worker threads parent to it across the thread boundary.
    let explore_span = coalesced
        .profiler
        .span_under(coalesced.profile_span, "explore", "explore");
    let explore_span_id = explore_span.id();

    // The paper test-runs its candidate kernels independently; we evaluate
    // them on worker threads the same way. Each evaluation runs under
    // `catch_unwind` so one pathological candidate cannot take down the
    // search: a panicked slot is retried once (transient poisoning), then
    // recorded as a contained fault.
    let results: Vec<(Result<EvaluatedCandidate, CandidateFailure>, u64)> = {
        let workers = opts
            .explore
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .clamp(1, combos.len().max(1));
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<(Result<EvaluatedCandidate, CandidateFailure>, u64)>> =
            Vec::new();
        slots.resize_with(combos.len(), || None);
        let results = std::sync::Mutex::new(slots);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= combos.len() {
                        return;
                    }
                    let started = Instant::now();
                    let outcome = contained_evaluate(
                        coalesced,
                        am,
                        domain,
                        opts,
                        Some(explore_span_id),
                        combos[i],
                    );
                    let micros = started.elapsed().as_micros() as u64;
                    // A panicking sibling may have poisoned the mutex while
                    // holding no interesting state — the slots are plain
                    // data, so recover the guard and keep going.
                    results.lock().unwrap_or_else(|p| p.into_inner())[i] =
                        Some((outcome, micros));
                });
            }
        });
        results
            .into_inner()
            .unwrap_or_else(|p| p.into_inner())
            .into_iter()
            .map(|r| {
                // A slot can only be empty if a worker died outside the
                // catch_unwind envelope; treat it as a contained fault.
                r.unwrap_or_else(|| {
                    (
                        Err(CandidateFailure::Fault(
                            FaultReason::Panic("worker died before reporting".into()),
                            false,
                        )),
                        0,
                    )
                })
            })
            .collect()
    };
    drop(explore_span);

    let mut best: Option<Explored> = None;
    let mut evaluated = Vec::new();
    let mut metrics = MetricsRegistry::new();
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut last_error: Option<String> = None;
    let mut fault_count = 0usize;
    let mut last_fault: Option<String> = None;
    let mut cache = CacheStats::default();
    for (&(bx, ty, tx), (outcome, micros)) in combos.iter().zip(results) {
        metrics.record_duration("candidate_micros", micros);
        match outcome {
            Ok(ev) => {
                cache.hits += ev.cache.hits;
                cache.misses += ev.cache.misses;
                cache.invalidations += ev.cache.invalidations;
                // Simulator phase attribution: phantom-trace vs analytical
                // model wall time per candidate.
                metrics.record_duration("estimate_trace_micros", ev.estimate.trace_micros);
                metrics.record_duration("estimate_model_micros", ev.estimate.model_micros);
                metrics.record(ev.candidate.label(), ev.estimate.counter_snapshot());
                events.push(TraceEvent::CandidateEvaluated {
                    label: ev.candidate.label(),
                    block_merge_x: bx,
                    thread_merge_y: ty,
                    thread_merge_x: tx,
                    reduction_elems: None,
                    time_ms: ev.estimate.time_ms,
                    rejected: None,
                });
                evaluated.push(ev.candidate.clone());
                let better = best
                    .as_ref()
                    .map(|b| ev.estimate.time_ms < b.estimate.time_ms)
                    .unwrap_or(true);
                if better {
                    best = Some(Explored {
                        state: ev.state,
                        launch: ev.launch,
                        estimate: ev.estimate,
                        chosen: ev.candidate,
                        evaluated: Vec::new(),
                        metrics: MetricsRegistry::new(),
                        events: Vec::new(),
                        full_space,
                        warm_started,
                    });
                }
            }
            Err(failure) => {
                let label = Candidate {
                    block_merge_x: bx,
                    thread_merge_y: ty,
                    thread_merge_x: tx,
                    reduction_elems: None,
                    time_ms: 0.0,
                }
                .label();
                let msg = match &failure {
                    CandidateFailure::Rejected(msg) => msg.clone(),
                    CandidateFailure::Fault(reason, retried) => {
                        events.push(TraceEvent::CandidateFault {
                            label: label.clone(),
                            fault: reason.to_string(),
                            retried: *retried,
                        });
                        let mut snapshot = CounterSnapshot::new();
                        snapshot.push("faulted", 1.0);
                        metrics.record(label.clone(), snapshot);
                        fault_count += 1;
                        let msg = format!("fault: {reason}");
                        last_fault = Some(msg.clone());
                        msg
                    }
                };
                events.push(TraceEvent::CandidateEvaluated {
                    label,
                    block_merge_x: bx,
                    thread_merge_y: ty,
                    thread_merge_x: tx,
                    reduction_elems: None,
                    time_ms: 0.0,
                    rejected: Some(msg.clone()),
                });
                last_error = Some(msg);
            }
        }
    }
    // Compilation-wide cache effectiveness of the shared analysis snapshot
    // across the whole search (the layouts computed once during coalescing
    // are hit by every candidate).
    metrics.push_global("analysis_cache_hits", cache.hits as f64);
    metrics.push_global("analysis_cache_misses", cache.misses as f64);
    metrics.push_global("analysis_cache_invalidations", cache.invalidations as f64);
    match best {
        Some(mut b) => {
            b.evaluated = evaluated;
            metrics.set_chosen(b.chosen.label());
            // The winner's state carries only the suffix of events beyond
            // the shared snapshot; fold it in ahead of the search events.
            let mut combined = std::mem::take(&mut b.state.trace).into_events();
            combined.extend(events);
            combined.push(TraceEvent::MergeSelected {
                block_merge_x: b.chosen.block_merge_x,
                thread_merge_y: b.chosen.thread_merge_y,
                thread_merge_x: b.chosen.thread_merge_x,
                reduction_elems: b.chosen.reduction_elems,
                time_ms: b.chosen.time_ms,
            });
            b.metrics = metrics;
            b.events = combined;
            Ok(b)
        }
        // Faults are the actionable signal when nothing survived — a tiling
        // rejection after a dozen contained panics is noise, so prefer the
        // last fault over the last ordinary rejection.
        None => Err(CompileError::NoValidConfiguration(match last_fault {
            Some(f) => format!("{fault_count} candidate(s) faulted; last {f}"),
            None => last_error.unwrap_or_else(|| "no candidates".into()),
        })),
    }
}

/// One successfully evaluated design-space point.
struct EvaluatedCandidate {
    state: PipelineState,
    launch: LaunchConfig,
    estimate: PerfEstimate,
    candidate: Candidate,
    /// Analysis-cache traffic this candidate generated on top of the
    /// inherited snapshot.
    cache: CacheStats,
}

/// The configurations a warm-start plan selects out of the factor grid:
/// each seed itself, widened to the adjacent factor along every axis when
/// the plan asks for expansion. Seeds outside the grid select nothing.
fn warm_selection(
    plan: &WarmStartPlan,
    x_factors: &[i64],
    y_factors: &[i64],
    tx_factors: &[i64],
) -> Vec<(i64, i64, i64)> {
    fn axis(vals: &[i64], v: i64, expand: bool) -> Vec<i64> {
        match vals.iter().position(|&x| x == v) {
            Some(i) if expand => {
                let mut out = vec![vals[i]];
                if i > 0 {
                    out.push(vals[i - 1]);
                }
                if i + 1 < vals.len() {
                    out.push(vals[i + 1]);
                }
                out
            }
            Some(i) => vec![vals[i]],
            None => Vec::new(),
        }
    }
    let mut keep: Vec<(i64, i64, i64)> = Vec::new();
    for &(bx, ty, tx) in &plan.seeds {
        for &kb in &axis(x_factors, bx, plan.expand) {
            for &kt in &axis(y_factors, ty, plan.expand) {
                for &kx in &axis(tx_factors, tx, plan.expand) {
                    if !keep.contains(&(kb, kt, kx)) {
                        keep.push((kb, kt, kx));
                    }
                }
            }
        }
    }
    keep
}

/// Runs one candidate under panic containment: a panic is retried once
/// (the paper's empirical search simply re-runs a flaky measurement) and
/// then recorded as a fault; fuel and deadline overruns map to faults
/// directly.
fn contained_evaluate(
    coalesced: &PipelineState,
    am: &AnalysisManager,
    domain: &Domain,
    opts: &CompileOptions,
    explore_span: Option<SpanId>,
    merges: (i64, i64, i64),
) -> Result<EvaluatedCandidate, CandidateFailure> {
    let attempt = || {
        catch_unwind(AssertUnwindSafe(|| {
            evaluate_candidate(coalesced, am, domain, opts, explore_span, merges)
        }))
    };
    match attempt() {
        Ok(outcome) => outcome,
        Err(_first) => match attempt() {
            Ok(outcome) => outcome,
            Err(payload) => Err(CandidateFailure::Fault(
                FaultReason::Panic(panic_message(payload)),
                true,
            )),
        },
    }
}

/// Maps a pass-manager failure into a candidate failure: contained panics
/// are faults, everything else is an ordinary rejection.
fn pass_failure(e: PassError) -> CandidateFailure {
    if e.fault {
        CandidateFailure::Fault(FaultReason::Panic(e.message), false)
    } else {
        CandidateFailure::Rejected(e.message)
    }
}

fn evaluate_candidate(
    coalesced: &PipelineState,
    am: &AnalysisManager,
    domain: &Domain,
    opts: &CompileOptions,
    explore_span: Option<SpanId>,
    (bx, ty, tx): (i64, i64, i64),
) -> Result<EvaluatedCandidate, CandidateFailure> {
    let label = Candidate {
        block_merge_x: bx,
        thread_merge_y: ty,
        thread_merge_x: tx,
        reduction_elems: None,
        time_ms: 0.0,
    }
    .label();
    // Opened before fault injection so an injected panic unwinds through
    // the guard and the span table stays balanced.
    let cand_span = coalesced
        .profiler
        .span_under(explore_span, format!("candidate:{label}"), "candidate");
    fault::maybe_panic(&label);
    let rejected = CandidateFailure::Rejected;
    // Branch from the shared coalesced snapshot: the kernel is shared
    // copy-on-write and the analysis cache is inherited, so the layouts
    // resolved during coalescing are never recomputed per candidate.
    let mut st = coalesced.branch();
    st.profile_span = Some(cand_span.id());
    let mut pm = PassManager::with_manager(opts.stages, am.clone());
    let inherited = pm.am.stats();
    if bx > 1 {
        pm.run(&mut st, &mut ThreadBlockMergePass { factor: bx })
            .map_err(pass_failure)?;
    }
    if ty > 1 {
        pm.run(
            &mut st,
            &mut ThreadMergePass {
                axis: MergeAxis::Y,
                factor: ty,
            },
        )
        .map_err(pass_failure)?;
    }
    if tx > 1 {
        pm.run(
            &mut st,
            &mut ThreadMergePass {
                axis: MergeAxis::X,
                factor: tx,
            },
        )
        .map_err(pass_failure)?;
    }
    finish_candidate(&mut st, domain, opts, &mut pm).map_err(pass_failure)?;
    let cfg = launch_for(&st, domain)
        .ok_or_else(|| rejected(format!("domain {domain} does not tile {bx}x{ty}x{tx}")))?;
    let fuel = fault::fuel_override(&label).or(opts.explore.candidate_fuel);
    let deadline = opts
        .explore
        .candidate_deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    // The timing model reuses the memoized resources and layouts instead
    // of recomputing them per candidate.
    pm.am.sync(st.version());
    let resources = pm.am.resources(&st.kernel);
    let layouts = pm
        .am
        .layouts(&st.kernel, &st.bindings)
        .map_err(|e| rejected(e.to_string()))?;
    let estimate_span = cand_span.child("estimate", "estimate");
    let estimate = gpgpu_sim::estimate_prepared(
        &st.kernel,
        &cfg,
        &st.bindings,
        &opts.machine,
        &PerfOptions {
            sample_blocks: opts.sample_blocks,
            fuel,
            deadline,
            cost_model: opts.cost_model,
            ..PerfOptions::default()
        },
        &resources,
        &layouts,
    )
    .map_err(|e| match e {
        PerfError::Exec(ExecError::IterationLimit) => {
            CandidateFailure::Fault(FaultReason::FuelExhausted, false)
        }
        PerfError::Exec(ExecError::DeadlineExceeded) => {
            CandidateFailure::Fault(FaultReason::DeadlineExceeded, false)
        }
        PerfError::DoesNotFit(msg) => rejected(msg),
        other => rejected(other.to_string()),
    })?;
    drop(estimate_span);
    let candidate = Candidate {
        block_merge_x: bx,
        thread_merge_y: ty,
        thread_merge_x: tx,
        reduction_elems: None,
        time_ms: estimate.time_ms,
    };
    let total = pm.am.stats();
    let cache = CacheStats {
        hits: total.hits - inherited.hits,
        misses: total.misses - inherited.misses,
        invalidations: total.invalidations - inherited.invalidations,
    };
    Ok(EvaluatedCandidate {
        state: st,
        launch: cfg,
        estimate,
        candidate,
        cache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_transform::PipelineState;

    fn state(bx: i64, by: i64, tmx: i64, tmy: i64) -> PipelineState {
        let k = gpgpu_ast::parse_kernel(
            "__global__ void f(float c[n][m], int n, int m) { c[idy][idx] = 0.0f; }",
        )
        .unwrap();
        let mut st = PipelineState::new(k, gpgpu_analysis::Bindings::new());
        st.block_x = bx;
        st.block_y = by;
        st.thread_merge_x = tmx;
        st.thread_merge_y = tmy;
        st
    }

    #[test]
    fn launch_for_tiles_domain() {
        let st = state(128, 1, 1, 4);
        let cfg = launch_for(&st, &Domain { x: 1024, y: 512 }).unwrap();
        assert_eq!((cfg.grid_x, cfg.grid_y), (8, 128));
        assert_eq!((cfg.block_x, cfg.block_y), (128, 1));
    }

    #[test]
    fn launch_for_rejects_uneven_tiling() {
        let st = state(128, 1, 1, 1);
        assert!(launch_for(&st, &Domain { x: 100, y: 1 }).is_none());
        let st = state(16, 16, 1, 1);
        assert!(launch_for(&st, &Domain { x: 64, y: 40 }).is_none());
    }

    #[test]
    fn default_explore_space_matches_paper() {
        let e = ExploreOptions::default();
        // §4: 128/256/512-thread blocks = merging 8/16/32 half-warp blocks.
        assert_eq!(e.block_merge_x, vec![8, 16, 32]);
        assert_eq!(e.thread_merge_y, vec![4, 8, 16, 32]);
    }
}
