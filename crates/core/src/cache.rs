//! Content-addressed compile-cache hooks: the request fingerprint and the
//! cacheable artifact.
//!
//! The batch-compilation service (`gpgpu-service`) memoizes whole
//! compilations across requests, the way the `AnalysisManager` memoizes
//! analyses across passes inside one compilation. The key is a stable
//! **fingerprint** over everything that determines the compiler's output:
//!
//! * the cache format version ([`CACHE_SCHEMA`]) — bumping it invalidates
//!   every existing entry;
//! * the *normalized* kernel source (the parsed kernel reprinted with
//!   default [`PrintOptions`], so whitespace/comment differences share an
//!   entry);
//! * the target machine name;
//! * the size bindings, iterated in sorted order;
//! * the enabled stage set;
//! * the verification seed;
//! * the cost model ranking the candidates (the analytic and
//!   memory-hierarchy models can pick different winners).
//!
//! [`CompileOptions`] fields that cannot be expressed in a service request
//! (custom explore degrees, sample-block overrides, span tables) are *not*
//! fingerprinted; the service constructs its options exclusively from
//! fingerprinted fields, so a cached artifact can never be served for an
//! option set the fingerprint does not cover.
//!
//! The value is a [`CachedArtifact`]: the rendered compiler output
//! (optimized source, per-launch kernel text in both naming styles, launch
//! configurations, extra buffers, headline performance numbers). Artifacts
//! round-trip through the std-only `gpgpu-trace` JSON model, which is what
//! the persistent on-disk store serializes.

use crate::pipeline::{CompileOptions, CompiledKernel};
use gpgpu_ast::{print_kernel, Kernel, PrintOptions};
use gpgpu_trace::Json;

/// Version tag of the compile-cache format. Stamped into every persisted
/// entry and mixed into every fingerprint: changing the artifact schema or
/// the fingerprint definition bumps this and orphans (invalidates) all
/// previously stored entries.
pub const CACHE_SCHEMA: &str = "gpgpu-cache/v3";

/// 64-bit FNV-1a.
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Incremental 128-bit fingerprint state: two independent FNV-1a streams
/// (different offset bases, a domain byte injected into the second) so a
/// collision must defeat both.
struct Fingerprint {
    lo: u64,
    hi: u64,
}

impl Fingerprint {
    fn new() -> Fingerprint {
        Fingerprint {
            lo: 0xcbf2_9ce4_8422_2325,
            hi: 0x6c62_272e_07bb_0142,
        }
    }

    /// Feeds one field, terminated by a separator byte so adjacent fields
    /// cannot alias (`"ab"+"c"` vs `"a"+"bc"`).
    fn field(&mut self, bytes: &[u8]) {
        self.lo = fnv1a(self.lo, bytes);
        self.lo = fnv1a(self.lo, &[0xff]);
        self.hi = fnv1a(self.hi, &[0xfe]);
        self.hi = fnv1a(self.hi, bytes);
    }

    fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.lo, self.hi)
    }
}

impl CompileOptions {
    /// The content-addressed cache key for compiling `kernel` under these
    /// options: 32 hex characters, stable across processes and runs.
    ///
    /// The kernel is normalized by reprinting the parsed AST, so two
    /// sources that parse identically fingerprint identically.
    pub fn fingerprint(&self, kernel: &Kernel) -> String {
        let mut fp = Fingerprint::new();
        fp.field(CACHE_SCHEMA.as_bytes());
        fp.field(print_kernel(kernel, PrintOptions::default()).as_bytes());
        fp.field(self.machine.name.as_bytes());
        let mut bindings: Vec<(&str, i64)> = self
            .bindings
            .iter()
            .map(|(n, &v)| (n.as_str(), v))
            .collect();
        bindings.sort_unstable();
        for (name, value) in bindings {
            fp.field(name.as_bytes());
            fp.field(&value.to_le_bytes());
        }
        let s = self.stages;
        let stage_bits = [
            s.vectorize,
            s.coalesce,
            s.merge,
            s.prefetch,
            s.partition,
            s.fusion,
        ]
        .map(|b| if b { b'1' } else { b'0' });
        fp.field(&stage_bits);
        fp.field(&self.verify_seed.to_le_bytes());
        fp.field(self.cost_model.as_str().as_bytes());
        fp.hex()
    }

    /// The cache key for compiling the fused form of an ordered
    /// producer→consumer group under these options: the schema tag, a
    /// `fuse` marker, and the ordered member fingerprints (each of which
    /// already covers the normalized member source, machine, bindings,
    /// stage set — including the fusion gate — seed, and cost model).
    ///
    /// Order matters: fusing `a` into `b` is not fusing `b` into `a`.
    pub fn fused_fingerprint(&self, producer: &Kernel, consumer: &Kernel) -> String {
        let mut fp = Fingerprint::new();
        fp.field(CACHE_SCHEMA.as_bytes());
        fp.field(b"fuse");
        fp.field(self.fingerprint(producer).as_bytes());
        fp.field(self.fingerprint(consumer).as_bytes());
        fp.hex()
    }
}

/// How a fused artifact came to be: which members were merged, how the
/// intermediate was forwarded, and what the cost model said it saved.
/// `None` on ordinary single-kernel artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionMeta {
    /// Forwarding mode (`register` or `inline`).
    pub mode: String,
    /// Ordered member kernel names (producer first).
    pub members: Vec<String>,
    /// The intermediate array eliminated by the fusion.
    pub intermediate: String,
    /// Global-memory bytes the cost model says the fusion saved.
    pub bytes_saved: f64,
}

impl FusionMeta {
    fn to_json(&self) -> Json {
        Json::obj([
            ("mode", Json::str(&self.mode)),
            (
                "members",
                Json::Arr(self.members.iter().map(Json::str).collect()),
            ),
            ("intermediate", Json::str(&self.intermediate)),
            ("bytes_saved", Json::num(self.bytes_saved)),
        ])
    }
}

/// One extra buffer a launch needs (a rendered
/// [`gpgpu_analysis::ArrayLayout`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BufferArtifact {
    /// Buffer name.
    pub name: String,
    /// Element type, rendered (`Float`, …).
    pub elem: String,
    /// Logical extents, outermost first.
    pub dims: Vec<i64>,
}

/// One launch of a cached compilation: the rendered kernel (in both naming
/// styles, so any front end can print from the artifact alone), its launch
/// configuration, and the buffers the runtime must allocate.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchArtifact {
    /// The launch configuration, rendered (`<<<(g,g),(b,b)>>>` style).
    pub launch: String,
    /// The kernel printed with the paper's shorthand ids.
    pub kernel: String,
    /// The kernel printed with `threadIdx.x`-style CUDA names.
    pub kernel_cuda: String,
    /// Zero-initialized buffers the launch requires beyond the naive
    /// kernel's parameters.
    pub extra_buffers: Vec<BufferArtifact>,
}

/// The cacheable output of one compilation — everything a batch or serve
/// response renders, and nothing that cannot round-trip through JSON.
///
/// Compilation is deterministic, so an artifact served from the cache is
/// byte-identical to what a cold compile of the same fingerprint would
/// produce; the service's property tests pin that.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedArtifact {
    /// The fingerprint this artifact was compiled under.
    pub fingerprint: String,
    /// Kernel name (the first launch's).
    pub kernel_name: String,
    /// The optimized source, shorthand-printed (all launches).
    pub source: String,
    /// The launch sequence.
    pub launches: Vec<LaunchArtifact>,
    /// Predicted total time of the sequence, in milliseconds.
    pub time_ms: f64,
    /// Aggregate GFLOPS.
    pub gflops: f64,
    /// Aggregate effective bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Degradation record (`(slug, detail)`) when the pipeline fell back to
    /// the verified naive kernel.
    pub degraded: Option<(String, String)>,
    /// Fusion provenance, when this artifact is a fused group (or a
    /// fallback compiled from one); `None` for single-kernel artifacts.
    pub fusion: Option<FusionMeta>,
}

impl CompiledKernel {
    /// Extracts the cacheable artifact of this compilation (the service's
    /// cache hook).
    pub fn cache_artifact(&self, fingerprint: &str) -> CachedArtifact {
        let kernel_name = self
            .launches
            .first()
            .map(|l| l.kernel.name.clone())
            .unwrap_or_else(|| "?".to_string());
        let launches = self
            .launches
            .iter()
            .map(|l| LaunchArtifact {
                launch: l.launch.to_string(),
                kernel: print_kernel(&l.kernel, PrintOptions::default()),
                kernel_cuda: print_kernel(&l.kernel, PrintOptions::cuda()),
                extra_buffers: l
                    .extra_buffers
                    .iter()
                    .map(|b| BufferArtifact {
                        name: b.name.clone(),
                        elem: format!("{:?}", b.elem),
                        dims: b.dims.clone(),
                    })
                    .collect(),
            })
            .collect();
        CachedArtifact {
            fingerprint: fingerprint.to_string(),
            kernel_name,
            source: self.source.clone(),
            launches,
            time_ms: self.total_time_ms(),
            gflops: self.gflops(),
            bandwidth_gbps: self.effective_bandwidth_gbps(),
            degraded: self
                .degraded
                .as_ref()
                .map(|r| (r.slug().to_string(), r.detail().to_string())),
            fusion: None,
        }
    }
}

impl CachedArtifact {
    /// Serializes the artifact as a self-describing `gpgpu-cache/v1`
    /// JSON document (what the on-disk store writes).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(CACHE_SCHEMA)),
            ("fingerprint", Json::str(&self.fingerprint)),
            ("kernel", Json::str(&self.kernel_name)),
            ("source", Json::str(&self.source)),
            (
                "launches",
                Json::Arr(
                    self.launches
                        .iter()
                        .map(|l| {
                            Json::obj([
                                ("launch", Json::str(&l.launch)),
                                ("kernel", Json::str(&l.kernel)),
                                ("kernel_cuda", Json::str(&l.kernel_cuda)),
                                (
                                    "extra_buffers",
                                    Json::Arr(
                                        l.extra_buffers
                                            .iter()
                                            .map(|b| {
                                                Json::obj([
                                                    ("name", Json::str(&b.name)),
                                                    ("elem", Json::str(&b.elem)),
                                                    (
                                                        "dims",
                                                        Json::Arr(
                                                            b.dims
                                                                .iter()
                                                                .map(|&d| Json::num(d as f64))
                                                                .collect(),
                                                        ),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("time_ms", Json::num(self.time_ms)),
            ("gflops", Json::num(self.gflops)),
            ("bandwidth_gbps", Json::num(self.bandwidth_gbps)),
            (
                "degraded",
                match &self.degraded {
                    Some((slug, detail)) => Json::obj([
                        ("reason", Json::str(slug)),
                        ("detail", Json::str(detail)),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "fusion",
                match &self.fusion {
                    Some(meta) => meta.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Parses a persisted artifact, validating the schema tag — an entry
    /// written by any other cache format version is rejected, which is how
    /// format bumps invalidate stale stores.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (wrong
    /// schema, missing field, mistyped field).
    pub fn from_json(doc: &Json) -> Result<CachedArtifact, String> {
        let str_field = |obj: &Json, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string `{key}`"))
        };
        let num_field = |obj: &Json, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric `{key}`"))
        };
        let schema = str_field(doc, "schema")?;
        if schema != CACHE_SCHEMA {
            return Err(format!(
                "cache schema `{schema}` is not `{CACHE_SCHEMA}`"
            ));
        }
        let mut launches = Vec::new();
        for l in doc
            .get("launches")
            .and_then(Json::as_arr)
            .ok_or("missing `launches` array")?
        {
            let mut extra_buffers = Vec::new();
            for b in l
                .get("extra_buffers")
                .and_then(Json::as_arr)
                .ok_or("missing `extra_buffers` array")?
            {
                let dims = b
                    .get("dims")
                    .and_then(Json::as_arr)
                    .ok_or("missing `dims` array")?
                    .iter()
                    .map(|d| d.as_f64().map(|v| v as i64))
                    .collect::<Option<Vec<i64>>>()
                    .ok_or("non-numeric buffer dim")?;
                extra_buffers.push(BufferArtifact {
                    name: str_field(b, "name")?,
                    elem: str_field(b, "elem")?,
                    dims,
                });
            }
            launches.push(LaunchArtifact {
                launch: str_field(l, "launch")?,
                kernel: str_field(l, "kernel")?,
                kernel_cuda: str_field(l, "kernel_cuda")?,
                extra_buffers,
            });
        }
        let degraded = match doc.get("degraded") {
            None | Some(Json::Null) => None,
            Some(d) => Some((str_field(d, "reason")?, str_field(d, "detail")?)),
        };
        let fusion = match doc.get("fusion") {
            None | Some(Json::Null) => None,
            Some(m) => Some(FusionMeta {
                mode: str_field(m, "mode")?,
                members: m
                    .get("members")
                    .and_then(Json::as_arr)
                    .ok_or("missing fusion `members` array")?
                    .iter()
                    .map(|v| v.as_str().map(str::to_string))
                    .collect::<Option<Vec<String>>>()
                    .ok_or("non-string fusion member")?,
                intermediate: str_field(m, "intermediate")?,
                bytes_saved: num_field(m, "bytes_saved")?,
            }),
        };
        Ok(CachedArtifact {
            fingerprint: str_field(doc, "fingerprint")?,
            kernel_name: str_field(doc, "kernel")?,
            source: str_field(doc, "source")?,
            launches,
            time_ms: num_field(doc, "time_ms")?,
            gflops: num_field(doc, "gflops")?,
            bandwidth_gbps: num_field(doc, "bandwidth_gbps")?,
            degraded,
            fusion,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StageSet;
    use gpgpu_ast::parse_kernel;
    use gpgpu_sim::MachineDesc;

    const MV: &str = "__global__ void mv(float a[n][w], float b[w], float c[n], int n, int w) {
        float sum = 0.0f;
        for (int i = 0; i < w; i = i + 1) { sum += a[idx][i] * b[i]; }
        c[idx] = sum;
    }";

    fn opts() -> CompileOptions {
        CompileOptions::new(MachineDesc::gtx280())
            .bind("n", 256)
            .bind("w", 256)
    }

    #[test]
    fn fingerprint_is_stable_and_whitespace_insensitive() {
        let k = parse_kernel(MV).unwrap();
        let fp = opts().fingerprint(&k);
        assert_eq!(fp.len(), 32);
        assert_eq!(fp, opts().fingerprint(&k), "same inputs, same key");
        // Reformatting the source does not change the parsed kernel, so
        // the normalized fingerprint is identical.
        let reformatted = parse_kernel(&MV.replace("    ", "\t")).unwrap();
        assert_eq!(fp, opts().fingerprint(&reformatted));
    }

    #[test]
    fn fingerprint_covers_every_keyed_option() {
        let k = parse_kernel(MV).unwrap();
        let base = opts().fingerprint(&k);
        let machine = CompileOptions::new(MachineDesc::gtx8800())
            .bind("n", 256)
            .bind("w", 256)
            .fingerprint(&k);
        let binding = opts().bind("n", 512).fingerprint(&k);
        let stages = opts().with_stages(StageSet::none()).fingerprint(&k);
        let seed = opts().with_verify_seed(7).fingerprint(&k);
        let model = opts()
            .with_cost_model(gpgpu_sim::CostModelKind::Hierarchy)
            .fingerprint(&k);
        let keys = [&base, &machine, &binding, &stages, &seed, &model];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn cost_model_invalidates_cached_fingerprints() {
        // The v1 fingerprint predates cost-model selection and the v2 one
        // predates fusion (the `fusion` stage bit, fused fingerprints, and
        // the artifact's fusion metadata); each schema bump must orphan
        // every prior entry, and the two cost models must never share an
        // entry (they can rank candidates differently).
        assert_eq!(CACHE_SCHEMA, "gpgpu-cache/v3");
        let k = parse_kernel(MV).unwrap();
        let analytic = opts()
            .with_cost_model(gpgpu_sim::CostModelKind::Analytic)
            .fingerprint(&k);
        let hierarchy = opts()
            .with_cost_model(gpgpu_sim::CostModelKind::Hierarchy)
            .fingerprint(&k);
        assert_ne!(analytic, hierarchy);
        // The default options fingerprint is the analytic one.
        assert_eq!(opts().fingerprint(&k), analytic);
    }

    #[test]
    fn binding_order_does_not_change_the_fingerprint() {
        let k = parse_kernel(MV).unwrap();
        let ab = CompileOptions::new(MachineDesc::gtx280())
            .bind("n", 256)
            .bind("w", 512)
            .fingerprint(&k);
        let ba = CompileOptions::new(MachineDesc::gtx280())
            .bind("w", 512)
            .bind("n", 256)
            .fingerprint(&k);
        assert_eq!(ab, ba);
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let k = parse_kernel(MV).unwrap();
        let o = opts();
        let compiled = crate::pipeline::compile(&k, &o).unwrap();
        let art = compiled.cache_artifact(&o.fingerprint(&k));
        let doc = art.to_json();
        let back = CachedArtifact::from_json(&doc).unwrap();
        assert_eq!(art, back);
        // And through the serialized text, as the disk store does it.
        let reparsed = gpgpu_trace::parse_json(&doc.pretty()).unwrap();
        assert_eq!(CachedArtifact::from_json(&reparsed).unwrap(), art);
    }

    #[test]
    fn fused_fingerprints_are_distinct_and_order_sensitive() {
        let a = parse_kernel(
            "__global__ void sc(float x[n], float t[n], int n) { t[idx] = x[idx] * 2.0f; }",
        )
        .unwrap();
        let b = parse_kernel(
            "__global__ void ad(float t[n], float y[n], float z[n], int n) { z[idx] = t[idx] + y[idx]; }",
        )
        .unwrap();
        let o = opts();
        let ab = o.fused_fingerprint(&a, &b);
        let ba = o.fused_fingerprint(&b, &a);
        assert_eq!(ab.len(), 32);
        assert_ne!(ab, ba, "fusion order is part of the key");
        assert_ne!(ab, o.fingerprint(&a));
        assert_ne!(ab, o.fingerprint(&b));
        // Any keyed member option shifts the fused key too.
        let other = opts().with_verify_seed(7).fused_fingerprint(&a, &b);
        assert_ne!(ab, other);
    }

    #[test]
    fn fusion_metadata_round_trips_and_defaults_to_none() {
        let art = CachedArtifact {
            fingerprint: "0".repeat(32),
            kernel_name: "fused_sc_ad".into(),
            source: String::new(),
            launches: Vec::new(),
            time_ms: 1.0,
            gflops: 2.0,
            bandwidth_gbps: 3.0,
            degraded: None,
            fusion: Some(FusionMeta {
                mode: "register".into(),
                members: vec!["sc".into(), "ad".into()],
                intermediate: "t".into(),
                bytes_saved: 8192.0,
            }),
        };
        let back = CachedArtifact::from_json(&art.to_json()).unwrap();
        assert_eq!(back, art);
        let mut doc = art.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "fusion" {
                    *v = Json::Null;
                }
            }
        }
        assert_eq!(CachedArtifact::from_json(&doc).unwrap().fusion, None);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut doc = CachedArtifact {
            fingerprint: "0".repeat(32),
            kernel_name: "k".into(),
            source: String::new(),
            launches: Vec::new(),
            time_ms: 0.0,
            gflops: 0.0,
            bandwidth_gbps: 0.0,
            degraded: None,
            fusion: None,
        }
        .to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs[0].1 = Json::str("gpgpu-cache/v0");
        }
        let err = CachedArtifact::from_json(&doc).unwrap_err();
        assert!(err.contains("gpgpu-cache/v0"), "{err}");
    }
}
