//! Functional equivalence checking: the optimized program must compute
//! exactly what the naive kernel computes.
//!
//! Both versions run on the functional simulator against identical
//! pseudo-random inputs; the declared outputs are compared element-wise
//! with a small floating-point tolerance (transformations reassociate
//! sums). Every compiler transformation in this repository is validated
//! through this door.
//!
//! [`verify_equivalence_sanitized`] additionally runs both versions under
//! the simulator's sanitize mode (see [`gpgpu_sim::sanitize`]), so a
//! miscompile whose wrong bytes happen to match — a `__shared__` staging
//! race, a read of layout padding, a divergent barrier — is still caught.

use crate::pipeline::{naive_compiled, CompileOptions, CompiledKernel};
use gpgpu_analysis::resolve_layouts_padded;
use gpgpu_ast::Kernel;
use gpgpu_sim::{abs_rel_error, launch, Device, ExecError, ExecOptions};
use std::collections::HashMap;
use std::fmt;

/// Relative tolerance for output comparison.
const RTOL: f32 = 1e-3;
/// Absolute tolerance for output comparison.
const ATOL: f32 = 1e-4;

/// A failed equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// Reference or candidate setup failed.
    Setup(String),
    /// Execution of either version failed.
    Exec(String),
    /// Outputs differ beyond tolerance.
    Mismatch {
        /// Output array.
        array: String,
        /// Flat logical index of the first differing element.
        index: usize,
        /// Naive (reference) value at that index.
        reference: f32,
        /// Optimized value at that index.
        optimized: f32,
        /// Total elements of the array differing beyond tolerance.
        count: usize,
        /// Maximum absolute error across the array.
        max_abs: f32,
        /// Maximum relative error across the array.
        max_rel: f32,
        /// Input-stream seed the comparison ran with; replay with
        /// `gpgpuc --verify-seed <seed>`.
        seed: u64,
    },
    /// The optimized program never wrote a declared output.
    MissingOutput(String),
    /// A sanitizer check fired during one of the runs (only from
    /// [`verify_equivalence_sanitized`]).
    Sanitizer {
        /// Which run tripped it: `"naive"` or the optimized kernel name.
        run: String,
        /// Stable finding identifier (see
        /// [`gpgpu_sim::SanitizerKind::name`]).
        kind: String,
        /// Array the finding refers to, when there is one.
        array: Option<String>,
        /// Rendered finding.
        detail: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Setup(s) => write!(f, "setup: {s}"),
            VerifyError::Exec(s) => write!(f, "execution: {s}"),
            VerifyError::Mismatch {
                array,
                index,
                reference,
                optimized,
                count,
                max_abs,
                max_rel,
                seed,
            } => write!(
                f,
                "mismatch in `{array}`[{index}]: naive {reference} vs optimized {optimized} \
                 ({count} element(s) differ, max abs err {max_abs:e}, max rel err {max_rel:e}, \
                 input seed {seed})"
            ),
            VerifyError::MissingOutput(a) => write!(f, "output `{a}` was never allocated"),
            VerifyError::Sanitizer { run, detail, .. } => {
                write!(f, "sanitizer fired in {run} run: {detail}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Deterministic input data: a per-array LCG stream in [-1, 1), mixed with
/// a caller seed. Seed 0 reproduces the historical default streams.
pub(crate) fn fill(name: &str, len: usize, seed: u64) -> Vec<f32> {
    let mut state: u64 =
        0x9E37_79B9_7F4A_7C15 ^ seed ^ name.bytes().map(u64::from).sum::<u64>();
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

/// Maps an execution failure to a [`VerifyError`], surfacing sanitizer
/// findings structurally instead of as a flat string.
fn map_exec_err(run: &str, e: ExecError) -> VerifyError {
    match e {
        ExecError::Sanitizer(s) => VerifyError::Sanitizer {
            run: run.to_string(),
            kind: s.name().to_string(),
            array: s.kind.array().map(str::to_string),
            detail: s.to_string(),
        },
        other => VerifyError::Exec(format!("{run}: {other}")),
    }
}

/// Runs the naive kernel and the compiled program on identical inputs and
/// compares the declared outputs.
///
/// Use small `bindings` — the functional simulator executes every thread.
///
/// # Errors
///
/// Returns the first divergence found, or a setup/execution failure.
pub fn verify_equivalence(
    naive: &Kernel,
    compiled: &CompiledKernel,
    opts: &CompileOptions,
) -> Result<(), VerifyError> {
    run_verify(naive, compiled, opts, &HashMap::new(), false)
}

/// Like [`verify_equivalence`], but with caller-supplied input streams for
/// selected arrays (numerically sensitive inputs — e.g. a triangular
/// solve's well-conditioned matrix — override the default pseudo-random
/// data).
///
/// # Errors
///
/// Same as [`verify_equivalence`].
pub fn verify_equivalence_with(
    naive: &Kernel,
    compiled: &CompiledKernel,
    opts: &CompileOptions,
    overrides: &HashMap<String, Vec<f32>>,
) -> Result<(), VerifyError> {
    run_verify(naive, compiled, opts, overrides, false)
}

/// Like [`verify_equivalence`], but executes both runs under the
/// simulator's sanitize mode: shadow-state violations (races, OOB and
/// padding reads, uninitialized reads, barrier divergence) surface as
/// [`VerifyError::Sanitizer`] even when the outputs happen to agree.
///
/// # Errors
///
/// Same as [`verify_equivalence`], plus [`VerifyError::Sanitizer`].
pub fn verify_equivalence_sanitized(
    naive: &Kernel,
    compiled: &CompiledKernel,
    opts: &CompileOptions,
) -> Result<(), VerifyError> {
    run_verify(naive, compiled, opts, &HashMap::new(), true)
}

fn run_verify(
    naive: &Kernel,
    compiled: &CompiledKernel,
    opts: &CompileOptions,
    overrides: &HashMap<String, Vec<f32>>,
    sanitize: bool,
) -> Result<(), VerifyError> {
    let outputs = naive.output_arrays();
    // Verification has its own root span (it runs after `compile` returns);
    // the phases below are its children.
    let verify_span = opts.profiler.span(
        if sanitize { "verify:sanitized" } else { "verify" },
        "verify",
    );
    // Full-grid runs dominate verification wall-clock; split the grid into
    // per-thread block clusters. Sanitized runs ignore the hint and stay
    // serial — the shadow interpreter's race detection is order-sensitive.
    let exec_opts = ExecOptions {
        sanitize,
        spans: opts.spans.clone(),
        block_clusters: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        ..ExecOptions::default()
    };

    // Input streams shared by both runs, keyed by array name.
    let naive_layouts = resolve_layouts_padded(naive, &opts.bindings)
        .map_err(|e| VerifyError::Setup(e.to_string()))?;
    let mut streams: HashMap<String, Vec<f32>> = HashMap::new();
    for p in naive.array_params() {
        let layout = &naive_layouts[&p.name];
        let lanes = layout.elem.lanes() as i64;
        let want_len = (layout.logical_elems() * lanes) as usize;
        let stream = match overrides.get(&p.name) {
            Some(data) => {
                if data.len() != want_len {
                    return Err(VerifyError::Setup(format!(
                        "override for `{}` has {} values, expected {want_len}",
                        p.name,
                        data.len()
                    )));
                }
                data.clone()
            }
            None => fill(&p.name, want_len, opts.verify_seed),
        };
        streams.insert(p.name.clone(), stream);
    }

    // Reference run.
    let ref_span = verify_span.child("run:naive", "verify");
    let reference = naive_compiled(naive, opts).map_err(|e| VerifyError::Setup(e.to_string()))?;
    let mut ref_dev = Device::new(opts.machine.clone());
    for p in naive.array_params() {
        ref_dev
            .alloc(naive_layouts[&p.name].clone())
            .upload(&streams[&p.name]);
    }
    for l in &reference.launches {
        launch(&l.kernel, &l.launch, &opts.bindings, &mut ref_dev, &exec_opts)
            .map_err(|e| map_exec_err("naive", e))?;
    }
    drop(ref_span);
    let opt_span = verify_span.child("run:optimized", "verify");

    // Candidate run: allocate the union of arrays across the launches.
    let mut cand_dev = Device::new(opts.machine.clone());
    for l in &compiled.launches {
        let layouts = resolve_layouts_padded(&l.kernel, &opts.bindings)
            .map_err(|e| VerifyError::Setup(e.to_string()))?;
        for p in l.kernel.array_params() {
            if cand_dev.buffer(&p.name).is_ok() {
                continue;
            }
            let buf = cand_dev.alloc(layouts[&p.name].clone());
            if let Some(stream) = streams.get(&p.name) {
                buf.upload(stream);
            }
        }
        for extra in &l.extra_buffers {
            if cand_dev.buffer(&extra.name).is_err() {
                cand_dev.alloc(extra.clone());
            }
            // Compiler-introduced scratch is zero-allocated by contract
            // (multi-launch reductions accumulate into it), so its
            // defined-before-read obligation is met at allocation time —
            // even when the scratch doubles as a stage parameter and was
            // allocated through the parameter path above.
            if let Ok(buf) = cand_dev.buffer_mut(&extra.name) {
                buf.mark_all_initialized();
            }
        }
    }
    for l in &compiled.launches {
        launch(&l.kernel, &l.launch, &opts.bindings, &mut cand_dev, &exec_opts)
            .map_err(|e| map_exec_err(&format!("optimized `{}`", l.kernel.name), e))?;
    }
    drop(opt_span);
    let _compare_span = verify_span.child("compare", "verify");

    // Compare the declared outputs.
    for out in &outputs {
        let want = ref_dev
            .buffer(out)
            .map_err(|e| VerifyError::Setup(e.to_string()))?
            .download();
        let got = cand_dev
            .buffer(out)
            .map_err(|_| VerifyError::MissingOutput(out.clone()))?
            .download();
        if want.len() != got.len() {
            return Err(VerifyError::Setup(format!(
                "output `{out}` length differs: {} vs {}",
                want.len(),
                got.len()
            )));
        }
        // Full scan: the first divergence anchors the report, but the
        // count and error magnitudes tell systematic corruption apart
        // from a single bad element.
        let mut first: Option<(usize, f32, f32)> = None;
        let mut count = 0usize;
        let mut max_abs = 0.0f32;
        let mut max_rel = 0.0f32;
        for (i, (&w, &g)) in want.iter().zip(&got).enumerate() {
            let tol = ATOL + RTOL * w.abs().max(g.abs());
            if (w - g).abs() > tol {
                let (abs, rel) = abs_rel_error(w, g);
                count += 1;
                max_abs = max_abs.max(abs);
                max_rel = max_rel.max(rel);
                if first.is_none() {
                    first = Some((i, w, g));
                }
            }
        }
        if let Some((index, reference, optimized)) = first {
            return Err(VerifyError::Mismatch {
                array: out.clone(),
                index,
                reference,
                optimized,
                count,
                max_abs,
                max_rel,
                seed: opts.verify_seed,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;
    use gpgpu_ast::parse_kernel;
    use gpgpu_sim::MachineDesc;

    #[test]
    fn optimized_mm_matches_naive() {
        let k = parse_kernel(
            "__global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
                float sum = 0.0f;
                for (int i = 0; i < w; i = i + 1) { sum += a[idy][i] * b[i][idx]; }
                c[idy][idx] = sum;
            }",
        )
        .unwrap();
        let opts = CompileOptions::new(MachineDesc::gtx280())
            .bind("n", 128)
            .bind("w", 128);
        let compiled = compile(&k, &opts).unwrap();
        verify_equivalence(&k, &compiled, &opts).unwrap();
        // The tuned pipeline is also clean under the sanitizer.
        verify_equivalence_sanitized(&k, &compiled, &opts).unwrap();
    }

    #[test]
    fn broken_program_is_caught() {
        let k = parse_kernel(
            "__global__ void f(float a[n], float c[n], int n) { c[idx] = a[idx] * 2.0f; }",
        )
        .unwrap();
        let opts = CompileOptions::new(MachineDesc::gtx280()).bind("n", 64);
        let mut compiled = compile(&k, &opts).unwrap();
        // Corrupt the optimized kernel: scale by 3 instead of 2.
        let wrong = parse_kernel(
            "__global__ void f(float a[n], float c[n], int n) { c[idx] = a[idx] * 3.0f; }",
        )
        .unwrap();
        compiled.launches[0].kernel = wrong;
        let err = verify_equivalence(&k, &compiled, &opts).unwrap_err();
        // Every element differs (×3 vs ×2); the max relative error is the
        // 1/3 gap between them and the seed is reported for replay.
        match err {
            VerifyError::Mismatch {
                index,
                count,
                max_rel,
                seed,
                ..
            } => {
                assert_eq!(index, 0);
                assert_eq!(count, 64);
                assert!((max_rel - 1.0 / 3.0).abs() < 1e-3, "max_rel {max_rel}");
                assert_eq!(seed, 0);
            }
            other => panic!("expected mismatch, got {other}"),
        }
    }

    #[test]
    fn reduction_two_stage_matches_gsync_tree() {
        let k = parse_kernel(
            "#pragma gpgpu output c
            __global__ void rd(float a[len], float c[1], int len) {
                for (int s = len / 2; s > 0; s = s >> 1) {
                    if (idx < s) { a[idx] = a[idx] + a[idx + s]; }
                    __gsync();
                }
                if (idx == 0) { c[0] = a[0]; }
            }",
        )
        .unwrap();
        let opts = CompileOptions::new(MachineDesc::gtx280()).bind("len", 1 << 16);
        let compiled = compile(&k, &opts).unwrap();
        assert_eq!(compiled.launches.len(), 2);
        verify_equivalence(&k, &compiled, &opts).unwrap();
        verify_equivalence_sanitized(&k, &compiled, &opts).unwrap();
    }

    #[test]
    fn deterministic_fill_is_stable() {
        assert_eq!(fill("a", 8, 0), fill("a", 8, 0));
        assert_ne!(fill("a", 8, 0), fill("b", 8, 0));
        assert_ne!(fill("a", 8, 0), fill("a", 8, 1));
        assert_eq!(fill("a", 8, 7), fill("a", 8, 7));
        assert!(fill("a", 1024, 0).iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn sanitized_verify_flags_dropped_barrier() {
        // Hand-build a "compiled" program whose kernel stages through
        // shared memory without a barrier — outputs can still agree (the
        // interpreter runs lanes in order), but the race must surface.
        let naive = parse_kernel(
            "__global__ void f(float a[n], float c[n], int n) { c[idx] = a[idx]; }",
        )
        .unwrap();
        let opts = CompileOptions::new(MachineDesc::gtx280()).bind("n", 64);
        let mut compiled = compile(&naive, &opts).unwrap();
        let racy = parse_kernel(
            "__global__ void f(float a[n], float c[n], int n) {
                __shared__ float s0[16];
                s0[tidx] = a[idx];
                c[idx] = s0[15 - tidx];
            }",
        )
        .unwrap();
        compiled.launches[0].kernel = racy;
        let err = verify_equivalence_sanitized(&naive, &compiled, &opts).unwrap_err();
        match &err {
            VerifyError::Sanitizer { run, kind, .. } => {
                assert_eq!(kind, "shared-race");
                assert!(run.contains("optimized"), "{run}");
            }
            other => panic!("expected sanitizer error, got {other}"),
        }
    }
}
