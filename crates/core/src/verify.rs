//! Functional equivalence checking: the optimized program must compute
//! exactly what the naive kernel computes.
//!
//! Both versions run on the functional simulator against identical
//! pseudo-random inputs; the declared outputs are compared element-wise
//! with a small floating-point tolerance (transformations reassociate
//! sums). Every compiler transformation in this repository is validated
//! through this door.

use crate::pipeline::{naive_compiled, CompileOptions, CompiledKernel};
use gpgpu_analysis::resolve_layouts_padded;
use gpgpu_ast::Kernel;
use gpgpu_sim::{launch, Device, ExecOptions};
use std::collections::HashMap;
use std::fmt;

/// Relative tolerance for output comparison.
const RTOL: f32 = 1e-3;
/// Absolute tolerance for output comparison.
const ATOL: f32 = 1e-4;

/// A failed equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// Reference or candidate setup failed.
    Setup(String),
    /// Execution of either version failed.
    Exec(String),
    /// Outputs differ beyond tolerance.
    Mismatch {
        /// Output array.
        array: String,
        /// Flat logical index of the first differing element.
        index: usize,
        /// Naive (reference) value.
        reference: f32,
        /// Optimized value.
        optimized: f32,
    },
    /// The optimized program never wrote a declared output.
    MissingOutput(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Setup(s) => write!(f, "setup: {s}"),
            VerifyError::Exec(s) => write!(f, "execution: {s}"),
            VerifyError::Mismatch {
                array,
                index,
                reference,
                optimized,
            } => write!(
                f,
                "mismatch in `{array}`[{index}]: naive {reference} vs optimized {optimized}"
            ),
            VerifyError::MissingOutput(a) => write!(f, "output `{a}` was never allocated"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Deterministic input data: a per-array LCG stream in [-1, 1).
fn fill(name: &str, len: usize) -> Vec<f32> {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15 ^ name.bytes().map(u64::from).sum::<u64>();
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

/// Runs the naive kernel and the compiled program on identical inputs and
/// compares the declared outputs.
///
/// Use small `bindings` — the functional simulator executes every thread.
///
/// # Errors
///
/// Returns the first divergence found, or a setup/execution failure.
pub fn verify_equivalence(
    naive: &Kernel,
    compiled: &CompiledKernel,
    opts: &CompileOptions,
) -> Result<(), VerifyError> {
    verify_equivalence_with(naive, compiled, opts, &HashMap::new())
}

/// Like [`verify_equivalence`], but with caller-supplied input streams for
/// selected arrays (numerically sensitive inputs — e.g. a triangular
/// solve's well-conditioned matrix — override the default pseudo-random
/// data).
///
/// # Errors
///
/// Same as [`verify_equivalence`].
pub fn verify_equivalence_with(
    naive: &Kernel,
    compiled: &CompiledKernel,
    opts: &CompileOptions,
    overrides: &HashMap<String, Vec<f32>>,
) -> Result<(), VerifyError> {
    let outputs = naive.output_arrays();

    // Input streams shared by both runs, keyed by array name.
    let naive_layouts = resolve_layouts_padded(naive, &opts.bindings)
        .map_err(|e| VerifyError::Setup(e.to_string()))?;
    let mut streams: HashMap<String, Vec<f32>> = HashMap::new();
    for p in naive.array_params() {
        let layout = &naive_layouts[&p.name];
        let lanes = layout.elem.lanes() as i64;
        let want_len = (layout.logical_elems() * lanes) as usize;
        let stream = match overrides.get(&p.name) {
            Some(data) => {
                if data.len() != want_len {
                    return Err(VerifyError::Setup(format!(
                        "override for `{}` has {} values, expected {want_len}",
                        p.name,
                        data.len()
                    )));
                }
                data.clone()
            }
            None => fill(&p.name, want_len),
        };
        streams.insert(p.name.clone(), stream);
    }

    // Reference run.
    let reference = naive_compiled(naive, opts).map_err(|e| VerifyError::Setup(e.to_string()))?;
    let mut ref_dev = Device::new(opts.machine.clone());
    for p in naive.array_params() {
        ref_dev
            .alloc(naive_layouts[&p.name].clone())
            .upload(&streams[&p.name]);
    }
    for l in &reference.launches {
        launch(
            &l.kernel,
            &l.launch,
            &opts.bindings,
            &mut ref_dev,
            &ExecOptions::default(),
        )
        .map_err(|e| VerifyError::Exec(format!("naive: {e}")))?;
    }

    // Candidate run: allocate the union of arrays across the launches.
    let mut cand_dev = Device::new(opts.machine.clone());
    for l in &compiled.launches {
        let layouts = resolve_layouts_padded(&l.kernel, &opts.bindings)
            .map_err(|e| VerifyError::Setup(e.to_string()))?;
        for p in l.kernel.array_params() {
            if cand_dev.buffer(&p.name).is_ok() {
                continue;
            }
            let buf = cand_dev.alloc(layouts[&p.name].clone());
            if let Some(stream) = streams.get(&p.name) {
                buf.upload(stream);
            }
        }
        for extra in &l.extra_buffers {
            if cand_dev.buffer(&extra.name).is_err() {
                cand_dev.alloc(extra.clone());
            }
        }
    }
    for l in &compiled.launches {
        launch(
            &l.kernel,
            &l.launch,
            &opts.bindings,
            &mut cand_dev,
            &ExecOptions::default(),
        )
        .map_err(|e| VerifyError::Exec(format!("optimized `{}`: {e}", l.kernel.name)))?;
    }

    // Compare the declared outputs.
    for out in &outputs {
        let want = ref_dev
            .buffer(out)
            .map_err(|e| VerifyError::Setup(e.to_string()))?
            .download();
        let got = cand_dev
            .buffer(out)
            .map_err(|_| VerifyError::MissingOutput(out.clone()))?
            .download();
        if want.len() != got.len() {
            return Err(VerifyError::Setup(format!(
                "output `{out}` length differs: {} vs {}",
                want.len(),
                got.len()
            )));
        }
        for (i, (&w, &g)) in want.iter().zip(&got).enumerate() {
            let tol = ATOL + RTOL * w.abs().max(g.abs());
            if (w - g).abs() > tol {
                return Err(VerifyError::Mismatch {
                    array: out.clone(),
                    index: i,
                    reference: w,
                    optimized: g,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;
    use gpgpu_ast::parse_kernel;
    use gpgpu_sim::MachineDesc;

    #[test]
    fn optimized_mm_matches_naive() {
        let k = parse_kernel(
            "__global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
                float sum = 0.0f;
                for (int i = 0; i < w; i = i + 1) { sum += a[idy][i] * b[i][idx]; }
                c[idy][idx] = sum;
            }",
        )
        .unwrap();
        let opts = CompileOptions::new(MachineDesc::gtx280())
            .bind("n", 128)
            .bind("w", 128);
        let compiled = compile(&k, &opts).unwrap();
        verify_equivalence(&k, &compiled, &opts).unwrap();
    }

    #[test]
    fn broken_program_is_caught() {
        let k = parse_kernel(
            "__global__ void f(float a[n], float c[n], int n) { c[idx] = a[idx] * 2.0f; }",
        )
        .unwrap();
        let opts = CompileOptions::new(MachineDesc::gtx280()).bind("n", 64);
        let mut compiled = compile(&k, &opts).unwrap();
        // Corrupt the optimized kernel: scale by 3 instead of 2.
        let wrong = parse_kernel(
            "__global__ void f(float a[n], float c[n], int n) { c[idx] = a[idx] * 3.0f; }",
        )
        .unwrap();
        compiled.launches[0].kernel = wrong;
        let err = verify_equivalence(&k, &compiled, &opts).unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn reduction_two_stage_matches_gsync_tree() {
        let k = parse_kernel(
            "#pragma gpgpu output c
            __global__ void rd(float a[len], float c[1], int len) {
                for (int s = len / 2; s > 0; s = s >> 1) {
                    if (idx < s) { a[idx] = a[idx] + a[idx + s]; }
                    __gsync();
                }
                if (idx == 0) { c[0] = a[0]; }
            }",
        )
        .unwrap();
        let opts = CompileOptions::new(MachineDesc::gtx280()).bind("len", 1 << 16);
        let compiled = compile(&k, &opts).unwrap();
        assert_eq!(compiled.launches.len(), 2);
        verify_equivalence(&k, &compiled, &opts).unwrap();
    }

    #[test]
    fn deterministic_fill_is_stable() {
        assert_eq!(fill("a", 8), fill("a", 8));
        assert_ne!(fill("a", 8), fill("b", 8));
        assert!(fill("a", 1024).iter().all(|v| (-1.0..1.0).contains(v)));
    }
}
