//! Unified, spanned compiler error taxonomy.
//!
//! Every failure the pipeline can produce — a parse error, an analysis
//! failure, a transform precondition, a simulator fault, a verification
//! mismatch — is absorbed into one [`CompilerError`] carrying the pipeline
//! [`Stage`] where it arose, the typed [`ErrorKind`], an optional source
//! [`Span`], and a context chain describing what the compiler was doing.
//! The CLI renders the chain (`gpgpuc: error: ... / caused by: ...`) and
//! maps stages to distinct exit codes.

use gpgpu_ast::{ParseError, Span};
use gpgpu_sim::{ExecError, PerfError};
use std::fmt;

/// The pipeline stage in which an error originated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Lexing/parsing MiniCUDA source.
    Parse,
    /// Static analysis (layouts, affine forms, access classification).
    Analysis,
    /// An AST-rewriting optimization pass.
    Transform,
    /// Design-space exploration over merge degrees.
    Explore,
    /// The trace-driven simulator or timing model.
    Sim,
    /// Functional equivalence checking.
    Verify,
    /// A contained internal fault (panic, fuel, deadline).
    Internal,
}

impl Stage {
    /// Stable lowercase name, used in rendered chains and trace payloads.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Analysis => "analysis",
            Stage::Transform => "transform",
            Stage::Explore => "explore",
            Stage::Sim => "sim",
            Stage::Verify => "verify",
            Stage::Internal => "internal",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a contained fault fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultReason {
    /// A pass or candidate panicked; the payload is the panic message.
    Panic(String),
    /// The per-candidate fuel budget (interpreter step cap) ran out.
    FuelExhausted,
    /// The per-candidate wall-clock deadline passed.
    DeadlineExceeded,
}

impl fmt::Display for FaultReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultReason::Panic(msg) => write!(f, "panic: {msg}"),
            FaultReason::FuelExhausted => f.write_str("fuel exhausted"),
            FaultReason::DeadlineExceeded => f.write_str("deadline exceeded"),
        }
    }
}

/// The typed payload of a [`CompilerError`].
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorKind {
    /// A front-end parse error (already spanned).
    Parse(ParseError),
    /// An analysis failure rendered to text (e.g. a layout error).
    Analysis(String),
    /// A transform precondition failure (e.g. incompatible staging).
    Transform(String),
    /// A simulator execution error.
    Exec(ExecError),
    /// A timing-model error.
    Perf(PerfError),
    /// A verification failure rendered to text.
    Verify(String),
    /// A contained fault.
    Fault(FaultReason),
    /// Anything else.
    Other(String),
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::Parse(e) => write!(f, "{e}"),
            ErrorKind::Analysis(s)
            | ErrorKind::Transform(s)
            | ErrorKind::Verify(s)
            | ErrorKind::Other(s) => f.write_str(s),
            ErrorKind::Exec(e) => write!(f, "{e}"),
            ErrorKind::Perf(e) => write!(f, "{e}"),
            ErrorKind::Fault(r) => write!(f, "{r}"),
        }
    }
}

/// One compiler failure: where it happened, what it was, where in the
/// source it points (when known), and the chain of what the compiler was
/// doing when it fired (outermost context last).
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerError {
    /// Originating stage.
    pub stage: Stage,
    /// Typed payload.
    pub kind: ErrorKind,
    /// Source location, when one was captured.
    pub span: Option<Span>,
    /// Context frames, innermost first.
    pub context: Vec<String>,
}

impl CompilerError {
    /// Builds an error with no span and no context.
    pub fn new(stage: Stage, kind: ErrorKind) -> CompilerError {
        CompilerError {
            stage,
            kind,
            span: None,
            context: Vec::new(),
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: Span) -> CompilerError {
        self.span = Some(span);
        self
    }

    /// Pushes a context frame (what the compiler was doing).
    pub fn with_context(mut self, frame: impl Into<String>) -> CompilerError {
        self.context.push(frame.into());
        self
    }

    /// True when the error is a contained fault (panic/fuel/deadline).
    pub fn is_fault(&self) -> bool {
        matches!(self.kind, ErrorKind::Fault(_))
    }

    /// Renders the failure chain, one line per frame:
    ///
    /// ```text
    /// parse error at 2:17: expected `)`
    ///   caused by: <context frames, innermost first>
    /// ```
    pub fn render_chain(&self) -> String {
        let mut out = self.to_string();
        for frame in &self.context {
            out.push_str("\n  caused by: ");
            out.push_str(frame);
        }
        out
    }
}

impl fmt::Display for CompilerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Parse errors already render their own span and stage name.
        if let ErrorKind::Parse(e) = &self.kind {
            return write!(f, "{e}");
        }
        write!(f, "{} error", self.stage)?;
        if let Some(span) = self.span {
            write!(f, " at {span}")?;
        }
        write!(f, ": {}", self.kind)
    }
}

impl std::error::Error for CompilerError {}

impl From<ParseError> for CompilerError {
    fn from(e: ParseError) -> CompilerError {
        let span = e.span;
        CompilerError::new(Stage::Parse, ErrorKind::Parse(e)).with_span(span)
    }
}

impl From<gpgpu_analysis::LayoutError> for CompilerError {
    fn from(e: gpgpu_analysis::LayoutError) -> CompilerError {
        CompilerError::new(Stage::Analysis, ErrorKind::Analysis(e.to_string()))
    }
}

impl From<gpgpu_transform::merge::MergeError> for CompilerError {
    fn from(e: gpgpu_transform::merge::MergeError) -> CompilerError {
        CompilerError::new(Stage::Transform, ErrorKind::Transform(e.to_string()))
    }
}

impl From<ExecError> for CompilerError {
    fn from(e: ExecError) -> CompilerError {
        match e {
            ExecError::DeadlineExceeded => CompilerError::new(
                Stage::Internal,
                ErrorKind::Fault(FaultReason::DeadlineExceeded),
            ),
            ExecError::IterationLimit => CompilerError::new(
                Stage::Internal,
                ErrorKind::Fault(FaultReason::FuelExhausted),
            ),
            other => CompilerError::new(Stage::Sim, ErrorKind::Exec(other)),
        }
    }
}

impl From<PerfError> for CompilerError {
    fn from(e: PerfError) -> CompilerError {
        match e {
            PerfError::Exec(inner) => {
                CompilerError::from(inner).with_context("estimating candidate performance")
            }
            other => CompilerError::new(Stage::Sim, ErrorKind::Perf(other)),
        }
    }
}

impl From<crate::verify::VerifyError> for CompilerError {
    fn from(e: crate::verify::VerifyError) -> CompilerError {
        CompilerError::new(Stage::Verify, ErrorKind::Verify(e.to_string()))
    }
}

impl From<crate::pipeline::CompileError> for CompilerError {
    fn from(e: crate::pipeline::CompileError) -> CompilerError {
        use crate::pipeline::CompileError as CE;
        match e {
            CE::NoDomain => CompilerError::new(
                Stage::Analysis,
                ErrorKind::Analysis("cannot infer the kernel's output domain".into()),
            ),
            CE::NoValidConfiguration(s) => CompilerError::new(
                Stage::Explore,
                ErrorKind::Other(format!("no valid configuration: {s}")),
            ),
            CE::Perf(s) => CompilerError::new(Stage::Sim, ErrorKind::Other(s)),
            CE::Internal(s) => {
                CompilerError::new(Stage::Internal, ErrorKind::Fault(FaultReason::Panic(s)))
            }
        }
    }
}

/// Extracts the human-readable message from a caught panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Why a compilation degraded to the naive kernel instead of failing.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradedReason {
    /// Every design-space candidate was rejected or faulted.
    AllCandidatesFailed(String),
    /// The optimization pipeline itself panicked (contained).
    PipelineFault(String),
    /// A required pass failed ahead of exploration.
    PassFailure(String),
}

impl DegradedReason {
    /// Stable reason slug used in the trace schema.
    pub fn slug(&self) -> &'static str {
        match self {
            DegradedReason::AllCandidatesFailed(_) => "all-candidates-failed",
            DegradedReason::PipelineFault(_) => "pipeline-fault",
            DegradedReason::PassFailure(_) => "pass-failure",
        }
    }

    /// The human-readable detail carried by the reason.
    pub fn detail(&self) -> &str {
        match self {
            DegradedReason::AllCandidatesFailed(s)
            | DegradedReason::PipelineFault(s)
            | DegradedReason::PassFailure(s) => s,
        }
    }
}

impl fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.slug(), self.detail())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_renders_innermost_first() {
        let e = CompilerError::new(
            Stage::Transform,
            ErrorKind::Transform("staging `a_seg` is incompatible".into()),
        )
        .with_context("merging 4 blocks along Y")
        .with_context("evaluating candidate bx8_ty4_tx1");
        let chain = e.render_chain();
        assert!(chain.starts_with("transform error: staging"), "{chain}");
        let merge_pos = chain.find("merging 4 blocks").unwrap();
        let cand_pos = chain.find("evaluating candidate").unwrap();
        assert!(merge_pos < cand_pos, "{chain}");
    }

    #[test]
    fn parse_errors_keep_their_span() {
        let pe = ParseError::new(Span::new(2, 17), "expected `)`".to_string());
        let ce = CompilerError::from(pe);
        assert_eq!(ce.stage, Stage::Parse);
        assert_eq!(ce.span, Some(Span::new(2, 17)));
        assert!(ce.to_string().contains("2:17"), "{ce}");
    }

    #[test]
    fn sim_limits_map_to_faults() {
        let fuel = CompilerError::from(ExecError::IterationLimit);
        assert!(fuel.is_fault());
        assert_eq!(fuel.stage, Stage::Internal);
        let deadline = CompilerError::from(ExecError::DeadlineExceeded);
        assert!(deadline.is_fault());
        assert!(deadline.to_string().contains("deadline"), "{deadline}");
    }

    #[test]
    fn degraded_reasons_have_stable_slugs() {
        let r = DegradedReason::AllCandidatesFailed("every candidate faulted".into());
        assert_eq!(r.slug(), "all-candidates-failed");
        assert!(r.to_string().contains("every candidate faulted"));
    }
}
