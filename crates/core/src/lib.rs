#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

//! # gpgpu-core
//!
//! The compiler driver: ties the analyses (`gpgpu-analysis`), transformation
//! passes (`gpgpu-transform`) and the simulator (`gpgpu-sim`) into the
//! pipeline of the paper's Figure 1.
//!
//! ```text
//! naive kernel - vectorize - coalesce - merge (explored) - prefetch - camping - optimized kernel
//!                                        ^ thread/thread-block degrees searched empirically
//! ```
//!
//! The main entry point is [`compile`]:
//!
//! ```
//! use gpgpu_core::{compile, CompileOptions};
//! use gpgpu_sim::MachineDesc;
//!
//! # fn main() -> Result<(), gpgpu_core::CompileError> {
//! let naive = gpgpu_ast::parse_kernel(
//!     "__global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
//!         float sum = 0.0f;
//!         for (int i = 0; i < w; i = i + 1) { sum += a[idy][i] * b[i][idx]; }
//!         c[idy][idx] = sum;
//!     }",
//! ).unwrap();
//! let opts = CompileOptions::new(MachineDesc::gtx280())
//!     .bind("n", 256)
//!     .bind("w", 256);
//! let compiled = compile(&naive, &opts)?;
//! assert!(compiled.estimate.gflops > 0.0);
//! println!("{}", compiled.source);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod cu;
pub mod domain;
pub mod error;
pub mod explore;
pub mod fault;
pub mod pass_manager;
pub mod pipeline;
pub mod verify;

pub use cache::{BufferArtifact, CachedArtifact, FusionMeta, LaunchArtifact, CACHE_SCHEMA};
pub use cu::emit_cu;
pub use domain::{infer_domain, Domain};
pub use error::{panic_message, CompilerError, DegradedReason, ErrorKind, FaultReason, Stage};
pub use explore::{explore, Candidate, ExploreOptions, WarmStartPlan};
pub use pass_manager::{registered_passes, PassInfo, PassManager};
pub use pipeline::{
    compile, estimate_launch, naive_compiled, CompileError, CompileOptions, CompiledKernel,
    KernelLaunch, StageSet, TuningReport,
};

// The persistent autotuning store, re-exported for the same reason.
pub use gpgpu_tuning as tuning;
pub use gpgpu_tuning::{KernelShape, StoreCounters, StoreNote, TuningStore};
pub use verify::{
    verify_equivalence, verify_equivalence_sanitized, verify_equivalence_with, VerifyError,
};

// The observability subsystem, re-exported so downstream users (CLI, bench
// harnesses, tests) need not depend on `gpgpu-trace` directly.
pub use gpgpu_trace as trace;
pub use gpgpu_trace::{
    AstDelta, CounterSnapshot, Histogram, Json, MetricsRegistry, Profiler, SpanGuard, SpanId,
    SpanRecord, TraceEvent, TraceSink,
};
