//! The compiler pipeline (paper Figure 1) and its products.

use crate::domain::{infer_domain, Domain};
use crate::error::{panic_message, DegradedReason};
use crate::explore::{explore, launch_for, Candidate, ExploreOptions, Explored, WarmStartPlan};
use crate::fault;
use crate::pass_manager::PassManager;
use gpgpu_analysis::{ArrayLayout, Bindings};
use gpgpu_ast::{print_kernel, AccessSpans, Kernel, LaunchConfig, PrintOptions, ScalarType};
use gpgpu_sim::{CostModelKind, MachineDesc, PerfEstimate, PerfOptions};
use gpgpu_trace::{Json, MetricsRegistry, Profiler, SpanId, TraceEvent, TraceSink};
use gpgpu_transform::{
    reduction, AmdVectorizePass, CoalescePass, PassError, ReductionPass, PipelineState,
    VectorizePass,
};
use gpgpu_tuning::{kernel_shape, ConfigScore, KernelShape, Lookup, ShapeContext, StoreNote, TuningStore};
use std::fmt;
use std::sync::Arc;

/// Which optimization stages run — the Figure 12 dissection toggles these
/// cumulatively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSet {
    /// Producer→consumer kernel fusion (`gpgpu-fusion`; related work:
    /// Filipovič et al., kernel fusion for BLAS). Runs before the
    /// single-kernel pipeline, on multi-kernel (`fuse`) requests only.
    pub fusion: bool,
    /// §3.1 vectorization.
    pub vectorize: bool,
    /// §3.3 coalescing conversion.
    pub coalesce: bool,
    /// §3.5 thread/thread-block merge (and reduction restructuring).
    pub merge: bool,
    /// §3.6 data prefetching.
    pub prefetch: bool,
    /// §3.7 partition-camping elimination.
    pub partition: bool,
}

impl StageSet {
    /// Every stage enabled (the normal compiler).
    pub fn all() -> StageSet {
        StageSet {
            fusion: true,
            vectorize: true,
            coalesce: true,
            merge: true,
            prefetch: true,
            partition: true,
        }
    }

    /// No stages: the naive kernel as-is.
    pub fn none() -> StageSet {
        StageSet {
            fusion: false,
            vectorize: false,
            coalesce: false,
            merge: false,
            prefetch: false,
            partition: false,
        }
    }

    /// Whether the stage a pass declares (see
    /// [`gpgpu_transform::Pass::stage`]) is enabled. Unknown stage names
    /// are disabled rather than a panic: a future pass wired up with a
    /// typo'd stage is silently gated off, which the registry golden test
    /// catches.
    pub fn enabled(&self, stage: &str) -> bool {
        match stage {
            "fusion" => self.fusion,
            "vectorize" => self.vectorize,
            "coalesce" => self.coalesce,
            "merge" => self.merge,
            "prefetch" => self.prefetch,
            "partition" => self.partition,
            _ => false,
        }
    }

    /// A stable bitmask of the enabled stages, hashed into the tuning
    /// store's shape fingerprint (a winner found under one stage set must
    /// not warm-start another).
    pub fn bits(&self) -> u8 {
        (self.vectorize as u8)
            | (self.coalesce as u8) << 1
            | (self.merge as u8) << 2
            | (self.prefetch as u8) << 3
            | (self.partition as u8) << 4
            | (self.fusion as u8) << 5
    }

    /// The cumulative prefixes used by the Figure 12 dissection, in order:
    /// naive, +vectorize, +coalesce, +merge, +prefetch, +partition. Fusion
    /// is not a dissection step: it applies to multi-kernel groups, which
    /// the single-kernel Figure 12 experiment never forms.
    pub fn dissection() -> [(&'static str, StageSet); 6] {
        let mut sets = [
            ("naive", StageSet::none()),
            ("+vectorization", StageSet::none()),
            ("+coalescing", StageSet::none()),
            ("+thread/block merge", StageSet::none()),
            ("+prefetching", StageSet::none()),
            ("+partition elimination", StageSet::none()),
        ];
        sets[1].1.vectorize = true;
        sets[2].1 = StageSet {
            vectorize: true,
            coalesce: true,
            ..StageSet::none()
        };
        sets[3].1 = StageSet {
            vectorize: true,
            coalesce: true,
            merge: true,
            ..StageSet::none()
        };
        sets[4].1 = StageSet {
            prefetch: true,
            ..sets[3].1
        };
        sets[5].1 = StageSet::all();
        sets
    }
}

/// Compiler invocation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Target hardware.
    pub machine: MachineDesc,
    /// Concrete input sizes (the paper compiles per input size).
    pub bindings: Bindings,
    /// Enabled stages.
    pub stages: StageSet,
    /// Merge degrees to explore.
    pub explore: ExploreOptions,
    /// Blocks sampled by the timing model's trace.
    pub sample_blocks: usize,
    /// Source spans of the naive kernel's array accesses
    /// (see [`gpgpu_ast::access_spans`]); attached to per-access trace
    /// events. Empty when the caller has no source text.
    pub spans: AccessSpans,
    /// Seed mixed into the pseudo-random input streams used by output
    /// verification. Reported in every mismatch so a failing comparison can
    /// be replayed exactly (`gpgpuc --verify-seed`). Seed 0 is the
    /// historical default stream.
    pub verify_seed: u64,
    /// Timing model used to rank candidates: the closed-form analytic
    /// model, or the trace-driven memory-hierarchy model
    /// (`gpgpuc --cost-model`). Part of the cache fingerprint — the two
    /// models can rank candidates differently.
    pub cost_model: CostModelKind,
    /// Hierarchical span profiler the compilation records into. Callers
    /// that compile several kernels (the batch service, `gpgpuc profile`)
    /// share one profiler across invocations; the default is a fresh one
    /// per options value.
    pub profiler: Profiler,
    /// Span the compilation's root span is parented under, when the caller
    /// already opened one in [`CompileOptions::profiler`]'s table (the
    /// service's per-request `compile` stage span). `None` makes the
    /// compilation a root in the table.
    pub profile_parent: Option<SpanId>,
    /// Persistent tuning store (`gpgpu-tuning`), when the caller opened one
    /// (`--tuning-dir`). Looked up by kernel shape before the design-space
    /// search and updated with the outcome afterwards; `None` compiles
    /// store-less with the full search.
    pub tuning: Option<Arc<TuningStore>>,
    /// Whether a tuning-store hit may narrow the search. `false`
    /// (`--no-warm-start`) still records outcomes but always runs the full
    /// grid.
    pub warm_start: bool,
}

impl CompileOptions {
    /// Options targeting `machine` with every stage enabled.
    pub fn new(machine: MachineDesc) -> CompileOptions {
        CompileOptions {
            machine,
            bindings: Bindings::new(),
            stages: StageSet::all(),
            explore: ExploreOptions::default(),
            sample_blocks: gpgpu_sim::timing::DEFAULT_SAMPLE_BLOCKS,
            spans: AccessSpans::new(),
            verify_seed: 0,
            cost_model: CostModelKind::default(),
            profiler: Profiler::new(),
            profile_parent: None,
            tuning: None,
            warm_start: true,
        }
    }

    /// Binds a size parameter.
    pub fn bind(mut self, name: &str, value: i64) -> CompileOptions {
        self.bindings.insert(name.to_string(), value);
        self
    }

    /// Builds the access-span side table from the kernel's source text, so
    /// trace events carry source locations.
    pub fn with_source(mut self, src: &str) -> CompileOptions {
        self.spans = gpgpu_ast::access_spans(src);
        self
    }

    /// Replaces the stage set.
    pub fn with_stages(mut self, stages: StageSet) -> CompileOptions {
        self.stages = stages;
        self
    }

    /// Seeds the verification input streams (see
    /// [`CompileOptions::verify_seed`]).
    pub fn with_verify_seed(mut self, seed: u64) -> CompileOptions {
        self.verify_seed = seed;
        self
    }

    /// Selects the timing model that ranks candidates (see
    /// [`CompileOptions::cost_model`]).
    pub fn with_cost_model(mut self, model: CostModelKind) -> CompileOptions {
        self.cost_model = model;
        self
    }

    /// Shares an existing profiler (span table) with this compilation.
    pub fn with_profiler(mut self, profiler: Profiler) -> CompileOptions {
        self.profiler = profiler;
        self
    }

    /// Parents the compilation's root span under `parent` (a span in the
    /// shared profiler's table).
    pub fn under_span(mut self, parent: SpanId) -> CompileOptions {
        self.profile_parent = Some(parent);
        self
    }

    /// Attaches a persistent tuning store (see [`CompileOptions::tuning`]).
    pub fn with_tuning(mut self, store: Arc<TuningStore>) -> CompileOptions {
        self.tuning = Some(store);
        self
    }

    /// Enables or disables warm-started exploration (see
    /// [`CompileOptions::warm_start`]).
    pub fn with_warm_start(mut self, warm: bool) -> CompileOptions {
        self.warm_start = warm;
        self
    }
}

/// One kernel launch of a compiled program.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelLaunch {
    /// The kernel to run.
    pub kernel: Kernel,
    /// Its grid/block dimensions.
    pub launch: LaunchConfig,
    /// Buffers the runtime must allocate (zero-initialized) beyond the
    /// naive kernel's parameters — e.g. the reduction partials.
    pub extra_buffers: Vec<ArrayLayout>,
}

/// The compiler's output: optimized kernel(s), launch configuration(s),
/// the predicted performance, and the human-readable source.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The launch sequence (one kernel, except for restructured reductions).
    pub launches: Vec<KernelLaunch>,
    /// Performance estimate of the first launch (see [`Self::total_time_ms`]
    /// for the sequence).
    pub estimate: PerfEstimate,
    /// Per-launch estimates.
    pub per_launch: Vec<PerfEstimate>,
    /// Structured trace of every decision the pipeline made (the winning
    /// candidate's pass events plus the design-space search events).
    pub trace: TraceSink,
    /// Per-candidate simulator counter snapshots from the design-space
    /// search; the winner is marked chosen.
    pub metrics: MetricsRegistry,
    /// The optimized source, printed with the paper's shorthand ids.
    pub source: String,
    /// The design-space point that won.
    pub chosen: Candidate,
    /// All evaluated design-space points.
    pub evaluated: Vec<Candidate>,
    /// Set when the optimizing pipeline failed and [`compile`] fell back to
    /// the naive kernel; `None` for a fully optimized result.
    pub degraded: Option<DegradedReason>,
    /// The timing model that ranked the candidates (recorded in the trace
    /// document so a replayed trace knows which model's numbers it holds).
    pub cost_model: CostModelKind,
    /// The span profiler the compilation recorded into (a handle onto the
    /// table shared with [`CompileOptions::profiler`]). Feeds the
    /// `--profile` / `--profile-chrome` exporters and `gpgpuc profile`.
    pub profiler: Profiler,
    /// What the persistent tuning store did for this compilation; `None`
    /// when no store was attached (or the kernel took the reduction or
    /// naive path, which the store does not cover).
    pub tuning: Option<TuningReport>,
}

/// The tuning store's involvement in one compilation, summarized for the
/// trace document and the CLI report.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningReport {
    /// The kernel's 32-hex structural shape fingerprint.
    pub fingerprint: String,
    /// Lookup outcome: `warm`, `neighbor`, `miss`, `reexplore`, or
    /// `disabled`.
    pub outcome: String,
    /// Candidates the (possibly narrowed) search evaluated or rejected.
    pub explored: u64,
    /// Size of the full design space a cold search would have run.
    pub full_space: u64,
    /// True when the store's plan actually narrowed the search.
    pub warm_started: bool,
    /// True when a full-grid result beat and replaced a stored winner.
    pub demoted: bool,
}

impl TuningReport {
    /// The report as a JSON object (embedded in the trace document).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("fingerprint", Json::str(&self.fingerprint)),
            ("outcome", Json::str(&self.outcome)),
            ("explored", Json::count(self.explored)),
            ("full_space", Json::count(self.full_space)),
            ("warm_started", Json::Bool(self.warm_started)),
            ("demoted", Json::Bool(self.demoted)),
        ])
    }
}

impl CompiledKernel {
    /// Total estimated time of the launch sequence, in milliseconds.
    pub fn total_time_ms(&self) -> f64 {
        self.per_launch.iter().map(|e| e.time_ms).sum()
    }

    /// Renders the human-readable pass log (what the compiler did and why),
    /// one line per trace event.
    pub fn log(&self) -> Vec<String> {
        self.trace.render_log()
    }

    /// Builds the complete `gpgpu-trace/v2` JSON document for this
    /// compilation: kernel/machine identity, every trace event, per-pass
    /// timings, per-candidate counter snapshots, latency histograms,
    /// profiler spans, and the final estimate.
    pub fn trace_json(&self, machine: &str) -> Json {
        let kernel = self
            .launches
            .first()
            .map(|l| l.kernel.name.as_str())
            .unwrap_or("?");
        Json::obj([
            ("schema", Json::str(gpgpu_trace::SCHEMA)),
            ("kernel", Json::str(kernel)),
            ("machine", Json::str(machine)),
            ("time_ms", Json::num(self.total_time_ms())),
            ("gflops", Json::num(self.gflops())),
            ("bandwidth_gbps", Json::num(self.effective_bandwidth_gbps())),
            ("cost_model", Json::str(self.cost_model.as_str())),
            ("chosen", candidate_json(&self.chosen)),
            (
                "degraded",
                match &self.degraded {
                    Some(r) => Json::obj([
                        ("reason", Json::str(r.slug())),
                        ("detail", Json::str(r.detail())),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "tuning",
                match &self.tuning {
                    Some(t) => t.to_json(),
                    None => Json::Null,
                },
            ),
            ("events", self.trace.to_json()),
            ("metrics", self.metrics.to_json()),
            ("spans", self.profiler.to_json()),
            (
                "per_launch",
                Json::Arr(
                    self.per_launch
                        .iter()
                        .map(|e| e.counter_snapshot().to_json())
                        .collect(),
                ),
            ),
        ])
    }

    /// Aggregate GFLOPS over the sequence.
    pub fn gflops(&self) -> f64 {
        let flops: u64 = self.per_launch.iter().map(|e| e.stats.flops).sum();
        flops as f64 / (self.total_time_ms() * 1e-3) / 1e9
    }

    /// Aggregate effective bandwidth over the sequence, in GB/s.
    pub fn effective_bandwidth_gbps(&self) -> f64 {
        let bytes: u64 = self.per_launch.iter().map(|e| e.stats.useful_bytes).sum();
        bytes as f64 / (self.total_time_ms() * 1e-3) / 1e9
    }
}

/// A design-space candidate as a JSON object.
fn candidate_json(c: &Candidate) -> Json {
    Json::obj([
        ("block_merge_x", Json::num(c.block_merge_x as f64)),
        ("thread_merge_y", Json::num(c.thread_merge_y as f64)),
        ("thread_merge_x", Json::num(c.thread_merge_x as f64)),
        (
            "reduction_elems",
            match c.reduction_elems {
                Some(e) => Json::num(e as f64),
                None => Json::Null,
            },
        ),
        ("time_ms", Json::num(c.time_ms)),
    ])
}

/// Compilation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The kernel's output domain could not be inferred.
    NoDomain,
    /// Every explored configuration was invalid.
    NoValidConfiguration(String),
    /// The timing model failed on a candidate.
    Perf(String),
    /// The pipeline itself faulted (a contained panic).
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NoDomain => f.write_str("cannot infer the kernel's output domain"),
            CompileError::NoValidConfiguration(s) => {
                write!(f, "no valid configuration: {s}")
            }
            CompileError::Perf(s) => write!(f, "timing model failure: {s}"),
            CompileError::Internal(s) => write!(f, "internal fault: {s}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Maps a pass failure out of the pass manager: contained panics are
/// internal faults, ordinary rejections are pass failures.
fn pass_failure(e: PassError) -> CompileError {
    if e.fault {
        CompileError::Internal(e.to_string())
    } else {
        CompileError::Perf(e.to_string())
    }
}

/// Compiles a naive kernel into its optimized form, degrading gracefully:
/// when the optimizing pipeline fails or faults but the naive kernel still
/// compiles, the naive result is returned with
/// [`CompiledKernel::degraded`] set and a `degraded` trace event emitted.
/// A panic anywhere in the optimization passes is contained and treated
/// like any other pipeline failure.
///
/// # Errors
///
/// See [`CompileError`]. An error means even the naive fallback was
/// impossible — the kernel falls outside the supported naive shape
/// (paper §7 discusses the compiler's limits).
pub fn compile(naive: &Kernel, opts: &CompileOptions) -> Result<CompiledKernel, CompileError> {
    // The root span covers the whole compilation, fallback included; its
    // guard closes on every exit path (the unwind out of
    // `compile_optimized` is contained below, so the guard lives here).
    let root = opts.profiler.span_under(
        opts.profile_parent,
        format!("compile:{}", naive.name),
        "compile",
    );
    let root_id = root.id();
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compile_optimized(naive, opts, Some(root_id))
    }));
    let primary = match attempt {
        Ok(Ok(compiled)) => return Ok(compiled),
        Ok(Err(e)) => e,
        Err(payload) => CompileError::Internal(panic_message(payload)),
    };
    let reason = match &primary {
        // No domain means the naive fallback cannot launch either; fail.
        CompileError::NoDomain => return Err(primary),
        CompileError::Internal(msg) => DegradedReason::PipelineFault(msg.clone()),
        CompileError::NoValidConfiguration(msg) => {
            DegradedReason::AllCandidatesFailed(msg.clone())
        }
        CompileError::Perf(msg) => DegradedReason::PassFailure(msg.clone()),
    };
    let fallback_span = root.child("naive-fallback", "compile");
    match naive_compiled_under(naive, opts, Some(fallback_span.id())) {
        Ok(mut fallback) => {
            fallback.trace.emit(TraceEvent::Degraded {
                reason: reason.slug().to_string(),
                detail: reason.detail().to_string(),
            });
            fallback.degraded = Some(reason);
            Ok(fallback)
        }
        // The fallback failed too; the primary failure is the useful one.
        Err(_) => Err(primary),
    }
}

/// Folds the per-pass and per-candidate wall-clock durations recorded in
/// the trace into the registry's latency histograms.
fn record_duration_histograms(metrics: &mut MetricsRegistry, trace: &TraceSink) {
    for event in trace.events() {
        if let TraceEvent::PassCompleted { micros, .. } = event {
            metrics.record_duration("pass_micros", *micros);
        }
    }
}

/// The optimizing pipeline proper (no fallback). Extracted from
/// [`compile`] so its failures and panics can be contained uniformly.
fn compile_optimized(
    naive: &Kernel,
    opts: &CompileOptions,
    profile_span: Option<SpanId>,
) -> Result<CompiledKernel, CompileError> {
    fault::maybe_panic("pipeline");
    let domain = infer_domain(naive, &opts.bindings).ok_or(CompileError::NoDomain)?;
    let mut state = PipelineState::new(naive.clone(), opts.bindings.clone())
        .with_access_spans(opts.spans.clone())
        .with_profiler(opts.profiler.clone(), profile_span);
    let mut pm = PassManager::new(opts.stages);
    pm.run(&mut state, &mut VectorizePass).map_err(pass_failure)?;
    // On AMD/ATI parts the compiler additionally widens element-wise
    // kernels aggressively (paper §3.1): float4 first, then float2.
    if opts.machine.prefers_wide_vectors() {
        pm.run(&mut state, &mut AmdVectorizePass)
            .map_err(pass_failure)?;
    }

    if state.kernel.uses_global_sync() {
        return compile_reduction(state, pm, domain, opts);
    }
    if !opts.stages.coalesce {
        return naive_state_compiled(state, domain, opts);
    }
    pm.run(&mut state, &mut CoalescePass).map_err(pass_failure)?;

    let mut tuning_events: Vec<TraceEvent> = Vec::new();
    let session = prepare_tuning(naive, &domain, opts, &mut tuning_events);
    let explored = match &session {
        Some(s) if s.plan.is_some() => {
            let mut warm_opts = opts.clone();
            warm_opts.explore.warm_start = s.plan.clone();
            explore(&state, &pm.am, &domain, &warm_opts)?
        }
        _ => explore(&state, &pm.am, &domain, opts)?,
    };
    let tuning_report = session.map(|s| s.finish(&explored, &mut tuning_events));
    let estimate = explored.estimate;
    let source = print_kernel(&explored.state.kernel, PrintOptions::default());
    // The shared base trace is moved, not cloned: candidates record only
    // suffix events, and the winner's suffix is already folded into
    // `explored.events`.
    let mut trace = state.trace;
    trace.extend(explored.events);
    trace.extend(tuning_events);
    let mut metrics = explored.metrics;
    if let Some(report) = &tuning_report {
        metrics.push_global("tuning_explored", report.explored as f64);
        metrics.push_global("tuning_full_space", report.full_space as f64);
        metrics.push_global(
            "tuning_warm_started",
            if report.warm_started { 1.0 } else { 0.0 },
        );
    }
    record_duration_histograms(&mut metrics, &trace);
    Ok(CompiledKernel {
        launches: vec![KernelLaunch {
            kernel: explored.state.kernel.as_ref().clone(),
            launch: explored.launch,
            extra_buffers: Vec::new(),
        }],
        per_launch: vec![estimate.clone()],
        estimate,
        trace,
        metrics,
        source,
        chosen: explored.chosen,
        evaluated: explored.evaluated,
        degraded: None,
        cost_model: opts.cost_model,
        profiler: opts.profiler.clone(),
        tuning: tuning_report,
    })
}

/// One compilation's interaction with the tuning store: the shape lookup
/// done up front, carried to [`TuningSession::finish`] after the search.
struct TuningSession {
    store: Arc<TuningStore>,
    shape: KernelShape,
    outcome: String,
    plan: Option<WarmStartPlan>,
}

/// Maps the store's drained notes into trace events.
fn store_note_events(notes: Vec<StoreNote>, events: &mut Vec<TraceEvent>) {
    for note in notes {
        events.push(match note {
            StoreNote::Degraded { reason } => TraceEvent::StoreDegraded {
                store: "tuning",
                reason,
            },
            StoreNote::SelfHeal { detail } => TraceEvent::Note {
                message: format!("tuning store self-heal: {detail}"),
            },
            StoreNote::WriteError { detail } => TraceEvent::StoreWriteError {
                store: "tuning",
                detail,
            },
        });
    }
}

/// Computes the kernel's shape and asks the store for a warm-start plan.
/// Returns `None` when no store is attached or the kernel's layouts defeat
/// the shape analysis (such compiles run the full search, store-less).
fn prepare_tuning(
    naive: &Kernel,
    domain: &Domain,
    opts: &CompileOptions,
    events: &mut Vec<TraceEvent>,
) -> Option<TuningSession> {
    let store = opts.tuning.as_ref()?.clone();
    let grid_sig = opts.explore.grid_signature();
    let shape = kernel_shape(
        naive,
        &ShapeContext {
            bindings: &opts.bindings,
            machine: opts.machine.name,
            cost_model: opts.cost_model.as_str(),
            stage_bits: opts.stages.bits(),
            grid_sig: &grid_sig,
            domain: (domain.x, domain.y),
        },
    )?;
    let (outcome, plan) = if !opts.warm_start {
        ("disabled".to_string(), None)
    } else {
        match store.lookup(&shape) {
            Lookup::Warm(warm) => {
                let outcome = if warm.neighbor { "neighbor" } else { "warm" };
                (
                    outcome.to_string(),
                    Some(WarmStartPlan {
                        seeds: warm.seeds,
                        expand: warm.neighbor,
                    }),
                )
            }
            Lookup::Reexplore => ("reexplore".to_string(), None),
            Lookup::Miss => ("miss".to_string(), None),
            Lookup::Disabled(_) => ("disabled".to_string(), None),
        }
    };
    let seeds = plan
        .as_ref()
        .map(|p| {
            p.seeds
                .iter()
                .map(|&(bx, ty, tx)| format!("bx{bx}_ty{ty}_tx{tx}"))
                .collect()
        })
        .unwrap_or_default();
    events.push(TraceEvent::TuningLookup {
        fingerprint: shape.structure.clone(),
        outcome: outcome.clone(),
        seeds,
    });
    store_note_events(store.drain_notes(), events);
    Some(TuningSession {
        store,
        shape,
        outcome,
        plan,
    })
}

impl TuningSession {
    /// Records the search outcome into the store and summarizes the
    /// session for the trace document.
    fn finish(self, explored: &Explored, events: &mut Vec<TraceEvent>) -> TuningReport {
        let winner = ConfigScore {
            block_merge_x: explored.chosen.block_merge_x,
            thread_merge_y: explored.chosen.thread_merge_y,
            thread_merge_x: explored.chosen.thread_merge_x,
            time_ms: explored.chosen.time_ms,
        };
        let candidates: Vec<ConfigScore> = explored
            .evaluated
            .iter()
            .filter(|c| c.reduction_elems.is_none())
            .map(|c| ConfigScore {
                block_merge_x: c.block_merge_x,
                thread_merge_y: c.thread_merge_y,
                thread_merge_x: c.thread_merge_x,
                time_ms: c.time_ms,
            })
            .collect();
        // A search the store did not narrow is authoritative for this
        // size point: it may demote a stale stored winner.
        let demoted = self
            .store
            .record(&self.shape, &winner, &candidates, !explored.warm_started);
        events.push(TraceEvent::TuningRecorded {
            fingerprint: self.shape.structure.clone(),
            winner: winner.label(),
            explored: explored.evaluated.len() as u64,
            full_space: explored.full_space as u64,
            demoted,
        });
        store_note_events(self.store.drain_notes(), events);
        TuningReport {
            fingerprint: self.shape.structure,
            outcome: self.outcome,
            explored: explored.evaluated.len() as u64,
            full_space: explored.full_space as u64,
            warm_started: explored.warm_started,
            demoted,
        }
    }
}

/// Wraps the naive kernel (no optimization) with a reasonable launch — the
/// baseline of every speedup figure.
pub fn naive_compiled(naive: &Kernel, opts: &CompileOptions) -> Result<CompiledKernel, CompileError> {
    naive_compiled_under(naive, opts, None)
}

/// [`naive_compiled`], with the resulting spans parented under an existing
/// profiler span (the degraded-fallback path in [`compile`]).
fn naive_compiled_under(
    naive: &Kernel,
    opts: &CompileOptions,
    profile_span: Option<SpanId>,
) -> Result<CompiledKernel, CompileError> {
    let domain = infer_domain(naive, &opts.bindings).ok_or(CompileError::NoDomain)?;
    let state = PipelineState::new(naive.clone(), opts.bindings.clone())
        .with_access_spans(opts.spans.clone())
        .with_profiler(opts.profiler.clone(), profile_span);
    naive_state_compiled(state, domain, opts)
}

fn naive_state_compiled(
    state: PipelineState,
    domain: Domain,
    opts: &CompileOptions,
) -> Result<CompiledKernel, CompileError> {
    let mut st = state;
    // Pick the widest power-of-two block that tiles the domain.
    let pick = |extent: i64, choices: &[i64]| {
        choices
            .iter()
            .copied()
            .find(|&b| extent % b == 0)
            .unwrap_or(1)
    };
    if domain.is_2d() {
        st.block_x = pick(domain.x, &[16, 8, 4, 2, 1]);
        st.block_y = pick(domain.y, &[16, 8, 4, 2, 1]);
    } else {
        st.block_x = pick(domain.x, &[256, 128, 64, 32, 16, 8, 4, 2, 1]);
        st.block_y = 1;
    }
    let cfg = launch_for(&st, &domain).ok_or_else(|| {
        CompileError::NoValidConfiguration(format!("domain {domain} does not tile"))
    })?;
    let estimate = {
        let _span = st
            .profiler
            .span_under(st.profile_span, "estimate:naive", "estimate");
        estimate_launch(&st.kernel, &cfg, &st.bindings, opts).map_err(CompileError::Perf)?
    };
    let source = print_kernel(&st.kernel, PrintOptions::default());
    let mut metrics = MetricsRegistry::new();
    metrics.record("base", estimate.counter_snapshot());
    metrics.set_chosen("base");
    record_duration_histograms(&mut metrics, &st.trace);
    Ok(CompiledKernel {
        launches: vec![KernelLaunch {
            kernel: st.kernel.as_ref().clone(),
            launch: cfg,
            extra_buffers: Vec::new(),
        }],
        per_launch: vec![estimate.clone()],
        estimate,
        trace: st.trace,
        metrics,
        source,
        chosen: Candidate {
            block_merge_x: 1,
            thread_merge_y: 1,
            thread_merge_x: 1,
            reduction_elems: None,
            time_ms: 0.0,
        },
        evaluated: Vec::new(),
        degraded: None,
        cost_model: opts.cost_model,
        profiler: st.profiler.clone(),
        tuning: None,
    })
}

fn compile_reduction(
    state: PipelineState,
    mut pm: PassManager,
    domain: Domain,
    opts: &CompileOptions,
) -> Result<CompiledKernel, CompileError> {
    if !opts.stages.merge {
        return naive_state_compiled(state, domain, opts);
    }
    let mut best: Option<(CompiledKernel, f64)> = None;
    let mut evaluated = Vec::new();
    let mut metrics = MetricsRegistry::new();
    let mut search_events: Vec<TraceEvent> = Vec::new();
    let mut candidates: Vec<Option<i64>> = vec![None];
    candidates.extend(opts.explore.thread_merge_y.iter().map(|&e| Some(e)));
    for elems in candidates {
        let _cand_span = state.profiler.span_under(
            state.profile_span,
            match elems {
                Some(e) => format!("candidate:red{e}"),
                None => "candidate:red-auto".to_string(),
            },
            "candidate",
        );
        // Each degree probes on a cheap copy-on-write branch; the branch's
        // trace is a suffix merged back only for the winner.
        let mut scratch = state.branch();
        let mut pass = ReductionPass {
            elems,
            rewrite: None,
        };
        pm.run(&mut scratch, &mut pass).map_err(pass_failure)?;
        let Some(rw) = pass.rewrite else {
            search_events.push(TraceEvent::PassSkipped {
                pass: "reduction",
                reason: match elems {
                    Some(e) => format!("{e} elements/thread did not match the reduction pattern"),
                    None => "auto degree did not match the reduction pattern".into(),
                },
            });
            continue;
        };
        let label = format!("red{}", rw.elems_per_thread);
        let reject = |msg: String, search_events: &mut Vec<TraceEvent>| {
            search_events.push(TraceEvent::CandidateEvaluated {
                label: label.clone(),
                block_merge_x: 1,
                thread_merge_y: 1,
                thread_merge_x: 1,
                reduction_elems: Some(rw.elems_per_thread),
                time_ms: 0.0,
                rejected: Some(msg),
            });
        };
        let e1 = match estimate_launch(&rw.stage1, &rw.stage1_launch, &state.bindings, opts) {
            Ok(e) => e,
            Err(msg) => {
                reject(format!("stage 1: {msg}"), &mut search_events);
                continue;
            }
        };
        let e2 = match estimate_launch(&rw.stage2, &rw.stage2_launch, &state.bindings, opts) {
            Ok(e) => e,
            Err(msg) => {
                reject(format!("stage 2: {msg}"), &mut search_events);
                continue;
            }
        };
        let time = e1.time_ms + e2.time_ms;
        let cand = Candidate {
            block_merge_x: 1,
            thread_merge_y: 1,
            thread_merge_x: 1,
            reduction_elems: Some(rw.elems_per_thread),
            time_ms: time,
        };
        let label = format!("red{}", rw.elems_per_thread);
        // Duplicate degrees (the `None` probe often lands on an explicit
        // one) would double-count in the registry.
        if metrics.candidates().iter().all(|c| c.label != label) {
            let mut snapshot = e1.counter_snapshot();
            snapshot.push("stage2_time_ms", e2.time_ms);
            snapshot.push("total_time_ms", time);
            metrics.record(label.clone(), snapshot);
            search_events.push(TraceEvent::CandidateEvaluated {
                label,
                block_merge_x: 1,
                thread_merge_y: 1,
                thread_merge_x: 1,
                reduction_elems: Some(rw.elems_per_thread),
                time_ms: time,
                rejected: None,
            });
            evaluated.push(cand.clone());
        }
        let better = best.as_ref().map(|(_, t)| time < *t).unwrap_or(true);
        if better {
            let partial_layout =
                ArrayLayout::new(&rw.partials, ScalarType::Float, vec![reduction::PARTIALS]);
            let source = format!(
                "{}\n{}",
                print_kernel(&rw.stage1, PrintOptions::default()),
                print_kernel(&rw.stage2, PrintOptions::default())
            );
            let mut trace = state.trace.clone();
            trace.extend(std::mem::take(&mut scratch.trace).into_events());
            trace.emit(TraceEvent::ReductionRestructured {
                elems_per_thread: rw.elems_per_thread,
                launches: 2,
            });
            let compiled = CompiledKernel {
                launches: vec![
                    KernelLaunch {
                        kernel: rw.stage1.clone(),
                        launch: rw.stage1_launch,
                        extra_buffers: vec![partial_layout.clone()],
                    },
                    KernelLaunch {
                        kernel: rw.stage2.clone(),
                        launch: rw.stage2_launch,
                        extra_buffers: vec![partial_layout],
                    },
                ],
                estimate: e1.clone(),
                per_launch: vec![e1, e2],
                trace,
                metrics: MetricsRegistry::new(),
                source,
                chosen: cand,
                evaluated: Vec::new(),
                degraded: None,
                cost_model: opts.cost_model,
                profiler: opts.profiler.clone(),
                tuning: None,
            };
            best = Some((compiled, time));
        }
    }
    match best {
        Some((mut compiled, _)) => {
            compiled.evaluated = evaluated;
            let chosen = compiled.chosen.clone();
            if let Some(elems) = chosen.reduction_elems {
                metrics.set_chosen(format!("red{elems}"));
            }
            compiled.trace.extend(search_events);
            compiled.trace.emit(TraceEvent::MergeSelected {
                block_merge_x: chosen.block_merge_x,
                thread_merge_y: chosen.thread_merge_y,
                thread_merge_x: chosen.thread_merge_x,
                reduction_elems: chosen.reduction_elems,
                time_ms: chosen.time_ms,
            });
            record_duration_histograms(&mut metrics, &compiled.trace);
            compiled.metrics = metrics;
            Ok(compiled)
        }
        None => Err(CompileError::NoValidConfiguration(
            "reduction pattern did not match or no degree fit".into(),
        )),
    }
}

/// Threads above which a `__gsync()` kernel's trace is run at a reduced
/// size and scaled (mega-block execution is O(total threads)).
const MEGA_TRACE_LIMIT: i64 = 1 << 16;

/// Estimates a launch, transparently shrinking grid-wide (`__gsync`)
/// kernels to a traceable size and scaling the extensive counters back up.
pub fn estimate_launch(
    kernel: &Kernel,
    cfg: &LaunchConfig,
    bindings: &Bindings,
    opts: &CompileOptions,
) -> Result<PerfEstimate, String> {
    let perf_opts = PerfOptions {
        sample_blocks: opts.sample_blocks,
        cost_model: opts.cost_model,
        ..PerfOptions::default()
    };
    let total_threads = cfg.total_threads() as i64;
    if kernel.uses_global_sync() && total_threads > MEGA_TRACE_LIMIT {
        let factor = total_threads / MEGA_TRACE_LIMIT;
        // Shrink every large binding by the same factor (reduction arrays
        // are all sized proportionally to the input length). Symbolic dims
        // not divisible by the factor make the shrink unsound — bail out.
        let mut small = Bindings::new();
        for (k, &v) in bindings {
            if v >= MEGA_TRACE_LIMIT {
                if v % factor != 0 {
                    return Err(format!("cannot shrink binding {k}={v} by {factor}"));
                }
                small.insert(k.clone(), v / factor);
            } else {
                small.insert(k.clone(), v);
            }
        }
        let small_cfg = LaunchConfig::one_d(
            (cfg.grid_x as i64 / factor).max(1) as u32,
            cfg.block_x,
        );
        let est = gpgpu_sim::estimate(kernel, &small_cfg, &small, &opts.machine, &perf_opts)
            .map_err(|e| e.to_string())?;
        let mut scaled = est.stats.scaled(factor as f64);
        // Barrier crossings (tree depth) grow with log2 of the shrink.
        scaled.gsync_crossings += factor.ilog2() as u64;
        // The shrunk trace has no replayable event stream, so the cost
        // model finishes from scaled counters alone (the hierarchy model
        // falls back to the analytic formulas here).
        return Ok(opts.cost_model.model().finish_scaled(
            kernel,
            cfg,
            &opts.machine,
            est.blocks_per_sm,
            scaled,
        ));
    }
    gpgpu_sim::estimate(kernel, cfg, bindings, &opts.machine, &perf_opts)
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_ast::parse_kernel;

    const MM: &str = r#"
        __global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
            float sum = 0.0f;
            for (int i = 0; i < w; i = i + 1) {
                sum += a[idy][i] * b[i][idx];
            }
            c[idy][idx] = sum;
        }
    "#;

    fn mm_opts(n: i64) -> CompileOptions {
        CompileOptions::new(MachineDesc::gtx280())
            .bind("n", n)
            .bind("w", n)
    }

    #[test]
    fn mm_compiles_and_beats_naive() {
        let k = parse_kernel(MM).unwrap();
        let opts = mm_opts(512);
        let optimized = compile(&k, &opts).unwrap();
        let naive = naive_compiled(&k, &opts).unwrap();
        assert!(
            optimized.total_time_ms() < naive.total_time_ms() / 2.0,
            "optimized {} vs naive {}",
            optimized.total_time_ms(),
            naive.total_time_ms()
        );
        // The winner merged blocks along X and threads along Y (paper §5).
        assert!(optimized.chosen.block_merge_x >= 8, "{:?}", optimized.chosen);
        assert!(optimized.chosen.thread_merge_y >= 4, "{:?}", optimized.chosen);
        assert!(optimized.source.contains("__shared__"));
        assert!(!optimized.evaluated.is_empty());
    }

    #[test]
    fn dissection_stage_sets_are_cumulative() {
        let d = StageSet::dissection();
        assert_eq!(d[0].1, StageSet::none());
        assert!(d[1].1.vectorize && !d[1].1.coalesce);
        assert!(d[2].1.coalesce && !d[2].1.merge);
        assert!(d[3].1.merge && !d[3].1.prefetch);
        assert!(d[4].1.prefetch && !d[4].1.partition);
        assert_eq!(d[5].1, StageSet::all());
    }

    #[test]
    fn staged_compilation_is_monotone_for_mm() {
        let k = parse_kernel(MM).unwrap();
        let base = mm_opts(256);
        let mut last = f64::INFINITY;
        for (name, stages) in StageSet::dissection() {
            let opts = base.clone().with_stages(stages);
            let compiled = compile(&k, &opts).unwrap();
            let t = compiled.total_time_ms();
            assert!(
                t <= last * 1.05,
                "stage {name} regressed: {t} ms after {last} ms"
            );
            last = last.min(t);
        }
    }

    #[test]
    fn reduction_compiles_to_two_launches() {
        let k = parse_kernel(
            "#pragma gpgpu output c
            __global__ void rd(float a[len], float c[1], int len) {
                for (int s = len / 2; s > 0; s = s >> 1) {
                    if (idx < s) { a[idx] = a[idx] + a[idx + s]; }
                    __gsync();
                }
                if (idx == 0) { c[0] = a[0]; }
            }",
        )
        .unwrap();
        let opts = CompileOptions::new(MachineDesc::gtx280()).bind("len", 1 << 22);
        let compiled = compile(&k, &opts).unwrap();
        assert_eq!(compiled.launches.len(), 2);
        assert!(compiled.chosen.reduction_elems.is_some());
        assert_eq!(compiled.launches[0].extra_buffers.len(), 1);
        // And it beats the naive gsync tree.
        let naive = naive_compiled(&k, &opts).unwrap();
        assert!(compiled.total_time_ms() < naive.total_time_ms());
    }

    #[test]
    fn transpose_compiles_with_camping_fix() {
        let k = parse_kernel(
            "__global__ void tp(float a[n][n], float c[n][n], int n) {
                c[idx][idy] = a[idy][idx];
            }",
        )
        .unwrap();
        let opts = CompileOptions::new(MachineDesc::gtx280()).bind("n", 1024);
        let compiled = compile(&k, &opts).unwrap();
        assert!(compiled.source.contains("diag_bx"), "{}", compiled.source);
        assert_eq!(compiled.launches[0].launch.block_x, 16);
        assert_eq!(compiled.launches[0].launch.block_y, 16);
    }

    #[test]
    fn amd_targets_widen_elementwise_kernels() {
        let vv = parse_kernel(
            "__global__ void vv(float a[n], float b[n], float c[n], int n) {
                c[idx] = a[idx] * b[idx];
            }",
        )
        .unwrap();
        let amd = CompileOptions::new(MachineDesc::hd5870()).bind("n", 1 << 20);
        let compiled = compile(&vv, &amd).unwrap();
        assert!(compiled.source.contains("float4"), "{}", compiled.source);
        // NVIDIA targets leave the scalar kernel alone (§3.1's rule).
        let nv = CompileOptions::new(MachineDesc::gtx280()).bind("n", 1 << 20);
        let compiled = compile(&vv, &nv).unwrap();
        assert!(!compiled.source.contains("float4"), "{}", compiled.source);
    }

    #[test]
    fn mega_kernels_estimate_via_shrunk_traces() {
        // A 64M-element reduction cannot be traced directly; the estimate
        // shrinks the bindings, scales the counters, and adjusts barrier
        // crossings logarithmically.
        let k = parse_kernel(
            "#pragma gpgpu output c
            __global__ void rd(float a[len], float c[1], int len) {
                for (int s = len / 2; s > 0; s = s >> 1) {
                    if (idx < s) { a[idx] = a[idx] + a[idx + s]; }
                    __gsync();
                }
                if (idx == 0) { c[0] = a[0]; }
            }",
        )
        .unwrap();
        let opts = CompileOptions::new(MachineDesc::gtx280()).bind("len", 1 << 26);
        let cfg = LaunchConfig::one_d((1 << 26) / 256, 256);
        let est = estimate_launch(&k, &cfg, &opts.bindings, &opts).unwrap();
        // Traffic is linear in n: roughly 2·4B per element for the first
        // tree level and geometrically less after.
        assert!(est.stats.useful_bytes > (1u64 << 26) * 4, "{est:?}");
        assert_eq!(est.stats.gsync_crossings, 26);
        assert!(est.time_ms > 0.5, "{}", est.time_ms);
    }

    #[test]
    fn unknown_sizes_fail_cleanly() {
        let k = parse_kernel(MM).unwrap();
        let opts = CompileOptions::new(MachineDesc::gtx280());
        assert!(compile(&k, &opts).is_err());
    }
}
