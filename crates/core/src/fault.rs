//! Fault injection for testing the containment layer.
//!
//! Compiled only with the `fault-inject` feature (the workspace enables it
//! for test builds; release builds compile the no-op shims below). A fault
//! is *armed* either programmatically ([`arm_panic`] / [`arm_fuel`]) or via
//! the `GPGPU_FAULT` environment variable, whose value is
//! `panic:<site>` or `fuel:<site>` where `<site>` is a candidate label
//! (`bx8_ty4_tx1`), the string `pipeline`, or `*` for any site.
//!
//! The pipeline probes [`maybe_panic`] at the start of every candidate
//! evaluation and of the optimized-compile path, and [`fuel_override`]
//! when building a candidate's simulator options. Armed state is
//! process-global, so tests that arm faults must serialize on a lock.

/// Steps of fuel an injected fuel fault leaves a candidate — small enough
/// that any real kernel trace exhausts it immediately.
pub const INJECTED_FUEL: u64 = 8;

#[cfg(feature = "fault-inject")]
mod imp {
    use super::INJECTED_FUEL;
    use std::sync::Mutex;

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Kind {
        Panic,
        Fuel,
    }

    struct Armed {
        kind: Kind,
        site: String,
    }

    static ARMED: Mutex<Option<Armed>> = Mutex::new(None);

    fn armed_matches(kind: Kind, site: &str) -> bool {
        let guard = ARMED.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(a) = guard.as_ref() {
            if a.kind == kind && (a.site == "*" || a.site == site) {
                return true;
            }
        }
        drop(guard);
        // Environment-variable arming, used by CLI integration tests where
        // the injector runs in a child process.
        if let Ok(v) = std::env::var("GPGPU_FAULT") {
            let want = match kind {
                Kind::Panic => "panic",
                Kind::Fuel => "fuel",
            };
            if let Some((k, s)) = v.split_once(':') {
                return k == want && (s == "*" || s == site);
            }
        }
        false
    }

    /// Arms a panic fault at `site` (`*` = any site).
    pub fn arm_panic(site: &str) {
        *ARMED.lock().unwrap_or_else(|p| p.into_inner()) = Some(Armed {
            kind: Kind::Panic,
            site: site.to_string(),
        });
    }

    /// Arms a fuel-exhaustion fault at `site` (`*` = any site).
    pub fn arm_fuel(site: &str) {
        *ARMED.lock().unwrap_or_else(|p| p.into_inner()) = Some(Armed {
            kind: Kind::Fuel,
            site: site.to_string(),
        });
    }

    /// Disarms any armed fault.
    pub fn disarm() {
        *ARMED.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }

    /// Panics when a panic fault is armed for `site`.
    pub fn maybe_panic(site: &str) {
        if armed_matches(Kind::Panic, site) {
            panic!("injected fault at {site}");
        }
    }

    /// The fuel budget to force on `site`, when a fuel fault is armed.
    pub fn fuel_override(site: &str) -> Option<u64> {
        armed_matches(Kind::Fuel, site).then_some(INJECTED_FUEL)
    }
}

#[cfg(not(feature = "fault-inject"))]
mod imp {
    /// Arms a panic fault (no-op without `fault-inject`).
    pub fn arm_panic(_site: &str) {}

    /// Arms a fuel fault (no-op without `fault-inject`).
    pub fn arm_fuel(_site: &str) {}

    /// Disarms any armed fault (no-op without `fault-inject`).
    pub fn disarm() {}

    /// Never panics without `fault-inject`.
    pub fn maybe_panic(_site: &str) {}

    /// Never overrides fuel without `fault-inject`.
    pub fn fuel_override(_site: &str) -> Option<u64> {
        None
    }
}

pub use imp::{arm_fuel, arm_panic, disarm, fuel_override, maybe_panic};
