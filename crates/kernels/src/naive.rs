//! The naive kernels of Table 1 — the compiler's inputs.
//!
//! Each kernel computes a single output element at `(idx, idy)` with no
//! device-specific optimization, exactly the programming model the paper
//! asks of application developers. Reductions use the `__gsync()` grid
//! barrier the input language provides.

use crate::{bindings, Benchmark};

/// Transposed-matrix–vector multiplication `c = Aᵀ·b` (`a` stored `[w][n]`).
pub static TMV: Benchmark = Benchmark {
    name: "tmv",
    description: "transpose matrix vector multiplication",
    source: r#"
__global__ void tmv(float a[w][n], float b[w], float c[n], int n, int w) {
    float sum = 0.0f;
    for (int i = 0; i < w; i = i + 1) {
        sum += a[i][idx] * b[i];
    }
    c[idx] = sum;
}
"#,
    loc: 11,
    default_size: 2048,
    sizes: &[1024, 2048, 4096],
    in_cublas: true,
    bind: |n| bindings(&[("n", n), ("w", n)]),
    flops: |n| 2.0 * n as f64 * n as f64,
    bytes: |n| 4.0 * (n as f64 * n as f64 + 2.0 * n as f64),
};

/// Matrix multiplication `c = a·b`.
pub static MM: Benchmark = Benchmark {
    name: "mm",
    description: "matrix multiplication",
    source: r#"
__global__ void mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {
    float sum = 0.0f;
    for (int i = 0; i < w; i = i + 1) {
        sum += a[idy][i] * b[i][idx];
    }
    c[idy][idx] = sum;
}
"#,
    loc: 10,
    default_size: 2048,
    sizes: &[1024, 2048, 4096],
    in_cublas: true,
    bind: |n| bindings(&[("n", n), ("w", n)]),
    flops: |n| 2.0 * (n as f64).powi(3),
    bytes: |n| 4.0 * 3.0 * n as f64 * n as f64,
};

/// Matrix–vector multiplication `c = a·b`.
pub static MV: Benchmark = Benchmark {
    name: "mv",
    description: "matrix-vector multiplication",
    source: r#"
__global__ void mv(float a[n][w], float b[w], float c[n], int n, int w) {
    float sum = 0.0f;
    for (int i = 0; i < w; i = i + 1) {
        sum += a[idx][i] * b[i];
    }
    c[idx] = sum;
}
"#,
    loc: 11,
    default_size: 2048,
    sizes: &[1024, 2048, 4096],
    in_cublas: true,
    bind: |n| bindings(&[("n", n), ("w", n)]),
    flops: |n| 2.0 * n as f64 * n as f64,
    bytes: |n| 4.0 * (n as f64 * n as f64 + 2.0 * n as f64),
};

/// Element-wise vector–vector multiplication.
pub static VV: Benchmark = Benchmark {
    name: "vv",
    description: "vector-vector multiplication",
    source: r#"
__global__ void vv(float a[n], float b[n], float c[n], int n) {
    c[idx] = a[idx] * b[idx];
}
"#,
    loc: 3,
    default_size: 2048 * 2048,
    sizes: &[1024 * 1024, 2048 * 2048, 4096 * 4096],
    in_cublas: true,
    bind: |n| bindings(&[("n", n)]),
    flops: |n| n as f64,
    bytes: |n| 4.0 * 3.0 * n as f64,
};

/// Sum reduction over `len` floats, written with the `__gsync()` tree.
pub static RD: Benchmark = Benchmark {
    name: "rd",
    description: "reduction (sum)",
    source: r#"
#pragma gpgpu output c
__global__ void rd(float a[len], float c[1], int len) {
    for (int s = len / 2; s > 0; s = s >> 1) {
        if (idx < s) {
            a[idx] = a[idx] + a[idx + s];
        }
        __gsync();
    }
    if (idx == 0) {
        c[0] = a[0];
    }
}
"#,
    loc: 9,
    default_size: 4 * 1024 * 1024,
    sizes: &[1024 * 1024, 4 * 1024 * 1024, 16 * 1024 * 1024],
    in_cublas: true,
    bind: |n| bindings(&[("len", n)]),
    flops: |n| n as f64,
    bytes: |n| 4.0 * n as f64,
};

/// Complex-number reduction (CublasScasum shape): `Σ |re| + |im|`, with the
/// real parts stored next to the imaginary parts (Figure 14's workload).
pub static RDC: Benchmark = Benchmark {
    name: "rdc",
    description: "reduction over complex numbers",
    source: r#"
#pragma gpgpu output c
__global__ void rdc(float a[len2], float t[len], float c[1], int len, int len2) {
    t[idx] = fabsf(a[2 * idx]) + fabsf(a[2 * idx + 1]);
    __gsync();
    for (int s = len / 2; s > 0; s = s >> 1) {
        if (idx < s) {
            t[idx] = t[idx] + t[idx + s];
        }
        __gsync();
    }
    if (idx == 0) {
        c[0] = t[0];
    }
}
"#,
    loc: 12,
    default_size: 4 * 1024 * 1024,
    sizes: &[1024 * 1024, 4 * 1024 * 1024, 16 * 1024 * 1024],
    in_cublas: true,
    bind: |n| bindings(&[("len", n), ("len2", 2 * n)]),
    flops: |n| 3.0 * n as f64,
    bytes: |n| 8.0 * n as f64,
};

/// Triangular solve with multiple right-hand sides: `l·x = b2` with `l`
/// lower-triangular; each thread forward-substitutes one column.
pub static STRSM: Benchmark = Benchmark {
    name: "strsm",
    description: "matrix equation solver (triangular, multiple RHS)",
    source: r#"
#pragma gpgpu output x
__global__ void strsm(float l[n][n], float b2[n][n], float x[n][n], int n) {
    for (int r = 0; r < n; r = r + 1) {
        float s = b2[r][idx];
        for (int k = 0; k < n; k = k + 1) {
            if (k < r) {
                s = s - l[r][k] * x[k][idx];
            }
        }
        x[r][idx] = s / l[r][r];
    }
}
"#,
    loc: 18,
    default_size: 1024,
    sizes: &[1024, 2048, 4096],
    in_cublas: true,
    bind: |n| bindings(&[("n", n)]),
    flops: |n| (n as f64).powi(3),
    bytes: |n| 4.0 * 3.0 * n as f64 * n as f64,
};

/// 2-D convolution of a 4k×4k image with a 32×32 kernel; the input carries
/// a 32-pixel apron so the naive kernel needs no boundary tests.
pub static CONV: Benchmark = Benchmark {
    name: "conv",
    description: "2-D convolution (32x32 kernel)",
    source: r#"
__global__ void conv(float img[h2][w2], float g[kh][kw], float c[h][w], int h, int w, int h2, int w2, int kh, int kw) {
    float s = 0.0f;
    for (int ky = 0; ky < kh; ky = ky + 1) {
        for (int kx = 0; kx < kw; kx = kx + 1) {
            s += img[idy + ky][idx + kx] * g[ky][kx];
        }
    }
    c[idy][idx] = s;
}
"#,
    loc: 12,
    default_size: 4096,
    sizes: &[1024, 2048, 4096],
    in_cublas: false,
    bind: |n| {
        bindings(&[
            ("h", n),
            ("w", n),
            ("h2", n + 32),
            ("w2", n + 32),
            ("kh", 32),
            ("kw", 32),
        ])
    },
    flops: |n| 2.0 * n as f64 * n as f64 * 32.0 * 32.0,
    bytes: |n| 4.0 * 2.0 * n as f64 * n as f64,
};

/// Matrix transpose.
pub static TP: Benchmark = Benchmark {
    name: "tp",
    description: "matrix transpose",
    source: r#"
__global__ void tp(float a[n][n], float c[n][n], int n) {
    c[idx][idy] = a[idy][idx];
}
"#,
    loc: 11,
    default_size: 4096,
    sizes: &[1024, 2048, 3072, 4096, 8192],
    in_cublas: false,
    bind: |n| bindings(&[("n", n)]),
    flops: |_| 0.0,
    bytes: |n| 4.0 * 2.0 * n as f64 * n as f64,
};

/// Bayer demosaicing (green-channel bilinear reconstruction): pixels on the
/// green sites copy the sample, others average their four neighbours. The
/// raw input carries a 2-pixel apron.
pub static DEMOSAIC: Benchmark = Benchmark {
    name: "demosaic",
    description: "image reconstruction (demosaicing)",
    source: r#"
__global__ void demosaic(float raw[h2][w2], float g[h][w], int h, int w, int h2, int w2) {
    float v = raw[idy + 1][idx + 1];
    float up = raw[idy][idx + 1];
    float down = raw[idy + 2][idx + 1];
    float left = raw[idy + 1][idx];
    float right = raw[idy + 1][idx + 2];
    float interp = (up + down + left + right) * 0.25f;
    g[idy][idx] = (idx + idy) % 2 == 0 ? v : interp;
}
"#,
    loc: 27,
    default_size: 2048,
    sizes: &[1024, 2048, 4096],
    in_cublas: false,
    bind: |n| bindings(&[("h", n), ("w", n), ("h2", n + 2), ("w2", n + 2)]),
    flops: |n| 4.0 * n as f64 * n as f64,
    bytes: |n| 4.0 * 2.0 * n as f64 * n as f64,
};

/// Regional maxima: a pixel is 1 when it strictly dominates its 8
/// neighbours. The input carries a 2-pixel apron.
pub static IMREGIONMAX: Benchmark = Benchmark {
    name: "imregionmax",
    description: "find the regional maxima (3x3 neighbourhood)",
    source: r#"
__global__ void imregionmax(float img[h2][w2], float out[h][w], int h, int w, int h2, int w2) {
    float v = img[idy + 1][idx + 1];
    float m = img[idy][idx];
    m = fmaxf(m, img[idy][idx + 1]);
    m = fmaxf(m, img[idy][idx + 2]);
    m = fmaxf(m, img[idy + 1][idx]);
    m = fmaxf(m, img[idy + 1][idx + 2]);
    m = fmaxf(m, img[idy + 2][idx]);
    m = fmaxf(m, img[idy + 2][idx + 1]);
    m = fmaxf(m, img[idy + 2][idx + 2]);
    out[idy][idx] = v > m ? 1.0f : 0.0f;
}
"#,
    loc: 26,
    default_size: 2048,
    sizes: &[1024, 2048, 4096],
    in_cublas: false,
    bind: |n| bindings(&[("h", n), ("w", n), ("h2", n + 2), ("w2", n + 2)]),
    flops: |n| 9.0 * n as f64 * n as f64,
    bytes: |n| 4.0 * 2.0 * n as f64 * n as f64,
};

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_core::{infer_domain, Domain};

    #[test]
    fn domains_match_output_shapes() {
        let cases: &[(&Benchmark, i64, Domain)] = &[
            (&TMV, 256, Domain { x: 256, y: 1 }),
            (&MM, 256, Domain { x: 256, y: 256 }),
            (&MV, 256, Domain { x: 256, y: 1 }),
            (&VV, 4096, Domain { x: 4096, y: 1 }),
            (&RD, 4096, Domain { x: 4096, y: 1 }),
            (&STRSM, 256, Domain { x: 256, y: 1 }),
            (&CONV, 256, Domain { x: 256, y: 256 }),
            (&TP, 256, Domain { x: 256, y: 256 }),
            (&DEMOSAIC, 256, Domain { x: 256, y: 256 }),
            (&IMREGIONMAX, 256, Domain { x: 256, y: 256 }),
        ];
        for (b, size, want) in cases {
            let d = infer_domain(&b.kernel(), &(b.bind)(*size)).unwrap();
            assert_eq!(d, *want, "{}", b.name);
        }
    }

    #[test]
    fn rd_kernels_use_global_sync() {
        assert!(RD.kernel().uses_global_sync());
        assert!(RDC.kernel().uses_global_sync());
        assert!(!MM.kernel().uses_global_sync());
    }

    #[test]
    fn conv_apron_sizes_consistent() {
        let b = (CONV.bind)(1024);
        assert_eq!(b["h2"], b["h"] + 32);
        assert_eq!(b["w2"], b["w"] + 32);
    }
}
