//! Host (CPU) reference implementations — the ground truth the simulator
//! results are checked against in the integration tests.
//!
//! All matrices are row-major `f32` slices.

/// `c = a·b` for `a: n×w`, `b: w×n` (square output `n×n`).
pub fn mm(a: &[f32], b: &[f32], n: usize, w: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; n * n];
    for y in 0..n {
        for x in 0..n {
            let mut s = 0.0f32;
            for i in 0..w {
                s += a[y * w + i] * b[i * n + x];
            }
            c[y * n + x] = s;
        }
    }
    c
}

/// `c = a·b` for `a: n×w`, `b: w`.
pub fn mv(a: &[f32], b: &[f32], n: usize, w: usize) -> Vec<f32> {
    (0..n)
        .map(|r| (0..w).map(|i| a[r * w + i] * b[i]).sum())
        .collect()
}

/// `c = aᵀ·b` for `a: w×n`, `b: w`.
pub fn tmv(a: &[f32], b: &[f32], n: usize, w: usize) -> Vec<f32> {
    (0..n)
        .map(|cix| (0..w).map(|i| a[i * n + cix] * b[i]).sum())
        .collect()
}

/// Element-wise product.
pub fn vv(a: &[f32], b: &[f32]) -> Vec<f32> {
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// Sum of all elements (pairwise, mirroring the gsync tree's association).
pub fn rd(a: &[f32]) -> f32 {
    let mut v = a.to_vec();
    let mut s = v.len() / 2;
    while s > 0 {
        for i in 0..s {
            v[i] += v[i + s];
        }
        s /= 2;
    }
    v[0]
}

/// `Σ |re| + |im|` over interleaved complex data.
pub fn rdc(a: &[f32]) -> f32 {
    let t: Vec<f32> = a.chunks(2).map(|c| c[0].abs() + c[1].abs()).collect();
    rd(&t)
}

/// Forward substitution `l·x = b` with `l: n×n` lower-triangular and
/// `b: n×n` (column-per-RHS).
pub fn strsm(l: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut x = vec![0.0f32; n * n];
    for col in 0..n {
        for r in 0..n {
            let mut s = b[r * n + col];
            for k in 0..r {
                s -= l[r * n + k] * x[k * n + col];
            }
            x[r * n + col] = s / l[r * n + r];
        }
    }
    x
}

/// Valid 2-D convolution of `img: (h+kh)×(w+kw)` with `g: kh×kw`,
/// producing `h×w`.
#[allow(clippy::too_many_arguments)]
pub fn conv(img: &[f32], g: &[f32], h: usize, w: usize, kh: usize, kw: usize) -> Vec<f32> {
    let w2 = w + kw;
    let mut out = vec![0.0f32; h * w];
    for y in 0..h {
        for x in 0..w {
            let mut s = 0.0f32;
            for ky in 0..kh {
                for kx in 0..kw {
                    s += img[(y + ky) * w2 + (x + kx)] * g[ky * kw + kx];
                }
            }
            out[y * w + x] = s;
        }
    }
    out
}

/// Matrix transpose `c = aᵀ` for square `n×n`.
pub fn tp(a: &[f32], n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; n * n];
    for y in 0..n {
        for x in 0..n {
            c[x * n + y] = a[y * n + x];
        }
    }
    c
}

/// Green-channel bilinear demosaic; `raw: (h+2)×(w+2)` with a 1-pixel
/// apron on each side.
pub fn demosaic(raw: &[f32], h: usize, w: usize) -> Vec<f32> {
    let w2 = w + 2;
    let mut g = vec![0.0f32; h * w];
    for y in 0..h {
        for x in 0..w {
            let v = raw[(y + 1) * w2 + (x + 1)];
            let interp = 0.25
                * (raw[y * w2 + (x + 1)]
                    + raw[(y + 2) * w2 + (x + 1)]
                    + raw[(y + 1) * w2 + x]
                    + raw[(y + 1) * w2 + (x + 2)]);
            g[y * w + x] = if (x + y) % 2 == 0 { v } else { interp };
        }
    }
    g
}

/// 3×3 regional maxima; `img: (h+2)×(w+2)` with a 1-pixel apron.
pub fn imregionmax(img: &[f32], h: usize, w: usize) -> Vec<f32> {
    let w2 = w + 2;
    let mut out = vec![0.0f32; h * w];
    for y in 0..h {
        for x in 0..w {
            let v = img[(y + 1) * w2 + (x + 1)];
            let mut m = f32::NEG_INFINITY;
            for dy in 0..3 {
                for dx in 0..3 {
                    if dy == 1 && dx == 1 {
                        continue;
                    }
                    m = m.max(img[(y + dy) * w2 + (x + dx)]);
                }
            }
            out[y * w + x] = if v > m { 1.0 } else { 0.0 };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm_identity() {
        let n = 4;
        let mut id = vec![0.0f32; n * n];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        let a: Vec<f32> = (0..n * n).map(|v| v as f32).collect();
        assert_eq!(mm(&a, &id, n, n), a);
    }

    #[test]
    fn mv_and_tmv_agree_on_symmetric_input() {
        let n = 4;
        let mut a = vec![0.0f32; n * n];
        for y in 0..n {
            for x in 0..n {
                a[y * n + x] = ((x + 1) * (y + 1)) as f32;
            }
        }
        let b: Vec<f32> = (0..n).map(|v| v as f32).collect();
        assert_eq!(mv(&a, &b, n, n), tmv(&a, &b, n, n));
    }

    #[test]
    fn rd_sums() {
        let a: Vec<f32> = (0..1024).map(|v| v as f32).collect();
        assert_eq!(rd(&a), (0..1024).sum::<i32>() as f32);
    }

    #[test]
    fn rdc_sums_magnitudes() {
        let a = vec![1.0f32, -2.0, -3.0, 4.0];
        assert_eq!(rdc(&a), 10.0);
    }

    #[test]
    fn strsm_solves() {
        let n = 4;
        // l = lower triangular with 2 on the diagonal, 1 below.
        let mut l = vec![0.0f32; n * n];
        for r in 0..n {
            for k in 0..=r {
                l[r * n + k] = if k == r { 2.0 } else { 1.0 };
            }
        }
        let x_true: Vec<f32> = (0..n * n).map(|v| (v % 5) as f32).collect();
        // b = l · x_true
        let mut b = vec![0.0f32; n * n];
        for r in 0..n {
            for c in 0..n {
                for k in 0..n {
                    b[r * n + c] += l[r * n + k] * x_true[k * n + c];
                }
            }
        }
        let x = strsm(&l, &b, n);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-4);
        }
    }

    #[test]
    fn tp_involution() {
        let n = 8;
        let a: Vec<f32> = (0..n * n).map(|v| v as f32).collect();
        assert_eq!(tp(&tp(&a, n), n), a);
    }

    #[test]
    fn conv_with_delta_kernel_is_shift() {
        let (h, w, kh, kw) = (4, 4, 2, 2);
        let img: Vec<f32> = (0..(h + kh) * (w + kw)).map(|v| v as f32).collect();
        let mut g = vec![0.0f32; kh * kw];
        g[0] = 1.0; // delta at (0,0)
        let out = conv(&img, &g, h, w, kh, kw);
        for y in 0..h {
            for x in 0..w {
                assert_eq!(out[y * w + x], img[y * (w + kw) + x]);
            }
        }
    }

    #[test]
    fn imregionmax_flags_peak() {
        let (h, w) = (3, 3);
        let mut img = vec![0.0f32; (h + 2) * (w + 2)];
        img[2 * (w + 2) + 2] = 5.0; // centre pixel of output (1,1)
        let out = imregionmax(&img, h, w);
        assert_eq!(out[w + 1], 1.0);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn demosaic_parity() {
        let (h, w) = (2, 2);
        let raw: Vec<f32> = (0..(h + 2) * (w + 2)).map(|v| v as f32).collect();
        let g = demosaic(&raw, h, w);
        // (0,0): even parity → copy raw[1][1] = 5 (w2 = 4).
        assert_eq!(g[0], raw[5]);
        // (1,0): odd parity → average of the 4 neighbours of raw[2][1].
        let w2 = w + 2;
        let want = 0.25 * (raw[w2 + 1] + raw[3 * w2 + 1] + raw[2 * w2] + raw[2 * w2 + 2]);
        assert_eq!(g[w], want);
    }
}
