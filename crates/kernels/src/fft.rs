//! The 1-D FFT case study of paper §7.
//!
//! Four variants of a Stockham (autosorting, out-of-place) complex FFT:
//!
//! * [`radix2_program`] — the *naive 2-point* kernel: one butterfly per
//!   thread, log₂ n launches (the paper's 50-line naive kernel);
//! * [`merged2_program`] — what the compiler's thread merge produces:
//!   each thread performs an 8-point FFT *built from generic 2-point
//!   butterflies* (every internal twiddle is a full complex multiply),
//!   log₈ n launches;
//! * [`radix8_program`] — the hand-written *naive 8-point* kernel: the same
//!   structure with the trivial twiddles (±1, ±i, √2/2(1∓i)) simplified;
//! * the *optimized 8-point* of the paper is [`radix8_program`] further
//!   compiled (block-merged) by the driver — the harness does that.
//!
//! Data is stored as split re/im arrays; stages ping-pong between an `x`
//! and a `y` buffer pair. Twiddle tables are per-stage constants the
//! harness uploads (see [`Workspace`]).

use gpgpu_analysis::ArrayLayout;
use gpgpu_ast::{parse_kernel, LaunchConfig, ScalarType};
use gpgpu_core::KernelLaunch;
use std::f64::consts::PI;

/// A complex value (host side).
pub type C = (f64, f64);

fn cmul(a: C, b: C) -> C {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

fn cadd(a: C, b: C) -> C {
    (a.0 + b.0, a.1 + b.1)
}

fn csub(a: C, b: C) -> C {
    (a.0 - b.0, a.1 - b.1)
}

/// `exp(-2πi t/d)`.
fn w(t: i64, d: i64) -> C {
    let ang = -2.0 * PI * t as f64 / d as f64;
    (ang.cos(), ang.sin())
}

/// Direct O(n²) DFT — the testing oracle.
pub fn dft(x: &[C]) -> Vec<C> {
    let n = x.len() as i64;
    (0..n)
        .map(|k| {
            let mut acc = (0.0, 0.0);
            for (t, &v) in x.iter().enumerate() {
                acc = cadd(acc, cmul(v, w(k * t as i64, n)));
            }
            acc
        })
        .collect()
}

/// 8-point DFT via the three-level 2-point butterfly network (DIT with
/// bit-reversed inputs). Public for the kernel generators' tests.
pub fn dft8(y: [C; 8]) -> [C; 8] {
    const REV: [usize; 8] = [0, 4, 2, 6, 1, 5, 3, 7];
    let mut v: [C; 8] = [(0.0, 0.0); 8];
    for k in 0..8 {
        v[k] = y[REV[k]];
    }
    // Level 1: distance 1, twiddle 1.
    for p in (0..8).step_by(2) {
        let (a, b) = (v[p], v[p + 1]);
        v[p] = cadd(a, b);
        v[p + 1] = csub(a, b);
    }
    // Level 2: distance 2, twiddles W4^{0,1}.
    for g in (0..8).step_by(4) {
        for o in 0..2 {
            let tw = w(o as i64, 4);
            let t = cmul(tw, v[g + o + 2]);
            let a = v[g + o];
            v[g + o] = cadd(a, t);
            v[g + o + 2] = csub(a, t);
        }
    }
    // Level 3: distance 4, twiddles W8^{0..3}.
    for o in 0..4 {
        let tw = w(o as i64, 8);
        let t = cmul(tw, v[o + 4]);
        let a = v[o];
        v[o] = cadd(a, t);
        v[o + 4] = csub(a, t);
    }
    v
}

/// Host Stockham radix-2 FFT (reference for the kernel pipelines).
pub fn fft_host(x: &[C]) -> Vec<C> {
    let n = x.len();
    assert!(n.is_power_of_two());
    let mut a = x.to_vec();
    let mut b = vec![(0.0, 0.0); n];
    let m = n / 2;
    let mut l = 1usize;
    while l < n {
        for i in 0..m {
            let j = i % l;
            let tw = w(j as i64, 2 * l as i64);
            let u = a[i];
            let v = cmul(tw, a[i + m]);
            b[2 * i - j] = cadd(u, v);
            b[2 * i - j + l] = csub(u, v);
        }
        std::mem::swap(&mut a, &mut b);
        l *= 2;
    }
    a
}

/// Host Stockham radix-8 FFT (n must be a power of 8).
pub fn fft8_host(x: &[C]) -> Vec<C> {
    let n = x.len();
    let mut a = x.to_vec();
    let mut b = vec![(0.0, 0.0); n];
    let m = n / 8;
    let mut l = 1usize;
    while l < n {
        for i in 0..m {
            let j = i % l;
            let mut y = [(0.0, 0.0); 8];
            for (k, slot) in y.iter_mut().enumerate() {
                *slot = cmul(w((j * k) as i64, 8 * l as i64), a[i + k * m]);
            }
            let z = dft8(y);
            for (k, zv) in z.iter().enumerate() {
                b[8 * i - 7 * j + k * l] = *zv;
            }
        }
        std::mem::swap(&mut a, &mut b);
        l *= 8;
    }
    a
}

/// Buffers an FFT pipeline needs: the ping-pong data arrays plus the
/// per-stage twiddle tables with their contents.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Zero-initialized data arrays (the harness uploads the input into
    /// `x_re`/`x_im`).
    pub data: Vec<ArrayLayout>,
    /// Constant tables: layout plus contents.
    pub tables: Vec<(ArrayLayout, Vec<f32>)>,
    /// Which buffer pair holds the result (`"x"` or `"y"`).
    pub result_in: &'static str,
}

fn data_layouts(n: i64) -> Vec<ArrayLayout> {
    ["x_re", "x_im", "y_re", "y_im"]
        .iter()
        .map(|name| ArrayLayout::new(*name, ScalarType::Float, vec![n]))
        .collect()
}

/// Builds the naive 2-point program: log₂ n single-butterfly launches.
pub fn radix2_program(n: i64) -> (Vec<KernelLaunch>, Workspace) {
    assert!(n >= 2 && (n & (n - 1)) == 0, "n must be a power of two");
    let m = n / 2;
    let mut launches = Vec::new();
    let mut tables = Vec::new();
    let mut l = 1i64;
    let mut stage = 0usize;
    while l < n {
        let (src, dst) = if stage.is_multiple_of(2) { ("x", "y") } else { ("y", "x") };
        let wr = format!("w{stage}_re");
        let wi = format!("w{stage}_im");
        // Full-length tables (indexed by thread id) avoid a second modulo.
        let mut tr = Vec::with_capacity(m as usize);
        let mut ti = Vec::with_capacity(m as usize);
        for i in 0..m {
            let tw = w(i % l, 2 * l);
            tr.push(tw.0 as f32);
            ti.push(tw.1 as f32);
        }
        tables.push((ArrayLayout::new(&wr, ScalarType::Float, vec![m]), tr));
        tables.push((ArrayLayout::new(&wi, ScalarType::Float, vec![m]), ti));

        let src_code = format!(
            r#"
#pragma gpgpu domain {m}
__global__ void fft2_s{stage}(float {src}_re[{n}], float {src}_im[{n}], float {dst}_re[{n}], float {dst}_im[{n}], float {wr}[{m}], float {wi}[{m}]) {{
    int j = idx % {l};
    float ar = {src}_re[idx];
    float ai = {src}_im[idx];
    float vr = {wr}[idx] * {src}_re[idx + {m}] - {wi}[idx] * {src}_im[idx + {m}];
    float vi = {wr}[idx] * {src}_im[idx + {m}] + {wi}[idx] * {src}_re[idx + {m}];
    {dst}_re[2 * idx - j] = ar + vr;
    {dst}_im[2 * idx - j] = ai + vi;
    {dst}_re[2 * idx - j + {l}] = ar - vr;
    {dst}_im[2 * idx - j + {l}] = ai - vi;
}}
"#
        );
        let kernel = parse_kernel(&src_code).expect("generated radix-2 stage parses");
        let block = m.clamp(1, 128);
        launches.push(KernelLaunch {
            kernel,
            launch: LaunchConfig::one_d((m / block) as u32, block as u32),
            extra_buffers: Vec::new(),
        });
        l *= 2;
        stage += 1;
    }
    let result_in = if stage.is_multiple_of(2) { "x" } else { "y" };
    (
        launches,
        Workspace {
            data: data_layouts(n),
            tables,
            result_in,
        },
    )
}

/// Emits the complex multiply `dst = tw · (sr, si)` as source lines,
/// simplifying trivial twiddles when `simplify` is set.
fn emit_cmul(dst: &str, tw: C, sr: &str, si: &str, simplify: bool, out: &mut String) {
    let near = |a: f64, b: f64| (a - b).abs() < 1e-12;
    if simplify && near(tw.0, 1.0) && near(tw.1, 0.0) {
        out.push_str(&format!("    float {dst}_r = {sr};\n    float {dst}_i = {si};\n"));
        return;
    }
    if simplify && near(tw.0, 0.0) && near(tw.1, -1.0) {
        // multiply by -i: (r, i) → (i, -r)
        out.push_str(&format!(
            "    float {dst}_r = {si};\n    float {dst}_i = 0.0f - {sr};\n"
        ));
        return;
    }
    let (re, im) = (tw.0 as f32, tw.1 as f32);
    out.push_str(&format!(
        "    float {dst}_r = {re:?}f * {sr} - {im:?}f * {si};\n    float {dst}_i = {re:?}f * {si} + {im:?}f * {sr};\n"
    ));
}

/// Builds an 8-point-per-thread program. With `simplify` false this is the
/// *compiler-merged* variant (every internal twiddle is a generic 2-point
/// complex multiply); with `simplify` true it is the hand-written *naive
/// 8-point* kernel.
pub fn radix8_like_program(n: i64, simplify: bool) -> (Vec<KernelLaunch>, Workspace) {
    assert!(n >= 8 && {
        // power of 8
        let mut v = n;
        while v % 8 == 0 {
            v /= 8;
        }
        v == 1
    });
    let m = n / 8;
    let mut launches = Vec::new();
    let mut tables = Vec::new();
    let mut l = 1i64;
    let mut stage = 0usize;
    const REV: [usize; 8] = [0, 4, 2, 6, 1, 5, 3, 7];
    while l < n {
        let (src, dst) = if stage.is_multiple_of(2) { ("x", "y") } else { ("y", "x") };
        // Stage twiddles w(j·k, 8l) for k = 1..8, flattened [7][m].
        let twr = format!("t{stage}_re");
        let twi = format!("t{stage}_im");
        let mut tr = Vec::with_capacity(7 * m as usize);
        let mut ti = Vec::with_capacity(7 * m as usize);
        for k in 1..8i64 {
            for i in 0..m {
                let tw = w((i % l) * k, 8 * l);
                tr.push(tw.0 as f32);
                ti.push(tw.1 as f32);
            }
        }
        tables.push((
            ArrayLayout::new(&twr, ScalarType::Float, vec![7, m]),
            tr,
        ));
        tables.push((
            ArrayLayout::new(&twi, ScalarType::Float, vec![7, m]),
            ti,
        ));

        let mut body = String::new();
        body.push_str(&format!("    int j = idx % {l};\n"));
        // Load + stage twiddle.
        body.push_str(&format!(
            "    float y0_r = {src}_re[idx];\n    float y0_i = {src}_im[idx];\n"
        ));
        for k in 1..8 {
            let km = k - 1;
            body.push_str(&format!(
                "    float y{k}_r = {twr}[{km}][idx] * {src}_re[idx + {off}] - {twi}[{km}][idx] * {src}_im[idx + {off}];\n",
                off = k as i64 * m
            ));
            body.push_str(&format!(
                "    float y{k}_i = {twr}[{km}][idx] * {src}_im[idx + {off}] + {twi}[{km}][idx] * {src}_re[idx + {off}];\n",
                off = k as i64 * m
            ));
        }
        // Bit-reversed working set.
        for (k, rev) in REV.iter().enumerate() {
            body.push_str(&format!(
                "    float v{k}_r = y{rev}_r;\n    float v{k}_i = y{rev}_i;\n"
            ));
        }
        // Level 1.
        for p in (0..8).step_by(2) {
            body.push_str(&format!(
                "    float a{p}_r = v{p}_r + v{q}_r;\n    float a{p}_i = v{p}_i + v{q}_i;\n    float a{q}_r = v{p}_r - v{q}_r;\n    float a{q}_i = v{p}_i - v{q}_i;\n",
                q = p + 1
            ));
        }
        // Level 2.
        for g in (0..8).step_by(4) {
            for o in 0..2 {
                let tw = w(o as i64, 4);
                let p = g + o;
                let q = g + o + 2;
                emit_cmul(
                    &format!("t{q}"),
                    tw,
                    &format!("a{q}_r"),
                    &format!("a{q}_i"),
                    simplify,
                    &mut body,
                );
                body.push_str(&format!(
                    "    float b{p}_r = a{p}_r + t{q}_r;\n    float b{p}_i = a{p}_i + t{q}_i;\n    float b{q}_r = a{p}_r - t{q}_r;\n    float b{q}_i = a{p}_i - t{q}_i;\n"
                ));
            }
        }
        // Level 3.
        for o in 0..4 {
            let tw = w(o as i64, 8);
            let p = o;
            let q = o + 4;
            emit_cmul(
                &format!("u{q}"),
                tw,
                &format!("b{q}_r"),
                &format!("b{q}_i"),
                simplify,
                &mut body,
            );
            body.push_str(&format!(
                "    float z{p}_r = b{p}_r + u{q}_r;\n    float z{p}_i = b{p}_i + u{q}_i;\n    float z{q}_r = b{p}_r - u{q}_r;\n    float z{q}_i = b{p}_i - u{q}_i;\n"
            ));
        }
        // Scatter.
        for k in 0..8i64 {
            body.push_str(&format!(
                "    {dst}_re[8 * idx - 7 * j + {off}] = z{k}_r;\n    {dst}_im[8 * idx - 7 * j + {off}] = z{k}_i;\n",
                off = k * l
            ));
        }
        let src_code = format!(
            "#pragma gpgpu domain {m}\n__global__ void fft8_s{stage}(float {src}_re[{n}], float {src}_im[{n}], float {dst}_re[{n}], float {dst}_im[{n}], float {twr}[7][{m}], float {twi}[7][{m}]) {{\n{body}}}\n"
        );
        let kernel = parse_kernel(&src_code).expect("generated radix-8 stage parses");
        let block = m.clamp(1, 128);
        launches.push(KernelLaunch {
            kernel,
            launch: LaunchConfig::one_d((m / block) as u32, block as u32),
            extra_buffers: Vec::new(),
        });
        l *= 8;
        stage += 1;
    }
    let result_in = if stage.is_multiple_of(2) { "x" } else { "y" };
    (
        launches,
        Workspace {
            data: data_layouts(n),
            tables,
            result_in,
        },
    )
}

/// The compiler-merged variant (generic 2-point math inside, §7's 41-GFLOPS
/// point).
pub fn merged2_program(n: i64) -> (Vec<KernelLaunch>, Workspace) {
    radix8_like_program(n, false)
}

/// The hand-written naive 8-point variant (§7's 44-GFLOPS point).
pub fn radix8_program(n: i64) -> (Vec<KernelLaunch>, Workspace) {
    radix8_like_program(n, true)
}

/// FFT flops by the 5·n·log₂n convention used in GPU FFT papers.
pub fn fft_flops(n: i64) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[C], b: &[C], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.0 - y.0).abs() < tol && (x.1 - y.1).abs() < tol,
                "at {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn impulse_and_random(n: usize) -> Vec<C> {
        (0..n)
            .map(|i| {
                let x = ((i * 37 + 11) % 97) as f64 / 97.0 - 0.5;
                let y = ((i * 61 + 29) % 89) as f64 / 89.0 - 0.5;
                (x, y)
            })
            .collect()
    }

    #[test]
    fn dft8_matches_direct() {
        let x = impulse_and_random(8);
        let want = dft(&x);
        let got = dft8([x[0], x[1], x[2], x[3], x[4], x[5], x[6], x[7]]);
        close(&got, &want, 1e-9);
    }

    #[test]
    fn stockham_radix2_matches_dft() {
        for n in [2usize, 4, 16, 64, 256] {
            let x = impulse_and_random(n);
            close(&fft_host(&x), &dft(&x), 1e-6 * n as f64);
        }
    }

    #[test]
    fn stockham_radix8_matches_dft() {
        for n in [8usize, 64, 512] {
            let x = impulse_and_random(n);
            close(&fft8_host(&x), &dft(&x), 1e-6 * n as f64);
        }
    }

    #[test]
    fn programs_build_for_paper_size() {
        let (l2, ws2) = radix2_program(1 << 8);
        assert_eq!(l2.len(), 8);
        assert_eq!(ws2.result_in, "x");
        let (l8, ws8) = radix8_program(1 << 9); // 8^3
        assert_eq!(l8.len(), 3);
        assert_eq!(ws8.result_in, "y");
        let (lm, _) = merged2_program(1 << 9);
        assert_eq!(lm.len(), 3);
    }

    #[test]
    fn merged_variant_has_more_multiplies_than_simplified() {
        // Count multiply tokens in the generated sources.
        let muls = |launches: &[KernelLaunch]| -> usize {
            launches
                .iter()
                .map(|l| {
                    gpgpu_ast::print_kernel(&l.kernel, gpgpu_ast::PrintOptions::default())
                        .matches('*')
                        .count()
                })
                .sum()
        };
        let (merged, _) = merged2_program(512);
        let (simplified, _) = radix8_program(512);
        assert!(muls(&merged) > muls(&simplified));
    }
}
