#![warn(missing_docs)]

//! # gpgpu-kernels
//!
//! The benchmark suite of the paper's evaluation (Table 1): naive MiniCUDA
//! kernels for the ten scientific/media-processing algorithms, the
//! complex-number reduction of Figure 14, the FFT variants of §7, and the
//! hand-tuned comparators standing in for CUBLAS 2.2 and the CUDA SDK
//! transpose.
//!
//! Each [`Benchmark`] bundles the naive source with its size bindings and
//! the flop/byte formulas the figures report:
//!
//! ```
//! use gpgpu_kernels::{table1, Benchmark};
//!
//! let suite = table1();
//! assert_eq!(suite.len(), 10);
//! let mm = gpgpu_kernels::by_name("mm").unwrap();
//! let kernel = mm.kernel();
//! assert_eq!(kernel.name, "mm");
//! ```

pub mod fft;
pub mod naive;
pub mod reference;
pub mod tuned;

use gpgpu_analysis::Bindings;
use gpgpu_ast::{parse_kernel, Kernel};

/// One benchmark of the evaluation suite.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name as used in the paper's figures.
    pub name: &'static str,
    /// What the algorithm computes.
    pub description: &'static str,
    /// The naive kernel source (the compiler input).
    pub source: &'static str,
    /// Lines of code of the naive kernel, as reported in Table 1.
    pub loc: u32,
    /// Default problem-size selector (matrix edge / vector length).
    pub default_size: i64,
    /// The sizes the paper sweeps.
    pub sizes: &'static [i64],
    /// Whether a CUBLAS comparator exists (Figure 13's six algorithms).
    pub in_cublas: bool,
    /// Builds the size bindings for a problem-size selector.
    pub bind: fn(i64) -> Bindings,
    /// Floating-point operations for a problem size.
    pub flops: fn(i64) -> f64,
    /// Application-level bytes moved (for effective-bandwidth figures).
    pub bytes: fn(i64) -> f64,
}

impl Benchmark {
    /// Parses the naive kernel.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source is invalid — a bug caught by tests.
    pub fn kernel(&self) -> Kernel {
        parse_kernel(self.source).expect("embedded benchmark source parses")
    }

    /// The bindings for this benchmark's default size.
    pub fn default_bindings(&self) -> Bindings {
        (self.bind)(self.default_size)
    }
}

/// The ten algorithms of Table 1, in the paper's order.
pub fn table1() -> Vec<&'static Benchmark> {
    vec![
        &naive::TMV,
        &naive::MM,
        &naive::MV,
        &naive::VV,
        &naive::RD,
        &naive::STRSM,
        &naive::CONV,
        &naive::TP,
        &naive::DEMOSAIC,
        &naive::IMREGIONMAX,
    ]
}

/// Looks a benchmark up by its figure name (including `rdc`, the
/// complex-number reduction of Figure 14).
pub fn by_name(name: &str) -> Option<&'static Benchmark> {
    table1()
        .into_iter()
        .chain(std::iter::once(&naive::RDC))
        .find(|b| b.name == name)
}

/// Helper used by the `bind` functions.
pub(crate) fn bindings(pairs: &[(&str, i64)]) -> Bindings {
    pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_parse() {
        for b in table1() {
            let k = b.kernel();
            assert_eq!(k.name, b.name, "benchmark name mismatch");
        }
        naive::RDC.kernel();
    }

    #[test]
    fn loc_counts_are_declared() {
        // Table 1 credibility: naive kernels are tiny.
        for b in table1() {
            assert!(b.loc >= 1 && b.loc <= 30, "{}: {}", b.name, b.loc);
            let body_lines = b.source.lines().filter(|l| !l.trim().is_empty()).count();
            assert!(body_lines <= 40, "{} too long: {body_lines}", b.name);
        }
    }

    #[test]
    fn six_benchmarks_have_cublas_comparators() {
        let n = table1().iter().filter(|b| b.in_cublas).count();
        assert_eq!(n, 6);
    }

    #[test]
    fn default_bindings_resolve_all_dims() {
        for b in table1() {
            let k = b.kernel();
            let bindings = b.default_bindings();
            for p in k.array_params() {
                assert!(
                    k.resolve_dims(&p.name, &bindings).is_some(),
                    "{}: array {} unresolved",
                    b.name,
                    p.name
                );
            }
        }
    }

    #[test]
    fn by_name_finds_everything() {
        for b in table1() {
            assert!(by_name(b.name).is_some());
        }
        assert!(by_name("rdc").is_some());
        assert!(by_name("nope").is_none());
    }
}
