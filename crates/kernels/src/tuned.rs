//! Hand-tuned comparator kernels standing in for NVIDIA CUBLAS 2.2 and the
//! CUDA SDK transpose samples (paper §6.2, Figures 13, 15, 16).
//!
//! These are written the way the era's library code was written — tiled
//! shared-memory matrix multiply in the Volkov style, tile-staged `sgemv`,
//! two-stage reduction — with the era's known weak spots left in: no
//! broadcast-vector staging in the BLAS-2 kernels, conservative block
//! sizes, no partition-camping fix (except `sdk_new`'s diagonal
//! reordering), and the un-padded shared tile of the original SDK
//! transpose.

use crate::bindings;
use gpgpu_analysis::Bindings;
use gpgpu_ast::{parse_kernel, Kernel, LaunchConfig};
use gpgpu_core::KernelLaunch;

/// A hand-tuned comparator program.
#[derive(Debug, Clone)]
pub struct TunedKernel {
    /// Comparator name (`cublas_mm`, `sdk_new`, …).
    pub name: &'static str,
    /// Builds the launch sequence for a problem-size selector.
    pub program: fn(i64) -> Vec<KernelLaunch>,
    /// Size bindings for the selector.
    pub bind: fn(i64) -> Bindings,
}

fn parse(src: &str) -> Kernel {
    parse_kernel(src).expect("embedded tuned kernel parses")
}

/// CUBLAS-2.2-style SGEMM: 256-thread blocks, a 16-row shared tile of `a`
/// per block, 16 outputs per thread along Y, the `b` column load shared
/// through a register (the Volkov scheme the paper says CUBLAS 2.2 adopted).
pub fn cublas_mm(n: i64) -> Vec<KernelLaunch> {
    const R: usize = 16;
    let mut body = String::new();
    for j in 0..R {
        body.push_str(&format!("    float sum_{j} = 0.0f;\n"));
    }
    body.push_str("    for (int i = 0; i < w; i = i + 16) {\n");
    for j in 0..R {
        body.push_str(&format!("        __shared__ float sa_{j}[16];\n"));
    }
    body.push_str("        if (tidx < 16) {\n");
    for j in 0..R {
        body.push_str(&format!(
            "            sa_{j}[tidx] = a[idy * 16 + {j}][i + tidx];\n"
        ));
    }
    body.push_str("        }\n        __syncthreads();\n");
    body.push_str("        for (int k = 0; k < 16; k = k + 1) {\n");
    body.push_str("            float r0 = b[i + k][idx];\n");
    for j in 0..R {
        body.push_str(&format!(
            "            sum_{j} = sum_{j} + sa_{j}[k] * r0;\n"
        ));
    }
    body.push_str("        }\n        __syncthreads();\n    }\n");
    for j in 0..R {
        body.push_str(&format!("    c[idy * 16 + {j}][idx] = sum_{j};\n"));
    }
    let src = format!(
        "__global__ void cublas_mm(float a[n][w], float b[w][n], float c[n][n], int n, int w) {{\n{body}}}\n"
    );
    let kernel = parse_kernel(&src).expect("generated SGEMM parses");
    vec![KernelLaunch {
        kernel,
        launch: LaunchConfig {
            grid_x: (n / 256) as u32,
            grid_y: (n / 16) as u32,
            block_x: 256,
            block_y: 1,
        },
        extra_buffers: Vec::new(),
    }]
}

/// CUBLAS-style SGEMV: 64-thread blocks, per-half-warp tile staging for
/// the matrix, but the vector read straight from global memory every
/// iteration (no broadcast staging, no partition fix).
pub fn cublas_mv(n: i64) -> Vec<KernelLaunch> {
    let kernel = parse(
        r#"__global__ void cublas_mv(float a[n][w], float b[w], float c[n], int n, int w) {
            float sum = 0.0f;
            for (int i = 0; i < w; i = i + 16) {
                __shared__ float ta[64][17];
                int lane = tidx % 16;
                for (int l2 = 0; l2 < 16; l2 = l2 + 1) {
                    ta[tidx - lane + l2][lane] = a[idx - lane + l2][i + lane];
                }
                __syncthreads();
                for (int k = 0; k < 16; k = k + 1) {
                    sum += ta[tidx][k] * b[i + k];
                }
                __syncthreads();
            }
            c[idx] = sum;
        }"#,
    );
    vec![KernelLaunch {
        kernel,
        launch: LaunchConfig::one_d((n / 64) as u32, 64),
        extra_buffers: Vec::new(),
    }]
}

/// CUBLAS-style transposed SGEMV: already coalesced on the matrix, the
/// vector broadcast unstaged.
pub fn cublas_tmv(n: i64) -> Vec<KernelLaunch> {
    let kernel = parse(
        r#"__global__ void cublas_tmv(float a[w][n], float b[w], float c[n], int n, int w) {
            float sum = 0.0f;
            for (int i = 0; i < w; i = i + 1) {
                sum += a[i][idx] * b[i];
            }
            c[idx] = sum;
        }"#,
    );
    vec![KernelLaunch {
        kernel,
        launch: LaunchConfig::one_d((n / 128) as u32, 128),
        extra_buffers: Vec::new(),
    }]
}

/// Element-wise vector product with the era's conservative 64-thread blocks.
pub fn cublas_vv(n: i64) -> Vec<KernelLaunch> {
    let kernel = parse(
        r#"__global__ void cublas_vv(float a[n], float b[n], float c[n], int n) {
            c[idx] = a[idx] * b[idx];
        }"#,
    );
    vec![KernelLaunch {
        kernel,
        launch: LaunchConfig::one_d((n / 64) as u32, 64),
        extra_buffers: Vec::new(),
    }]
}

/// CUBLAS-style SASUM/SUM: the same two-stage shared-memory reduction the
/// compiler produces, at a slightly different work-per-thread point — the
/// paper reports the compiled kernel within 2% of CUBLAS here.
pub fn cublas_rd(len: i64) -> Vec<KernelLaunch> {
    let naive = crate::naive::RD.kernel();
    let state = gpgpu_transform::PipelineState::new(naive, bindings(&[("len", len)]));
    let elems = (len / (256 * 256)).max(1) * 2;
    let rw = gpgpu_transform::reduction::rewrite_reduction(&state, Some(elems))
        .or_else(|| gpgpu_transform::reduction::rewrite_reduction(&state, None))
        .expect("reduction pattern matches the naive rd kernel");
    let partial = gpgpu_analysis::ArrayLayout::new(
        &rw.partials,
        gpgpu_ast::ScalarType::Float,
        vec![gpgpu_transform::reduction::PARTIALS],
    );
    vec![
        KernelLaunch {
            kernel: rw.stage1,
            launch: rw.stage1_launch,
            extra_buffers: vec![partial.clone()],
        },
        KernelLaunch {
            kernel: rw.stage2,
            launch: rw.stage2_launch,
            extra_buffers: vec![partial],
        },
    ]
}

/// CUBLAS-style STRSM: per-column forward substitution with the row of `l`
/// read from global memory (no staging).
pub fn cublas_strsm(n: i64) -> Vec<KernelLaunch> {
    let kernel = parse(
        r#"#pragma gpgpu output x
        __global__ void cublas_strsm(float l[n][n], float b2[n][n], float x[n][n], int n) {
            for (int r = 0; r < n; r = r + 1) {
                float s = b2[r][idx];
                for (int k = 0; k < n; k = k + 1) {
                    if (k < r) {
                        s = s - l[r][k] * x[k][idx];
                    }
                }
                x[r][idx] = s / l[r][r];
            }
        }"#,
    );
    vec![KernelLaunch {
        kernel,
        launch: LaunchConfig::one_d((n / 64) as u32, 64),
        extra_buffers: Vec::new(),
    }]
}

/// The original CUDA SDK transpose: shared tile, un-padded (16-way bank
/// conflicts on the transposed read), no diagonal reordering.
pub fn sdk_prev(n: i64) -> Vec<KernelLaunch> {
    let kernel = parse(
        r#"__global__ void sdk_prev(float a[n][n], float c[n][n], int n) {
            __shared__ float tile[16][16];
            tile[tidy][tidx] = a[idy][idx];
            __syncthreads();
            c[idx - tidx + tidy][idy - tidy + tidx] = tile[tidx][tidy];
        }"#,
    );
    vec![KernelLaunch {
        kernel,
        launch: square_16(n),
        extra_buffers: Vec::new(),
    }]
}

/// Ruetsch & Micikevicius' improved SDK transpose: diagonal block
/// reordering on top of the tile (the paper's reference \[12\]).
pub fn sdk_new(n: i64) -> Vec<KernelLaunch> {
    let kernel = parse(
        r#"__global__ void sdk_new(float a[n][n], float c[n][n], int n) {
            int bx = (bidx + bidy) % gridDimX;
            int by = bidx;
            __shared__ float tile[16][16];
            tile[tidy][tidx] = a[by * 16 + tidy][bx * 16 + tidx];
            __syncthreads();
            c[bx * 16 + tidy][by * 16 + tidx] = tile[tidx][tidy];
        }"#,
    );
    vec![KernelLaunch {
        kernel,
        launch: square_16(n),
        extra_buffers: Vec::new(),
    }]
}

fn square_16(n: i64) -> LaunchConfig {
    LaunchConfig {
        grid_x: (n / 16) as u32,
        grid_y: (n / 16) as u32,
        block_x: 16,
        block_y: 16,
    }
}

/// The Figure 13 comparators, keyed by benchmark name.
pub fn cublas_for(name: &str, size: i64) -> Option<Vec<KernelLaunch>> {
    Some(match name {
        "mm" => cublas_mm(size),
        "mv" => cublas_mv(size),
        "tmv" => cublas_tmv(size),
        "vv" => cublas_vv(size),
        "rd" => cublas_rd(size),
        // The complex reduction holds 2·size floats (re/im interleaved);
        // CublasScasum-style comparators process the full stream.
        "rdc" => cublas_rd(2 * size),
        "strsm" => cublas_strsm(size),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_comparators_build() {
        for (name, size) in [
            ("mm", 512i64),
            ("mv", 512),
            ("tmv", 512),
            ("vv", 4096),
            ("rd", 1 << 20),
            ("strsm", 512),
        ] {
            let prog = cublas_for(name, size).unwrap();
            assert!(!prog.is_empty(), "{name}");
        }
        assert!(cublas_for("tp", 512).is_none());
        sdk_prev(512);
        sdk_new(512);
    }

    #[test]
    fn cublas_mm_has_volkov_shape() {
        let prog = cublas_mm(2048);
        let k = &prog[0].kernel;
        assert_eq!(k.shared_decls().len(), 16);
        assert_eq!(prog[0].launch.threads_per_block(), 256);
        assert_eq!(prog[0].launch.grid_y, 128);
    }

    #[test]
    fn cublas_rd_is_two_stage() {
        let prog = cublas_rd(1 << 22);
        assert_eq!(prog.len(), 2);
        assert_eq!(prog[0].launch.block_x, 256);
    }

    #[test]
    fn sdk_prev_tile_is_unpadded() {
        let prog = sdk_prev(1024);
        let decls = prog[0].kernel.shared_decls();
        assert_eq!(decls[0].2, &[16, 16]);
    }
}
