#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

//! # gpgpu-fusion
//!
//! Dependence-checked producer→consumer kernel fusion (related work:
//! Filipovič et al., *Optimizing CUDA Code By Kernel Fusion — Application
//! on BLAS*). The paper's compiler optimizes one kernel at a time; real
//! deployments compile *pipelines* where an intermediate array written by
//! one kernel and read by the next round-trips through global memory. This
//! crate plans and performs the fusion that keeps such intermediates
//! thread-local:
//!
//! * **Planner** ([`plan_fusion`]) — proves legality from the kernels
//!   themselves (matching iteration domains via [`gpgpu_core::infer_domain`],
//!   a single producer-output array feeding the consumer with no other
//!   consumers, a dependence-checked element mapping) and within the
//!   resource limits of `gpgpu_analysis::estimate_resources`, then asks the
//!   configured cost model whether the fusion is profitable. Refusals carry
//!   a structured [`RejectReason`] — callers degrade to separate compiles,
//!   never an error.
//! * **Transform** ([`FusionPass`]) — an ordinary [`gpgpu_transform::Pass`]
//!   (stage `fusion`) that rewrites the sequential round-trip form into the
//!   fused kernel. Two forwarding modes: `register` (identical element
//!   mapping; the intermediate becomes a thread-local scalar) and `inline`
//!   (constant-offset window reads; the producer expression is recomputed
//!   at each offset). Shared-memory staging of the fused kernel's *inputs*
//!   then falls out of the existing coalescing conversion, with the barrier
//!   discipline the sanitizer already checks.
//! * **Driver** ([`compile_fused`]) — runs the pass under the PR 3 pass
//!   manager, sends the fused kernel through the full single-kernel
//!   pipeline (coalescing, merge exploration, prefetch, camping, the
//!   tuning store keyed by the fused kernel's combined shape), and then
//!   verifies the result element-for-element against the *round-trip
//!   reference* — the two members spliced around a grid-wide barrier,
//!   which is observationally the sequential unfused execution.

mod driver;
mod plan;
mod transform;

pub use driver::{compile_fused, compile_fused_sanitized, FusedCompile, FusionError};
pub use plan::{plan_fusion, FusionMode, FusionPlan, RejectReason};
pub use transform::FusionPass;
