//! Fusion legality and profitability analysis.

use crate::transform::{fused_kernel, round_trip_kernel};
use gpgpu_analysis::estimate_resources;
use gpgpu_ast::{Builtin, Expr, Kernel, LValue, Stmt};
use gpgpu_core::{infer_domain, naive_compiled, CompileOptions, Domain};
use std::collections::BTreeSet;
use std::fmt;

/// How the intermediate is forwarded from producer to consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionMode {
    /// Identical element mapping: the producer's `t[idx]` value stays in a
    /// thread-local register and the consumer reads it there.
    Register,
    /// Constant-offset window mapping: each consumer read `t[idx + k]` is
    /// replaced by the producer's (straight-line) defining expression,
    /// recomputed at that offset.
    Inline,
}

impl FusionMode {
    /// Stable name (`register` or `inline`).
    pub fn as_str(&self) -> &'static str {
        match self {
            FusionMode::Register => "register",
            FusionMode::Inline => "inline",
        }
    }
}

/// Why a fusion group was refused. Every variant degrades gracefully: the
/// members compile separately, and the slug/detail pair feeds the
/// `fusion-rejected` trace event, the `--report` block, and the service
/// metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The fusion stage is gated off (`--no-fusion`).
    StageDisabled,
    /// No producer output array is read by the consumer.
    NoDataflow,
    /// The intermediate has consumers (or producers) beyond the simple
    /// producer-writes / consumer-reads dataflow — fusing would change
    /// what some other reader observes.
    MultiConsumer(String),
    /// The members' iteration domains do not line up for the mapping.
    DomainMismatch(String),
    /// The element mapping between producer writes and consumer reads is
    /// outside the supported (identity / constant-offset) forms.
    UnsupportedMapping(String),
    /// A member uses `__gsync()` — grid-wide phases cannot be fused.
    GlobalSync,
    /// The fused kernel exceeds per-thread register or per-block shared
    /// memory limits of the target.
    ResourceOverflow(String),
    /// Legal, but the cost model predicts the fused kernel is slower than
    /// the member sequence.
    Unprofitable {
        /// Estimated member-sequence time, milliseconds.
        members_time_ms: f64,
        /// Estimated fused time, milliseconds.
        fused_time_ms: f64,
    },
    /// The cost model could not estimate a member or the fused kernel.
    CostModel(String),
}

impl RejectReason {
    /// Stable slug for metrics and trace events.
    pub fn slug(&self) -> &'static str {
        match self {
            RejectReason::StageDisabled => "stage-disabled",
            RejectReason::NoDataflow => "no-dataflow",
            RejectReason::MultiConsumer(_) => "multi-consumer",
            RejectReason::DomainMismatch(_) => "domain-mismatch",
            RejectReason::UnsupportedMapping(_) => "unsupported-mapping",
            RejectReason::GlobalSync => "gsync-unsupported",
            RejectReason::ResourceOverflow(_) => "resource-overflow",
            RejectReason::Unprofitable { .. } => "unprofitable",
            RejectReason::CostModel(_) => "cost-model-error",
        }
    }

    /// Human-readable specifics.
    pub fn detail(&self) -> String {
        match self {
            RejectReason::StageDisabled => "the fusion stage is disabled".into(),
            RejectReason::NoDataflow => {
                "no producer output array is read by the consumer".into()
            }
            RejectReason::MultiConsumer(d)
            | RejectReason::DomainMismatch(d)
            | RejectReason::UnsupportedMapping(d)
            | RejectReason::ResourceOverflow(d)
            | RejectReason::CostModel(d) => d.clone(),
            RejectReason::GlobalSync => {
                "a member uses __gsync(); grid-wide phases cannot be fused".into()
            }
            RejectReason::Unprofitable {
                members_time_ms,
                fused_time_ms,
            } => format!(
                "fused naive estimate {fused_time_ms:.4} ms is not faster than the \
                 member sequence {members_time_ms:.4} ms"
            ),
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.slug(), self.detail())
    }
}

/// A proven-legal, predicted-profitable fusion of one producer→consumer
/// pair, carrying both kernels the transform and the oracle need.
#[derive(Debug, Clone)]
pub struct FusionPlan {
    /// Forwarding mode.
    pub mode: FusionMode,
    /// The eliminated intermediate array.
    pub intermediate: String,
    /// The fused kernel (naive form; [`crate::compile_fused`] sends it
    /// through the full pipeline).
    pub fused: Kernel,
    /// The round-trip reference: producer body, grid-wide barrier, then the
    /// (domain-guarded) consumer body, with the intermediate still a real
    /// array parameter. Observationally the sequential unfused execution —
    /// the differential oracle compares the fused result against it.
    pub reference: Kernel,
    /// The fused launch domain.
    pub domain: Domain,
    /// Global-memory bytes the cost model says the fusion saves (member
    /// traffic minus fused traffic, clamped at zero).
    pub bytes_saved: u64,
    /// Estimated naive member-sequence time, milliseconds.
    pub members_time_ms: f64,
    /// Estimated naive fused time, milliseconds.
    pub fused_time_ms: f64,
}

/// Arrays read anywhere in `body` (array names appearing in r-value
/// `Index` expressions, including index subexpressions of writes).
fn read_arrays(body: &[Stmt], out: &mut BTreeSet<String>) {
    fn scan(e: &Expr, out: &mut BTreeSet<String>) {
        e.walk(&mut |sub| {
            if let Expr::Index { array, .. } = sub {
                out.insert(array.clone());
            }
        });
    }
    for stmt in body {
        match stmt {
            Stmt::DeclScalar { init, .. } => {
                if let Some(e) = init {
                    scan(e, out);
                }
            }
            Stmt::DeclShared { .. } | Stmt::SyncThreads | Stmt::GlobalSync => {}
            Stmt::Assign { lhs, rhs } => {
                scan(rhs, out);
                if let LValue::Index { indices, .. } = lhs {
                    for i in indices {
                        scan(i, out);
                    }
                }
            }
            Stmt::For(fl) => {
                scan(&fl.init, out);
                scan(&fl.bound, out);
                read_arrays(&fl.body, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                scan(cond, out);
                read_arrays(then_body, out);
                read_arrays(else_body, out);
            }
            Stmt::CallStmt(_, args) => {
                for a in args {
                    scan(a, out);
                }
            }
        }
    }
}

/// Arrays written anywhere in `body`.
fn written_arrays(body: &[Stmt], out: &mut BTreeSet<String>) {
    for stmt in body {
        match stmt {
            Stmt::Assign {
                lhs: LValue::Index { array, .. },
                ..
            } => {
                out.insert(array.clone());
            }
            Stmt::For(fl) => written_arrays(&fl.body, out),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                written_arrays(then_body, out);
                written_arrays(else_body, out);
            }
            _ => {}
        }
    }
}

/// One write site of the intermediate in the producer.
struct WriteSite {
    top_level: bool,
    indices: Vec<Expr>,
}

fn collect_writes(body: &[Stmt], t: &str, top: bool, out: &mut Vec<WriteSite>) {
    for stmt in body {
        match stmt {
            Stmt::Assign {
                lhs: LValue::Index { array, indices },
                ..
            } if array == t => out.push(WriteSite {
                top_level: top,
                indices: indices.clone(),
            }),
            Stmt::For(fl) => collect_writes(&fl.body, t, false, out),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_writes(then_body, t, false, out);
                collect_writes(else_body, t, false, out);
            }
            _ => {}
        }
    }
}

/// A consumer read of the intermediate: its index expressions plus the
/// enclosing loop context (loop variable → concrete value range, when
/// enumerable).
pub(crate) struct ReadSite {
    pub indices: Vec<Expr>,
    pub loops: Vec<(String, Option<(i64, i64)>)>,
}

fn collect_reads(
    body: &[Stmt],
    t: &str,
    loops: &mut Vec<(String, Option<(i64, i64)>)>,
    out: &mut Vec<ReadSite>,
) {
    let scan = |e: &Expr, loops: &[(String, Option<(i64, i64)>)], out: &mut Vec<ReadSite>| {
        e.walk(&mut |sub| {
            if let Expr::Index { array, indices } = sub {
                if array == t {
                    out.push(ReadSite {
                        indices: indices.clone(),
                        loops: loops.to_vec(),
                    });
                }
            }
        });
    };
    for stmt in body {
        match stmt {
            Stmt::DeclScalar { init, .. } => {
                if let Some(e) = init {
                    scan(e, loops, out);
                }
            }
            Stmt::DeclShared { .. } | Stmt::SyncThreads | Stmt::GlobalSync => {}
            Stmt::Assign { lhs, rhs } => {
                scan(rhs, loops, out);
                if let LValue::Index { indices, .. } = lhs {
                    for i in indices {
                        scan(i, loops, out);
                    }
                }
            }
            Stmt::For(fl) => {
                scan(&fl.init, loops, out);
                scan(&fl.bound, loops, out);
                let range = fl
                    .enumerate_values(4096)
                    .and_then(|vs| match (vs.iter().min(), vs.iter().max()) {
                        (Some(&lo), Some(&hi)) => Some((lo, hi)),
                        _ => None,
                    });
                loops.push((fl.var.clone(), range));
                collect_reads(&fl.body, t, loops, out);
                loops.pop();
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                scan(cond, loops, out);
                collect_reads(then_body, t, loops, out);
                collect_reads(else_body, t, loops, out);
            }
            Stmt::CallStmt(_, args) => {
                for a in args {
                    scan(a, loops, out);
                }
            }
        }
    }
}

/// The identity index form for a given dimensionality: `[idx]` or
/// `[idy][idx]`.
fn identity_indices(dims: usize) -> Option<Vec<Expr>> {
    match dims {
        1 => Some(vec![Expr::Builtin(Builtin::IdX)]),
        2 => Some(vec![Expr::Builtin(Builtin::IdY), Expr::Builtin(Builtin::IdX)]),
        _ => None,
    }
}

/// Bounds of `e − idx` as a constant interval, requiring exactly one `idx`
/// occurrence with coefficient 1; loop variables contribute their
/// enumerable value range. `None` when `e` is outside that affine form.
fn offset_range(e: &Expr, loops: &[(String, Option<(i64, i64)>)]) -> Option<(i64, i64)> {
    // (idx occurrences, lo, hi) of the expression's value minus idx*count.
    fn linear(
        e: &Expr,
        loops: &[(String, Option<(i64, i64)>)],
    ) -> Option<(i64, i64, i64)> {
        match e {
            Expr::Int(k) => Some((0, *k, *k)),
            Expr::Builtin(Builtin::IdX) => Some((1, 0, 0)),
            Expr::Var(v) => {
                let (_, range) = loops.iter().rev().find(|(name, _)| name == v)?;
                let (lo, hi) = (*range)?;
                Some((0, lo, hi))
            }
            Expr::Binary(op, a, b) => {
                let (ca, la, ha) = linear(a, loops)?;
                let (cb, lb, hb) = linear(b, loops)?;
                match op {
                    gpgpu_ast::BinOp::Add => Some((ca + cb, la + lb, ha + hb)),
                    gpgpu_ast::BinOp::Sub => Some((ca - cb, la - hb, ha - lb)),
                    gpgpu_ast::BinOp::Mul => {
                        // Only constant×range (no idx inside either factor).
                        if ca != 0 || cb != 0 {
                            return None;
                        }
                        if la == ha {
                            let (x, y) = (la * lb, la * hb);
                            Some((0, x.min(y), x.max(y)))
                        } else if lb == hb {
                            let (x, y) = (lb * la, lb * ha);
                            Some((0, x.min(y), x.max(y)))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }
    let (count, lo, hi) = linear(e, loops)?;
    if count != 1 {
        return None;
    }
    Some((lo, hi))
}

/// Checks parameters shared by name between the members for structural
/// agreement (same type and extents); a shared scalar `n` must mean the
/// same size in both kernels for the merged parameter list to be sound.
fn check_shared_params(p: &Kernel, c: &Kernel) -> Result<(), RejectReason> {
    for cp in &c.params {
        if let Some(pp) = p.param(&cp.name) {
            if pp.ty != cp.ty || pp.dims != cp.dims {
                return Err(RejectReason::UnsupportedMapping(format!(
                    "parameter `{}` differs between the members",
                    cp.name
                )));
            }
        }
    }
    Ok(())
}

/// Plans the fusion of `producer` into `consumer`: proves legality, builds
/// the fused and round-trip kernels, checks resource limits, and asks the
/// configured cost model for profitability.
///
/// # Errors
///
/// A structured [`RejectReason`]; callers compile the members separately.
pub fn plan_fusion(
    producer: &Kernel,
    consumer: &Kernel,
    opts: &CompileOptions,
) -> Result<FusionPlan, RejectReason> {
    if producer.uses_global_sync() || consumer.uses_global_sync() {
        return Err(RejectReason::GlobalSync);
    }
    let dp = infer_domain(producer, &opts.bindings).ok_or_else(|| {
        RejectReason::UnsupportedMapping("producer domain is not inferable".into())
    })?;
    let dc = infer_domain(consumer, &opts.bindings).ok_or_else(|| {
        RejectReason::UnsupportedMapping("consumer domain is not inferable".into())
    })?;

    // Dataflow: exactly one producer output feeds the consumer.
    let p_outputs: BTreeSet<String> = producer.output_arrays().into_iter().collect();
    let mut c_reads = BTreeSet::new();
    read_arrays(&consumer.body, &mut c_reads);
    let shared: Vec<&String> = p_outputs.intersection(&c_reads).collect();
    let t = match shared.as_slice() {
        [] => return Err(RejectReason::NoDataflow),
        [one] => (*one).clone(),
        many => {
            return Err(RejectReason::UnsupportedMapping(format!(
                "{} producer outputs feed the consumer ({}); only one intermediate is supported",
                many.len(),
                many.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
            )))
        }
    };

    // No other consumers or producers of the intermediate.
    let mut c_writes = BTreeSet::new();
    written_arrays(&consumer.body, &mut c_writes);
    if c_writes.contains(&t) {
        return Err(RejectReason::MultiConsumer(format!(
            "consumer also writes the intermediate `{t}`"
        )));
    }
    if consumer.output_arrays().contains(&t) {
        return Err(RejectReason::MultiConsumer(format!(
            "intermediate `{t}` is an output of the consumer — it stays live downstream"
        )));
    }
    let mut p_reads = BTreeSet::new();
    read_arrays(&producer.body, &mut p_reads);
    if p_reads.contains(&t) {
        return Err(RejectReason::MultiConsumer(format!(
            "producer reads back the intermediate `{t}`"
        )));
    }
    check_shared_params(producer, consumer)?;

    // Producer write sites of the intermediate.
    let mut writes = Vec::new();
    collect_writes(&producer.body, &t, true, &mut writes);
    let write = match writes.as_slice() {
        [w] if w.top_level => w,
        [_] => {
            return Err(RejectReason::UnsupportedMapping(format!(
                "the producer's write of `{t}` is conditional or inside a loop"
            )))
        }
        ws => {
            return Err(RejectReason::UnsupportedMapping(format!(
                "the producer writes `{t}` at {} sites; exactly one is supported",
                ws.len()
            )))
        }
    };
    let identity = identity_indices(write.indices.len()).ok_or_else(|| {
        RejectReason::UnsupportedMapping(format!(
            "`{t}` is {}-dimensional; only 1-D and 2-D intermediates are supported",
            write.indices.len()
        ))
    })?;
    if write.indices != identity {
        return Err(RejectReason::UnsupportedMapping(format!(
            "the producer writes `{t}` at a non-identity index"
        )));
    }

    // Consumer read sites and the element mapping they induce.
    let mut reads = Vec::new();
    collect_reads(&consumer.body, &t, &mut Vec::new(), &mut reads);
    if reads.is_empty() {
        // `read_arrays` saw it, so this cannot happen; keep the refusal
        // structured rather than panicking if the walkers ever diverge.
        return Err(RejectReason::NoDataflow);
    }
    let all_identity = reads.iter().all(|r| r.indices == identity);

    let mode = if all_identity {
        if dp != dc {
            return Err(RejectReason::DomainMismatch(format!(
                "identity mapping needs equal domains (producer {dp}, consumer {dc})"
            )));
        }
        FusionMode::Register
    } else {
        // Constant-offset window mapping: 1-D only, producer straight-line.
        if write.indices.len() != 1 || dp.is_2d() || dc.is_2d() {
            return Err(RejectReason::UnsupportedMapping(
                "offset reads of a 2-D intermediate are not supported".into(),
            ));
        }
        if producer.body.len() != 1 {
            return Err(RejectReason::UnsupportedMapping(format!(
                "offset reads need a straight-line producer (one statement defining `{t}`)"
            )));
        }
        let expr_ok = match &producer.body[0] {
            Stmt::Assign { rhs, .. } => {
                let mut ok = true;
                rhs.walk(&mut |e| {
                    if let Expr::Builtin(b) = e {
                        if *b != Builtin::IdX {
                            ok = false;
                        }
                    }
                });
                ok
            }
            _ => false,
        };
        if !expr_ok {
            return Err(RejectReason::UnsupportedMapping(
                "the producer expression uses thread coordinates beyond idx; it cannot be \
                 recomputed at an offset"
                    .into(),
            ));
        }
        let mut max_hi = 0i64;
        for r in &reads {
            let (lo, hi) = offset_range(&r.indices[0], &r.loops).ok_or_else(|| {
                RejectReason::UnsupportedMapping(format!(
                    "a consumer read of `{t}` is not idx plus a bounded constant offset"
                ))
            })?;
            if lo < 0 {
                return Err(RejectReason::DomainMismatch(format!(
                    "a consumer read of `{t}` reaches {lo} elements below the producer's domain"
                )));
            }
            max_hi = max_hi.max(hi);
        }
        if dp.x < dc.x + max_hi {
            return Err(RejectReason::DomainMismatch(format!(
                "consumer reads `{t}` up to offset {max_hi} past its domain ({}), but the \
                 producer only computes {} elements",
                dc.x, dp.x
            )));
        }
        FusionMode::Inline
    };

    let fused = fused_kernel(producer, consumer, &t, mode, &dc)
        .map_err(RejectReason::UnsupportedMapping)?;
    let reference = round_trip_kernel(producer, consumer, &t, &dp, &dc)
        .map_err(RejectReason::UnsupportedMapping)?;

    // Combined register/shared pressure of the fused kernel.
    let res = estimate_resources(&fused);
    let m = &opts.machine;
    if res.registers_per_thread > m.max_regs_per_thread {
        return Err(RejectReason::ResourceOverflow(format!(
            "fused kernel needs {} registers/thread; {} allows {}",
            res.registers_per_thread, m.name, m.max_regs_per_thread
        )));
    }
    if res.shared_bytes_per_block > m.shared_per_sm as u64 {
        return Err(RejectReason::ResourceOverflow(format!(
            "fused kernel needs {} shared bytes/block; {} has {}",
            res.shared_bytes_per_block, m.name, m.shared_per_sm
        )));
    }

    // Profitability under the configured cost model: naive member sequence
    // versus the naive fused kernel (the same baseline the paper's speedup
    // figures use; the optimizing pipeline then runs on the fused form).
    let est = |k: &Kernel| {
        naive_compiled(k, opts)
            .map(|c| {
                (
                    c.total_time_ms(),
                    c.per_launch.iter().map(|e| e.stats.global_bytes).sum::<u64>(),
                )
            })
            .map_err(|e| RejectReason::CostModel(format!("{}: {e}", k.name)))
    };
    let (p_ms, p_bytes) = est(producer)?;
    let (c_ms, c_bytes) = est(consumer)?;
    let (f_ms, f_bytes) = est(&fused)?;
    let members_time_ms = p_ms + c_ms;
    let bytes_saved = (p_bytes + c_bytes).saturating_sub(f_bytes);
    // A small tolerance keeps borderline model noise from flapping the
    // decision; the differential oracle still gates correctness.
    if f_ms > members_time_ms * 1.02 {
        return Err(RejectReason::Unprofitable {
            members_time_ms,
            fused_time_ms: f_ms,
        });
    }

    Ok(FusionPlan {
        mode,
        intermediate: t,
        fused,
        reference,
        domain: dc,
        bytes_saved,
        members_time_ms,
        fused_time_ms: f_ms,
    })
}
