//! The fusion transform: building the fused kernel and the round-trip
//! reference, and the [`Pass`] wrapper that rewrites one into the other
//! under the pass manager.

use crate::plan::FusionMode;
use gpgpu_analysis::AnalysisManager;
use gpgpu_ast::{Builtin, Expr, Kernel, LValue, Param, Pragma, Stmt};
use gpgpu_core::Domain;
use gpgpu_transform::{Pass, PassError, PassOutcome, PipelineState};
use std::collections::{BTreeMap, BTreeSet};

/// Names introduced by a kernel body: scalar/shared declarations and loop
/// variables.
fn local_names(body: &[Stmt], out: &mut BTreeSet<String>) {
    for stmt in body {
        match stmt {
            Stmt::DeclScalar { name, .. } | Stmt::DeclShared { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::For(fl) => {
                out.insert(fl.var.clone());
                local_names(&fl.body, out);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                local_names(then_body, out);
                local_names(else_body, out);
            }
            _ => {}
        }
    }
}

/// Applies `f` to every expression root in the body, in place.
fn map_exprs(body: &mut [Stmt], f: &dyn Fn(Expr) -> Expr) {
    let apply = |e: &mut Expr| {
        let old = std::mem::replace(e, Expr::Int(0));
        *e = old.map(f);
    };
    for stmt in body {
        match stmt {
            Stmt::DeclScalar { init, .. } => {
                if let Some(e) = init {
                    apply(e);
                }
            }
            Stmt::DeclShared { .. } | Stmt::SyncThreads | Stmt::GlobalSync => {}
            Stmt::Assign { lhs, rhs } => {
                apply(rhs);
                if let LValue::Index { indices, .. } = lhs {
                    for i in indices {
                        apply(i);
                    }
                }
            }
            Stmt::For(fl) => {
                apply(&mut fl.init);
                apply(&mut fl.bound);
                map_exprs(&mut fl.body, f);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                apply(cond);
                map_exprs(then_body, f);
                map_exprs(else_body, f);
            }
            Stmt::CallStmt(_, args) => {
                for a in args {
                    apply(a);
                }
            }
        }
    }
}

/// Renames every occurrence of the mapped identifiers (declarations, loop
/// variables, scalar references, and array names) in place.
fn rename_idents(body: &mut [Stmt], map: &BTreeMap<String, String>) {
    let rename = |n: &mut String| {
        if let Some(new) = map.get(n.as_str()) {
            *n = new.clone();
        }
    };
    for stmt in body.iter_mut() {
        match stmt {
            Stmt::DeclScalar { name, .. } | Stmt::DeclShared { name, .. } => rename(name),
            Stmt::Assign { lhs, .. } => match lhs {
                LValue::Var(n) | LValue::Field(n, _) => rename(n),
                LValue::Index { array, .. } => rename(array),
            },
            Stmt::For(fl) => {
                rename(&mut fl.var);
                rename_idents(&mut fl.body, map);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                rename_idents(then_body, map);
                rename_idents(else_body, map);
            }
            _ => {}
        }
    }
    map_exprs(body, &|e| match e {
        Expr::Var(n) => match map.get(n.as_str()) {
            Some(new) => Expr::Var(new.clone()),
            None => Expr::Var(n),
        },
        Expr::Index { array, indices } => match map.get(array.as_str()) {
            Some(new) => Expr::Index {
                array: new.clone(),
                indices,
            },
            None => Expr::Index { array, indices },
        },
        other => other,
    });
}

/// A body clone with its local names uniquified against `taken` by a
/// member prefix; the chosen names are added to `taken`.
fn renamed_body(body: &[Stmt], member: &str, taken: &mut BTreeSet<String>) -> Vec<Stmt> {
    let mut locals = BTreeSet::new();
    local_names(body, &mut locals);
    let mut map = BTreeMap::new();
    for name in locals {
        if taken.contains(&name) {
            let mut i = 0u32;
            let fresh = loop {
                let candidate = if i == 0 {
                    format!("{member}_{name}")
                } else {
                    format!("{member}{i}_{name}")
                };
                if !taken.contains(&candidate) {
                    break candidate;
                }
                i += 1;
            };
            taken.insert(fresh.clone());
            map.insert(name, fresh);
        } else {
            taken.insert(name);
        }
    }
    let mut out = body.to_vec();
    if !map.is_empty() {
        rename_idents(&mut out, &map);
    }
    out
}

/// A name not used anywhere in `taken`, derived from `base`.
fn fresh_name(base: &str, taken: &mut BTreeSet<String>) -> String {
    let mut i = 0u32;
    loop {
        let candidate = if i == 0 {
            base.to_string()
        } else {
            format!("{base}{i}")
        };
        if !taken.contains(&candidate) {
            taken.insert(candidate.clone());
            return candidate;
        }
        i += 1;
    }
}

/// The merged parameter list: producer parameters first, then consumer
/// parameters not already present, with `skip` (the intermediate) dropped
/// when requested.
fn merged_params(p: &Kernel, c: &Kernel, skip: Option<&str>) -> Vec<Param> {
    let mut out: Vec<Param> = Vec::new();
    for param in p.params.iter().chain(c.params.iter()) {
        if Some(param.name.as_str()) == skip {
            continue;
        }
        if out.iter().all(|q| q.name != param.name) {
            out.push(param.clone());
        }
    }
    out
}

/// Output pragma of the combined kernel: producer outputs minus the
/// intermediate, then consumer outputs.
fn merged_outputs(p: &Kernel, c: &Kernel, t: &str) -> Vec<String> {
    let mut out: Vec<String> = p.output_arrays().into_iter().filter(|a| a != t).collect();
    for o in c.output_arrays() {
        if !out.contains(&o) {
            out.push(o);
        }
    }
    out
}

/// Size pragmas of both members, merged; a name bound to two different
/// values is a structural conflict.
fn merged_sizes(p: &Kernel, c: &Kernel) -> Result<Vec<Pragma>, String> {
    let mut sizes: BTreeMap<String, i64> = BTreeMap::new();
    for pragma in p.pragmas.iter().chain(c.pragmas.iter()) {
        if let Pragma::Size(name, value) = pragma {
            if let Some(prev) = sizes.insert(name.clone(), *value) {
                if prev != *value {
                    return Err(format!(
                        "size pragma `{name}` differs between the members ({prev} vs {value})"
                    ));
                }
            }
        }
    }
    Ok(sizes
        .into_iter()
        .map(|(name, value)| Pragma::Size(name, value))
        .collect())
}

/// Every name a member pair mentions (parameters and locals of both) —
/// the collision universe for renaming.
fn taken_names(p: &Kernel, c: &Kernel) -> BTreeSet<String> {
    let mut taken: BTreeSet<String> = BTreeSet::new();
    for param in p.params.iter().chain(c.params.iter()) {
        taken.insert(param.name.clone());
    }
    local_names(&p.body, &mut taken);
    local_names(&c.body, &mut taken);
    taken
}

/// Builds the fused kernel: the producer's computation feeding the
/// consumer's without the intermediate array.
///
/// # Errors
///
/// A human-readable structural conflict (the planner maps it to
/// `unsupported-mapping`).
pub(crate) fn fused_kernel(
    p: &Kernel,
    c: &Kernel,
    t: &str,
    mode: FusionMode,
    dc: &Domain,
) -> Result<Kernel, String> {
    let mut taken = taken_names(p, c);
    let mut body = Vec::new();
    match mode {
        FusionMode::Register => {
            let val = fresh_name(&format!("{t}_val"), &mut taken);
            let elem = p
                .param(t)
                .map(|param| param.ty)
                .ok_or_else(|| format!("intermediate `{t}` is not a producer parameter"))?;
            let p_body = renamed_body(&p.body, "p", &mut taken);
            for stmt in p_body {
                match stmt {
                    Stmt::Assign {
                        lhs: LValue::Index { ref array, .. },
                        ref rhs,
                    } if array == t => body.push(Stmt::DeclScalar {
                        name: val.clone(),
                        ty: elem,
                        init: Some(rhs.clone()),
                    }),
                    other => body.push(other),
                }
            }
            let mut c_body = renamed_body(&c.body, "c", &mut taken);
            map_exprs(&mut c_body, &|e| match e {
                Expr::Index { ref array, .. } if array == t => Expr::Var(val.clone()),
                other => other,
            });
            body.extend(c_body);
        }
        FusionMode::Inline => {
            let def = match p.body.first() {
                Some(Stmt::Assign { rhs, .. }) => rhs.clone(),
                _ => return Err(format!("producer does not define `{t}` straight-line")),
            };
            let mut c_body = renamed_body(&c.body, "c", &mut taken);
            map_exprs(&mut c_body, &|e| match e {
                Expr::Index { ref array, indices } if array == t && indices.len() == 1 => def
                    .clone()
                    .subst_builtin(Builtin::IdX, &indices[0]),
                other => other,
            });
            body.extend(c_body);
        }
    }
    let mut pragmas = vec![
        Pragma::Output(merged_outputs(p, c, t)),
        Pragma::Domain(dc.x, dc.y),
    ];
    pragmas.extend(merged_sizes(p, c)?);
    Ok(Kernel {
        name: format!("fused_{}_{}", p.name, c.name),
        params: merged_params(p, c, Some(t)),
        body,
        pragmas,
    })
}

/// Builds the round-trip reference kernel: producer body, grid-wide
/// barrier, then the consumer body (guarded to its own domain when the
/// producer's is larger), with the intermediate still a real array
/// parameter. Running it is observationally the sequential unfused
/// execution, so verifying the fused compile against it *is* the
/// differential fused-vs-unfused oracle.
///
/// # Errors
///
/// Same as [`fused_kernel`].
pub(crate) fn round_trip_kernel(
    p: &Kernel,
    c: &Kernel,
    t: &str,
    dp: &Domain,
    dc: &Domain,
) -> Result<Kernel, String> {
    let mut taken = taken_names(p, c);
    let mut body = renamed_body(&p.body, "p", &mut taken);
    body.push(Stmt::GlobalSync);
    let c_body = renamed_body(&c.body, "c", &mut taken);
    if dp == dc {
        body.extend(c_body);
    } else {
        body.push(Stmt::If {
            cond: Expr::lt(Expr::Builtin(Builtin::IdX), Expr::int(dc.x)),
            then_body: c_body,
            else_body: Vec::new(),
        });
    }
    let mut pragmas = vec![
        Pragma::Output(merged_outputs(p, c, t)),
        Pragma::Domain(dp.x, dp.y),
    ];
    pragmas.extend(merged_sizes(p, c)?);
    Ok(Kernel {
        name: format!("seq_{}_{}", p.name, c.name),
        params: merged_params(p, c, None),
        body,
        pragmas,
    })
}

/// The fusion transform as a first-class pipeline pass: rewrites the
/// round-trip form the state holds into the planned fused kernel, so the
/// rewrite is stage-gated, timed, traced, and fault-contained like every
/// other pass.
#[derive(Debug, Clone)]
pub struct FusionPass {
    /// The fused kernel the planner produced.
    pub fused: Kernel,
}

impl Pass for FusionPass {
    fn name(&self) -> &'static str {
        "fusion"
    }

    fn paper_section(&self) -> &'static str {
        "related work: Filipovič et al., kernel fusion (BLAS)"
    }

    fn stage(&self) -> &'static str {
        "fusion"
    }

    fn run(
        &mut self,
        state: &mut PipelineState,
        _am: &mut AnalysisManager,
    ) -> Result<PassOutcome, PassError> {
        *state.kernel_mut() = self.fused.clone();
        Ok(PassOutcome::Applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_core::registered_passes;

    #[test]
    fn registry_entry_matches_the_pass() {
        // `gpgpu-core` cannot depend on this crate, so its registry entry
        // for the fusion pass is a hand-written literal; keep it honest.
        let mut pass = FusionPass {
            fused: Kernel {
                name: "k".into(),
                params: Vec::new(),
                body: Vec::new(),
                pragmas: Vec::new(),
            },
        };
        let entry = registered_passes()
            .into_iter()
            .find(|p| p.name == "fusion")
            .unwrap_or_else(|| panic!("fusion pass missing from the registry"));
        assert_eq!(entry.name, Pass::name(&pass));
        assert_eq!(entry.paper_section, pass.paper_section());
        assert_eq!(entry.stage, pass.stage());
        // And the default stage set actually gates it on.
        assert!(gpgpu_core::StageSet::all().enabled(pass.stage()));
        assert!(!gpgpu_core::StageSet::none().enabled(pass.stage()));
        let _ = pass.run(
            &mut PipelineState::new(
                Kernel {
                    name: "k0".into(),
                    params: Vec::new(),
                    body: Vec::new(),
                    pragmas: Vec::new(),
                },
                Default::default(),
            ),
            &mut AnalysisManager::new(),
        );
    }
}
