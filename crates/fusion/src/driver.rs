//! The fusion driver: plan, rewrite under the pass manager, compile the
//! fused kernel through the full single-kernel pipeline, and verify it
//! element-for-element against the sequential round-trip reference.

use crate::plan::{plan_fusion, FusionMode, RejectReason};
use crate::transform::FusionPass;
use gpgpu_ast::Kernel;
use gpgpu_core::{
    compile, verify_equivalence, verify_equivalence_sanitized, CompileError, CompileOptions,
    CompiledKernel, PassManager, VerifyError,
};
use gpgpu_trace::{TraceEvent, TraceSink};
use gpgpu_transform::PipelineState;
use std::fmt;

/// Why a fused compilation could not be delivered.
///
/// Only [`FusionError::Rejected`] is the planner's routine "do not fuse
/// this pair" answer; callers degrade it to separate compiles. The other
/// two mean the fused kernel was attempted and failed — callers should
/// degrade the same way, but the distinction matters for reporting (a
/// verification failure is a compiler bug worth surfacing loudly).
#[derive(Debug)]
pub enum FusionError {
    /// The planner refused the pair (legality or profitability).
    Rejected(RejectReason),
    /// The fused kernel itself failed to compile.
    Compile(CompileError),
    /// The fused kernel compiled but differed from the sequential
    /// round-trip reference under the differential oracle.
    Verify(VerifyError),
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::Rejected(r) => write!(f, "fusion rejected: {r}"),
            FusionError::Compile(e) => write!(f, "fused kernel failed to compile: {e}"),
            FusionError::Verify(e) => write!(f, "fused kernel failed differential check: {e}"),
        }
    }
}

impl FusionError {
    /// The structured rejection slug for trace events: the planner's
    /// [`RejectReason::slug`], or a fixed slug for downstream failures.
    pub fn slug(&self) -> String {
        match self {
            FusionError::Rejected(r) => r.slug().to_string(),
            FusionError::Compile(_) => "compile-failed".to_string(),
            FusionError::Verify(_) => "verify-failed".to_string(),
        }
    }

    /// Human-readable detail for trace events and reports.
    pub fn detail(&self) -> String {
        match self {
            FusionError::Rejected(r) => r.detail(),
            FusionError::Compile(e) => e.to_string(),
            FusionError::Verify(e) => e.to_string(),
        }
    }
}

/// A fused compilation that passed the differential oracle.
#[derive(Debug)]
pub struct FusedCompile {
    /// The compiled fused kernel, pipeline trace prefixed with the fusion
    /// pass's events and the `fusion` rationale event.
    pub compiled: CompiledKernel,
    /// The sequential round-trip reference the result was verified
    /// against (members spliced around a grid-wide barrier). Kept so
    /// callers can re-verify — e.g. the service's sanitized spot checks.
    pub reference: Kernel,
    /// Producer kernel name.
    pub producer: String,
    /// Consumer kernel name.
    pub consumer: String,
    /// Fused kernel name.
    pub kernel: String,
    /// How the intermediate was forwarded.
    pub mode: FusionMode,
    /// The intermediate array eliminated by fusion.
    pub intermediate: String,
    /// Estimated global-memory bytes saved versus separate compiles.
    pub bytes_saved: u64,
    /// Estimated time of the two members compiled separately (ms).
    pub members_time_ms: f64,
    /// Estimated time of the fused kernel (ms).
    pub fused_time_ms: f64,
}

fn run_fused(
    producer: &Kernel,
    consumer: &Kernel,
    opts: &CompileOptions,
    sanitized: bool,
) -> Result<FusedCompile, FusionError> {
    if !opts.stages.fusion {
        return Err(FusionError::Rejected(RejectReason::StageDisabled));
    }
    let plan = plan_fusion(producer, consumer, opts).map_err(FusionError::Rejected)?;

    // The rewrite from round-trip form to fused form runs as a normal
    // pass under the manager, so it is stage-gated, timed, and traced
    // like the rest of the pipeline.
    let mut state = PipelineState::new(plan.reference.clone(), opts.bindings.clone());
    let mut manager = PassManager::new(opts.stages);
    let mut pass = FusionPass {
        fused: plan.fused.clone(),
    };
    manager
        .run(&mut state, &mut pass)
        .map_err(|e| FusionError::Compile(CompileError::Internal(e.to_string())))?;

    let mut compiled = compile(&plan.fused, opts).map_err(FusionError::Compile)?;

    // Prefix the pipeline's trace with the fusion story: the pass event
    // the manager recorded, then the rationale.
    let mut trace = state.trace;
    trace.emit(TraceEvent::Fusion {
        producer: producer.name.clone(),
        consumer: consumer.name.clone(),
        kernel: plan.fused.name.clone(),
        mode: plan.mode.as_str().to_string(),
        intermediate: plan.intermediate.clone(),
        bytes_saved: plan.bytes_saved,
        members_time_ms: plan.members_time_ms,
        fused_time_ms: plan.fused_time_ms,
    });
    trace.extend(std::mem::replace(&mut compiled.trace, TraceSink::new()).into_events());
    compiled.trace = trace;

    // The differential oracle: the round-trip reference runs the two
    // member bodies sequentially (split by a grid-wide barrier), so
    // verifying against it is exactly "fused == sequential unfused".
    let check = if sanitized {
        verify_equivalence_sanitized(&plan.reference, &compiled, opts)
    } else {
        verify_equivalence(&plan.reference, &compiled, opts)
    };
    check.map_err(FusionError::Verify)?;

    Ok(FusedCompile {
        compiled,
        reference: plan.reference,
        producer: producer.name.clone(),
        consumer: consumer.name.clone(),
        kernel: plan.fused.name.clone(),
        mode: plan.mode,
        intermediate: plan.intermediate,
        bytes_saved: plan.bytes_saved,
        members_time_ms: plan.members_time_ms,
        fused_time_ms: plan.fused_time_ms,
    })
}

/// Plans, compiles, and differentially verifies the fusion of
/// `producer` into `consumer`.
///
/// On success the fused kernel has been checked element-for-element
/// against the sequential unfused execution. On [`FusionError`] the
/// caller should compile the members separately — a rejection is a
/// routine planner answer, never a hard failure.
///
/// # Errors
///
/// See [`FusionError`].
pub fn compile_fused(
    producer: &Kernel,
    consumer: &Kernel,
    opts: &CompileOptions,
) -> Result<FusedCompile, FusionError> {
    run_fused(producer, consumer, opts, false)
}

/// [`compile_fused`] with the memory sanitizer enabled during the
/// differential check (races on staged shared memory, out-of-bounds
/// accesses, uninitialised reads).
///
/// # Errors
///
/// See [`FusionError`].
pub fn compile_fused_sanitized(
    producer: &Kernel,
    consumer: &Kernel,
    opts: &CompileOptions,
) -> Result<FusedCompile, FusionError> {
    run_fused(producer, consumer, opts, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_ast::parse_kernel;
    use gpgpu_core::StageSet;
    use gpgpu_sim::MachineDesc;

    const SCALE: &str = r#"
        __global__ void scale(float a[n], float t[n], int n) {
            t[idx] = a[idx] * 2.0f;
        }
    "#;

    const ADD: &str = r#"
        __global__ void add(float t[n], float b[n], float c[n], int n) {
            c[idx] = t[idx] + b[idx];
        }
    "#;

    fn opts() -> CompileOptions {
        CompileOptions::new(MachineDesc::gtx280()).bind("n", 4096)
    }

    #[test]
    fn register_fusion_compiles_and_verifies() {
        let p = parse_kernel(SCALE).unwrap();
        let c = parse_kernel(ADD).unwrap();
        let fused = compile_fused(&p, &c, &opts()).unwrap();
        assert_eq!(fused.mode, FusionMode::Register);
        assert_eq!(fused.intermediate, "t");
        assert_eq!(fused.kernel, "fused_scale_add");
        assert!(
            fused.bytes_saved > 0,
            "eliminating the round-trip must save global traffic"
        );
        // The intermediate is gone from the fused parameter list…
        let launch = &fused.compiled.launches[0];
        assert!(launch.kernel.param("t").is_none(), "{}", fused.compiled.source);
        // …but the round-trip reference still carries it.
        assert!(fused.reference.param("t").is_some());
        // The trace leads with the fusion story before the pipeline's.
        let kinds: Vec<&str> = fused.compiled.trace.events().iter().map(|e| e.kind()).collect();
        let fusion_at = kinds.iter().position(|k| *k == "fusion").unwrap();
        let coalesce_at = kinds.iter().position(|k| *k == "pass").unwrap_or(usize::MAX);
        assert!(fusion_at < coalesce_at || coalesce_at == usize::MAX, "{kinds:?}");
    }

    #[test]
    fn inline_window_fusion_compiles_and_verifies() {
        let p = parse_kernel(
            "__global__ void sq(float a[m], float t[m], int m) {
                t[idx] = a[idx] * a[idx];
            }",
        )
        .unwrap();
        let c = parse_kernel(
            "__global__ void blur(float t[m], float c[n], int n, int m) {
                c[idx] = (t[idx] + t[idx + 1] + t[idx + 2]) / 3.0f;
            }",
        )
        .unwrap();
        let opts = CompileOptions::new(MachineDesc::gtx280())
            .bind("n", 2048)
            .bind("m", 2050);
        let fused = compile_fused(&p, &c, &opts).unwrap();
        assert_eq!(fused.mode, FusionMode::Inline);
        assert!(fused.compiled.launches[0].kernel.param("t").is_none());
    }

    #[test]
    fn sanitized_fused_compile_passes_clean() {
        let p = parse_kernel(SCALE).unwrap();
        let c = parse_kernel(ADD).unwrap();
        compile_fused_sanitized(&p, &c, &opts()).unwrap();
    }

    #[test]
    fn disabled_stage_rejects_with_structured_slug() {
        let p = parse_kernel(SCALE).unwrap();
        let c = parse_kernel(ADD).unwrap();
        let err = compile_fused(&p, &c, &opts().with_stages(StageSet::none())).unwrap_err();
        assert_eq!(err.slug(), "stage-disabled");
        assert!(matches!(
            err,
            FusionError::Rejected(RejectReason::StageDisabled)
        ));
    }
}
