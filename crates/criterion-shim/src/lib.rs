//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real crates-io
//! `criterion` cannot be fetched. This shim implements the API subset the
//! workspace's micro-benchmarks use — `Criterion::bench_function`,
//! `benchmark_group`/`sample_size`/`finish`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement loop
//! and a one-line report per benchmark.

use std::time::{Duration, Instant};

/// Measurement driver handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean wall-clock time per iteration of the measured closure.
    mean: Duration,
    /// Iterations measured.
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up once (fills caches, triggers lazy init).
        std::hint::black_box(f());
        // Measure for a bounded wall-clock budget.
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < budget && iters < 1000 {
            std::hint::black_box(f());
            iters += 1;
        }
        self.mean = start.elapsed() / iters.max(1) as u32;
        self.iters = iters.max(1);
    }
}

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, &b);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim budget is wall-clock based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(name: &str, b: &Bencher) {
    let nanos = b.mean.as_nanos();
    let human = if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    };
    println!("{name:<40} time: {human:>12}   ({} iterations)", b.iters);
}

/// Collects benchmark functions into one runner (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("noop2", |b| b.iter(|| 2 + 2));
        g.finish();
    }
}
